#include "logical/expr.h"

#include <cctype>
#include <sstream>

#include "compute/arithmetic.h"
#include "compute/cast.h"

namespace fusion {
namespace logical {

// ------------------------------------------------------------- PlanSchema

namespace {
bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

Result<int> PlanSchema::IndexOf(const std::string& qualifier,
                                const std::string& name) const {
  // Exact match first; unquoted SQL identifiers arrive lower-cased, so
  // fall back to a case-insensitive pass (PostgreSQL-flavored lookup).
  for (int pass = 0; pass < 2; ++pass) {
    const bool ci = pass == 1;
    int found = -1;
    for (int i = 0; i < schema_->num_fields(); ++i) {
      const bool name_match = ci ? EqualsIgnoreCase(schema_->field(i).name(), name)
                                 : schema_->field(i).name() == name;
      if (!name_match) continue;
      if (!qualifier.empty()) {
        const bool qual_match = ci ? EqualsIgnoreCase(qualifiers_[i], qualifier)
                                   : qualifiers_[i] == qualifier;
        if (!qual_match) continue;
      }
      if (found >= 0) {
        if (qualifier.empty()) {
          return Status::PlanError("ambiguous column reference '" + name + "'");
        }
        // Same qualifier twice: take the first (self-join aliasing rules
        // are enforced at plan build time).
        continue;
      }
      found = i;
    }
    if (found >= 0) return found;
  }
  std::string full = qualifier.empty() ? name : qualifier + "." + name;
  return Status::PlanError("column '" + full + "' not found in schema [" +
                           ToString() + "]");
}

PlanSchema PlanSchema::Concat(const PlanSchema& right) const {
  std::vector<Field> fields = schema_->fields();
  for (const auto& f : right.schema_->fields()) fields.push_back(f);
  std::vector<std::string> quals = qualifiers_;
  quals.insert(quals.end(), right.qualifiers_.begin(), right.qualifiers_.end());
  return PlanSchema(std::make_shared<Schema>(std::move(fields)), std::move(quals));
}

PlanSchema PlanSchema::WithQualifier(const std::string& qualifier) const {
  std::vector<std::string> quals(qualifiers_.size(), qualifier);
  return PlanSchema(schema_, std::move(quals));
}

std::string PlanSchema::ToString() const {
  std::ostringstream out;
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out << ", ";
    if (!qualifiers_[i].empty()) out << qualifiers_[i] << ".";
    out << schema_->field(i).name() << ":" << schema_->field(i).type().ToString();
  }
  return out.str();
}

// ----------------------------------------------------------------- ops

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNeq: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLtEq: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGtEq: return ">=";
    case BinaryOp::kPlus: return "+";
    case BinaryOp::kMinus: return "-";
    case BinaryOp::kMultiply: return "*";
    case BinaryOp::kDivide: return "/";
    case BinaryOp::kModulo: return "%";
    case BinaryOp::kStringConcat: return "||";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kPlus:
    case BinaryOp::kMinus:
    case BinaryOp::kMultiply:
    case BinaryOp::kDivide:
    case BinaryOp::kModulo:
      return true;
    default:
      return false;
  }
}

// ----------------------------------------------------------------- types

Result<DataType> Expr::GetType(const PlanSchema& input) const {
  switch (kind) {
    case Kind::kColumn: {
      FUSION_ASSIGN_OR_RAISE(int idx, input.IndexOf(qualifier, name));
      return input.field(idx).type();
    }
    case Kind::kLiteral:
      return literal.type();
    case Kind::kBinary: {
      FUSION_ASSIGN_OR_RAISE(DataType lt, children[0]->GetType(input));
      FUSION_ASSIGN_OR_RAISE(DataType rt, children[1]->GetType(input));
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr || IsComparisonOp(op)) {
        return boolean();
      }
      if (op == BinaryOp::kStringConcat) return utf8();
      // Date arithmetic keeps the temporal type.
      if (lt.is_temporal() || rt.is_temporal()) {
        return lt.is_temporal() ? lt : rt;
      }
      if (lt.is_decimal() && rt.is_decimal()) {
        // The kernel's scale-propagation rules, so the planned schema
        // matches what execution produces.
        compute::ArithmeticOp aop;
        switch (op) {
          case BinaryOp::kPlus: aop = compute::ArithmeticOp::kAdd; break;
          case BinaryOp::kMinus: aop = compute::ArithmeticOp::kSubtract; break;
          case BinaryOp::kMultiply: aop = compute::ArithmeticOp::kMultiply; break;
          case BinaryOp::kDivide: aop = compute::ArithmeticOp::kDivide; break;
          case BinaryOp::kModulo: aop = compute::ArithmeticOp::kModulo; break;
          default:
            return Status::Internal("unexpected decimal binary op");
        }
        return compute::DecimalBinaryResultType(aop, lt, rt);
      }
      return compute::CommonType(lt, rt);
    }
    case Kind::kNot:
    case Kind::kIsNull:
    case Kind::kIsNotNull:
    case Kind::kInList:
    case Kind::kLike:
      return boolean();
    case Kind::kNegative:
      return children[0]->GetType(input);
    case Kind::kCase: {
      // Type of the first THEN (coercion ran at plan time).
      size_t num_whens = children.size() / 2;
      for (size_t i = 0; i < num_whens; ++i) {
        FUSION_ASSIGN_OR_RAISE(DataType t, children[i * 2 + 1]->GetType(input));
        if (!t.is_null()) return t;
      }
      if (case_has_else) return children.back()->GetType(input);
      return null_type();
    }
    case Kind::kCast:
      return cast_type;
    case Kind::kScalarFunction: {
      std::vector<DataType> arg_types;
      for (const auto& arg : children) {
        FUSION_ASSIGN_OR_RAISE(DataType t, arg->GetType(input));
        arg_types.push_back(t);
      }
      return scalar_function->return_type(arg_types);
    }
    case Kind::kAggregate: {
      std::vector<DataType> arg_types;
      for (const auto& arg : children) {
        FUSION_ASSIGN_OR_RAISE(DataType t, arg->GetType(input));
        arg_types.push_back(t);
      }
      return aggregate_function->return_type(arg_types);
    }
    case Kind::kWindow: {
      std::vector<DataType> arg_types;
      for (const auto& arg : children) {
        FUSION_ASSIGN_OR_RAISE(DataType t, arg->GetType(input));
        arg_types.push_back(t);
      }
      return window_function->return_type(arg_types);
    }
    case Kind::kAlias:
      return children[0]->GetType(input);
    case Kind::kScalarSubquery:
      return cast_type;  // planner stores the subquery's output type here
  }
  return Status::Internal("unhandled expr kind in GetType");
}

Result<bool> Expr::Nullable(const PlanSchema& input) const {
  switch (kind) {
    case Kind::kColumn: {
      FUSION_ASSIGN_OR_RAISE(int idx, input.IndexOf(qualifier, name));
      return input.field(idx).nullable();
    }
    case Kind::kLiteral:
      return literal.is_null();
    case Kind::kIsNull:
    case Kind::kIsNotNull:
      return false;
    case Kind::kAlias:
    case Kind::kNegative:
      return children[0]->Nullable(input);
    default:
      return true;
  }
}

Result<Field> Expr::ToField(const PlanSchema& input) const {
  FUSION_ASSIGN_OR_RAISE(DataType type, GetType(input));
  FUSION_ASSIGN_OR_RAISE(bool nullable, Nullable(input));
  return Field(DisplayName(), type, nullable);
}

std::string Expr::DisplayName() const {
  switch (kind) {
    case Kind::kAlias:
      return alias;
    case Kind::kColumn:
      return name;
    default:
      return ToString();
  }
}

std::string Expr::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kColumn:
      if (!qualifier.empty()) out << qualifier << ".";
      out << name;
      break;
    case Kind::kLiteral:
      if (literal.type().is_string()) {
        out << "'" << literal.ToString() << "'";
      } else {
        out << literal.ToString();
      }
      break;
    case Kind::kBinary:
      out << children[0]->ToString() << " " << BinaryOpName(op) << " "
          << children[1]->ToString();
      break;
    case Kind::kNot:
      out << "NOT " << children[0]->ToString();
      break;
    case Kind::kNegative:
      out << "(- " << children[0]->ToString() << ")";
      break;
    case Kind::kIsNull:
      out << children[0]->ToString() << " IS NULL";
      break;
    case Kind::kIsNotNull:
      out << children[0]->ToString() << " IS NOT NULL";
      break;
    case Kind::kCase: {
      out << "CASE";
      size_t num_whens = children.size() / 2;
      for (size_t i = 0; i < num_whens; ++i) {
        out << " WHEN " << children[i * 2]->ToString() << " THEN "
            << children[i * 2 + 1]->ToString();
      }
      if (case_has_else) out << " ELSE " << children.back()->ToString();
      out << " END";
      break;
    }
    case Kind::kCast:
      out << "CAST(" << children[0]->ToString() << " AS " << cast_type.ToString()
          << ")";
      break;
    case Kind::kInList: {
      out << children[0]->ToString() << (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out << ", ";
        out << children[i]->ToString();
      }
      out << ")";
      break;
    }
    case Kind::kLike:
      out << children[0]->ToString() << (negated ? " NOT " : " ")
          << (case_insensitive ? "ILIKE " : "LIKE ") << children[1]->ToString();
      break;
    case Kind::kScalarFunction:
    case Kind::kAggregate:
    case Kind::kWindow: {
      out << function_name << "(";
      if (distinct) out << "DISTINCT ";
      if (children.empty() && kind == Kind::kAggregate) out << "*";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out << ", ";
        out << children[i]->ToString();
      }
      out << ")";
      if (filter != nullptr) out << " FILTER (WHERE " << filter->ToString() << ")";
      if (kind == Kind::kWindow && window_spec != nullptr) {
        out << " OVER (";
        if (!window_spec->partition_by.empty()) {
          out << "PARTITION BY ";
          for (size_t i = 0; i < window_spec->partition_by.size(); ++i) {
            if (i > 0) out << ", ";
            out << window_spec->partition_by[i]->ToString();
          }
        }
        if (!window_spec->order_by.empty()) {
          out << " ORDER BY ";
          for (size_t i = 0; i < window_spec->order_by.size(); ++i) {
            if (i > 0) out << ", ";
            out << window_spec->order_by[i].expr->ToString();
            if (window_spec->order_by[i].options.descending) out << " DESC";
          }
        }
        out << ")";
      }
      break;
    }
    case Kind::kAlias:
      out << children[0]->ToString() << " AS " << alias;
      break;
    case Kind::kScalarSubquery:
      out << "(<subquery>)";
      break;
  }
  return out.str();
}

// --------------------------------------------------------- constructors

namespace {
ExprPtr MakeExpr(Expr::Kind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(std::string name) {
  auto e = MakeExpr(Expr::Kind::kColumn);
  e->name = std::move(name);
  return e;
}

ExprPtr Col(std::string qualifier, std::string name) {
  auto e = MakeExpr(Expr::Kind::kColumn);
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr Lit(Scalar value) {
  auto e = MakeExpr(Expr::Kind::kLiteral);
  e->literal = std::move(value);
  return e;
}

ExprPtr Lit(int64_t value) { return Lit(Scalar::Int64(value)); }
ExprPtr Lit(double value) { return Lit(Scalar::Float64(value)); }
ExprPtr Lit(const std::string& value) { return Lit(Scalar::String(value)); }
ExprPtr Lit(const char* value) { return Lit(Scalar::String(value)); }

ExprPtr Binary(ExprPtr left, BinaryOp op, ExprPtr right) {
  auto e = MakeExpr(Expr::Kind::kBinary);
  e->op = op;
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(std::move(l), BinaryOp::kEq, std::move(r)); }
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Binary(std::move(l), BinaryOp::kAnd, std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Binary(std::move(l), BinaryOp::kOr, std::move(r));
}

ExprPtr Not(ExprPtr child) {
  auto e = MakeExpr(Expr::Kind::kNot);
  e->children = {std::move(child)};
  return e;
}

ExprPtr IsNullExpr(ExprPtr child) {
  auto e = MakeExpr(Expr::Kind::kIsNull);
  e->children = {std::move(child)};
  return e;
}

ExprPtr IsNotNullExpr(ExprPtr child) {
  auto e = MakeExpr(Expr::Kind::kIsNotNull);
  e->children = {std::move(child)};
  return e;
}

ExprPtr CastExpr(ExprPtr child, DataType type) {
  auto e = MakeExpr(Expr::Kind::kCast);
  e->children = {std::move(child)};
  e->cast_type = type;
  return e;
}

ExprPtr AliasExpr(ExprPtr child, std::string alias) {
  auto e = MakeExpr(Expr::Kind::kAlias);
  e->children = {std::move(child)};
  e->alias = std::move(alias);
  return e;
}

ExprPtr InListExpr(ExprPtr child, std::vector<ExprPtr> list, bool negated) {
  auto e = MakeExpr(Expr::Kind::kInList);
  e->children.push_back(std::move(child));
  for (auto& item : list) e->children.push_back(std::move(item));
  e->negated = negated;
  return e;
}

ExprPtr LikeExpr(ExprPtr child, ExprPtr pattern, bool negated,
                 bool case_insensitive) {
  auto e = MakeExpr(Expr::Kind::kLike);
  e->children = {std::move(child), std::move(pattern)};
  e->negated = negated;
  e->case_insensitive = case_insensitive;
  return e;
}

ExprPtr CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> when_then,
                 ExprPtr else_expr) {
  auto e = MakeExpr(Expr::Kind::kCase);
  for (auto& [when, then] : when_then) {
    e->children.push_back(std::move(when));
    e->children.push_back(std::move(then));
  }
  if (else_expr != nullptr) {
    e->children.push_back(std::move(else_expr));
    e->case_has_else = true;
  }
  return e;
}

ExprPtr FunctionCall(ScalarFunctionPtr fn, std::vector<ExprPtr> args) {
  auto e = MakeExpr(Expr::Kind::kScalarFunction);
  e->function_name = fn->name;
  e->scalar_function = std::move(fn);
  e->children = std::move(args);
  return e;
}

ExprPtr AggregateCall(AggregateFunctionPtr fn, std::vector<ExprPtr> args,
                      bool distinct, ExprPtr filter) {
  auto e = MakeExpr(Expr::Kind::kAggregate);
  e->function_name = fn->name;
  e->aggregate_function = std::move(fn);
  e->children = std::move(args);
  e->distinct = distinct;
  e->filter = std::move(filter);
  return e;
}

ExprPtr WindowCall(WindowFunctionPtr fn, std::vector<ExprPtr> args,
                   std::shared_ptr<WindowSpecExpr> spec) {
  auto e = MakeExpr(Expr::Kind::kWindow);
  e->function_name = fn->name;
  e->window_function = std::move(fn);
  e->children = std::move(args);
  e->window_spec = std::move(spec);
  return e;
}

ExprPtr Conjunction(const std::vector<ExprPtr>& predicates) {
  ExprPtr out;
  for (const auto& p : predicates) {
    out = out == nullptr ? p : And(out, p);
  }
  return out;
}

void SplitConjunction(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary && expr->op == BinaryOp::kAnd) {
    SplitConjunction(expr->children[0], out);
    SplitConjunction(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

const ExprPtr& Unalias(const ExprPtr& expr) {
  const ExprPtr* e = &expr;
  while ((*e)->kind == Expr::Kind::kAlias) {
    e = &(*e)->children[0];
  }
  return *e;
}

void VisitExpr(const ExprPtr& expr, const std::function<bool(const ExprPtr&)>& fn) {
  if (expr == nullptr) return;
  if (!fn(expr)) return;
  for (const auto& child : expr->children) VisitExpr(child, fn);
  if (expr->filter != nullptr) VisitExpr(expr->filter, fn);
  if (expr->window_spec != nullptr) {
    for (const auto& p : expr->window_spec->partition_by) VisitExpr(p, fn);
    for (const auto& o : expr->window_spec->order_by) VisitExpr(o.expr, fn);
  }
}

Result<ExprPtr> TransformExpr(
    const ExprPtr& expr,
    const std::function<Result<ExprPtr>(const ExprPtr&)>& fn) {
  if (expr == nullptr) return ExprPtr(nullptr);
  ExprPtr node = expr;
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(node->children.size());
  for (const auto& child : node->children) {
    FUSION_ASSIGN_OR_RAISE(auto nc, TransformExpr(child, fn));
    if (nc != child) changed = true;
    new_children.push_back(std::move(nc));
  }
  ExprPtr new_filter = node->filter;
  if (node->filter != nullptr) {
    FUSION_ASSIGN_OR_RAISE(new_filter, TransformExpr(node->filter, fn));
    if (new_filter != node->filter) changed = true;
  }
  std::shared_ptr<WindowSpecExpr> new_spec = node->window_spec;
  if (node->window_spec != nullptr) {
    auto spec = std::make_shared<WindowSpecExpr>(*node->window_spec);
    bool spec_changed = false;
    for (auto& p : spec->partition_by) {
      FUSION_ASSIGN_OR_RAISE(auto np, TransformExpr(p, fn));
      if (np != p) spec_changed = true;
      p = std::move(np);
    }
    for (auto& o : spec->order_by) {
      FUSION_ASSIGN_OR_RAISE(auto no, TransformExpr(o.expr, fn));
      if (no != o.expr) spec_changed = true;
      o.expr = std::move(no);
    }
    if (spec_changed) {
      new_spec = std::move(spec);
      changed = true;
    }
  }
  if (changed) {
    auto copy = std::make_shared<Expr>(*node);
    copy->children = std::move(new_children);
    copy->filter = std::move(new_filter);
    copy->window_spec = std::move(new_spec);
    node = std::move(copy);
  }
  return fn(node);
}

void CollectColumns(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  VisitExpr(expr, [out](const ExprPtr& e) {
    if (e->kind == Expr::Kind::kColumn) {
      for (const auto& seen : *out) {
        if (seen->Equals(*e)) return true;
      }
      out->push_back(e);
    }
    return true;
  });
}

bool ContainsAggregate(const ExprPtr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const ExprPtr& e) {
    if (e->kind == Expr::Kind::kAggregate) {
      found = true;
      return false;
    }
    // Do not descend into window specs' internals for aggregates; a
    // window over an aggregate still counts.
    return true;
  });
  return found;
}

bool ContainsWindow(const ExprPtr& expr) {
  bool found = false;
  VisitExpr(expr, [&](const ExprPtr& e) {
    if (e->kind == Expr::Kind::kWindow) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

bool IsConstant(const ExprPtr& expr) {
  bool constant = true;
  VisitExpr(expr, [&](const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::kColumn:
      case Expr::Kind::kAggregate:
      case Expr::Kind::kWindow:
      case Expr::Kind::kScalarSubquery:
        constant = false;
        return false;
      default:
        return true;
    }
  });
  return constant;
}

ExprPtr CloneExpr(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  auto copy = std::make_shared<Expr>(*expr);
  for (auto& child : copy->children) child = CloneExpr(child);
  if (copy->filter != nullptr) copy->filter = CloneExpr(copy->filter);
  if (copy->window_spec != nullptr) {
    auto spec = std::make_shared<WindowSpecExpr>(*copy->window_spec);
    for (auto& p : spec->partition_by) p = CloneExpr(p);
    for (auto& o : spec->order_by) o.expr = CloneExpr(o.expr);
    copy->window_spec = std::move(spec);
  }
  return copy;
}

}  // namespace logical
}  // namespace fusion
