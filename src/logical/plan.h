#ifndef FUSION_LOGICAL_PLAN_H_
#define FUSION_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table_provider.h"
#include "logical/expr.h"

namespace fusion {
namespace logical {

class LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

enum class PlanKind {
  kTableScan,
  kProjection,
  kFilter,
  kAggregate,
  kSort,
  kLimit,
  kJoin,
  kUnion,
  kDistinct,
  kWindow,
  kValues,
  kSubqueryAlias,
  kEmptyRelation,
  kExplain,
};

enum class JoinKind {
  kInner, kLeft, kRight, kFull, kLeftSemi, kLeftAnti, kRightSemi, kRightAnti, kCross,
};

const char* PlanKindName(PlanKind kind);
const char* JoinKindName(JoinKind kind);

/// \brief A relational operator tree node (paper §5.4.1). Constructed
/// via the Make* functions below or LogicalPlanBuilder, which compute
/// and validate the output schema.
class LogicalPlan {
 public:
  PlanKind kind;
  std::vector<PlanPtr> children;

  // kTableScan
  std::string table_name;
  catalog::TableProviderPtr provider;
  std::vector<int> scan_projection;        // empty = all columns
  std::vector<ExprPtr> scan_filters;       // pushed-down predicates
  int64_t scan_limit = -1;

  // kProjection / kWindow: output (window: appended) expressions
  std::vector<ExprPtr> exprs;

  // kFilter
  ExprPtr predicate;

  // kAggregate
  std::vector<ExprPtr> group_exprs;
  std::vector<ExprPtr> aggr_exprs;  // kAggregate-kind exprs (possibly aliased)

  // kSort
  std::vector<SortExpr> sort_exprs;
  int64_t fetch = -1;  // also kLimit's fetch (-1 = unlimited)

  // kLimit
  int64_t skip = 0;

  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  std::vector<std::pair<ExprPtr, ExprPtr>> join_on;  // equi pairs (left, right)
  ExprPtr join_filter;                                // residual non-equi condition

  // kValues
  std::vector<std::vector<ExprPtr>> values_rows;

  // kSubqueryAlias
  std::string alias;

  // kEmptyRelation
  bool produce_one_row = false;

  // kExplain: execute the input and annotate the plan with runtime
  // metrics (EXPLAIN ANALYZE) instead of printing the static plan.
  bool explain_analyze = false;

  const PlanSchema& schema() const { return schema_; }
  void set_schema(PlanSchema schema) { schema_ = std::move(schema); }

  const PlanPtr& child(int i = 0) const { return children[i]; }

  /// Indented plan tree rendering (EXPLAIN output).
  std::string ToString() const;

 private:
  PlanSchema schema_;
};

// Constructors (schema-computing) -----------------------------------------

Result<PlanPtr> MakeTableScan(std::string table_name,
                              catalog::TableProviderPtr provider,
                              std::vector<int> projection = {},
                              std::vector<ExprPtr> filters = {},
                              int64_t limit = -1);
Result<PlanPtr> MakeProjection(PlanPtr input, std::vector<ExprPtr> exprs);
Result<PlanPtr> MakeFilter(PlanPtr input, ExprPtr predicate);
Result<PlanPtr> MakeAggregate(PlanPtr input, std::vector<ExprPtr> group_exprs,
                              std::vector<ExprPtr> aggr_exprs);
Result<PlanPtr> MakeSort(PlanPtr input, std::vector<SortExpr> sort_exprs,
                         int64_t fetch = -1);
Result<PlanPtr> MakeLimit(PlanPtr input, int64_t skip, int64_t fetch);
Result<PlanPtr> MakeJoin(PlanPtr left, PlanPtr right, JoinKind kind,
                         std::vector<std::pair<ExprPtr, ExprPtr>> on,
                         ExprPtr filter = nullptr);
Result<PlanPtr> MakeCrossJoin(PlanPtr left, PlanPtr right);
Result<PlanPtr> MakeUnion(std::vector<PlanPtr> inputs);
Result<PlanPtr> MakeDistinct(PlanPtr input);
Result<PlanPtr> MakeWindow(PlanPtr input, std::vector<ExprPtr> window_exprs);
Result<PlanPtr> MakeValues(std::vector<std::vector<ExprPtr>> rows);
Result<PlanPtr> MakeSubqueryAlias(PlanPtr input, std::string alias);
Result<PlanPtr> MakeEmptyRelation(bool produce_one_row);
Result<PlanPtr> MakeExplain(PlanPtr input, bool analyze = false);

/// Rebuild `plan` with new children (schemas recomputed); used by
/// optimizer rules.
Result<PlanPtr> WithNewChildren(const PlanPtr& plan, std::vector<PlanPtr> children);

/// Bottom-up plan transform.
Result<PlanPtr> TransformPlan(
    const PlanPtr& plan,
    const std::function<Result<PlanPtr>(const PlanPtr&)>& fn);

/// \brief Fluent builder mirroring DataFusion's LogicalPlanBuilder
/// (paper §5.3.3): the Rust-style API for custom query front ends.
class LogicalPlanBuilder {
 public:
  explicit LogicalPlanBuilder(PlanPtr plan) : plan_(std::move(plan)) {}

  static Result<LogicalPlanBuilder> Scan(std::string table_name,
                                         catalog::TableProviderPtr provider);
  static Result<LogicalPlanBuilder> Values(std::vector<std::vector<ExprPtr>> rows);
  static Result<LogicalPlanBuilder> Empty(bool produce_one_row = true);

  Result<LogicalPlanBuilder> Project(std::vector<ExprPtr> exprs) const;
  Result<LogicalPlanBuilder> Filter(ExprPtr predicate) const;
  Result<LogicalPlanBuilder> Aggregate(std::vector<ExprPtr> group_exprs,
                                       std::vector<ExprPtr> aggr_exprs) const;
  Result<LogicalPlanBuilder> Sort(std::vector<SortExpr> sort_exprs,
                                  int64_t fetch = -1) const;
  Result<LogicalPlanBuilder> Limit(int64_t skip, int64_t fetch) const;
  Result<LogicalPlanBuilder> Join(const LogicalPlanBuilder& right, JoinKind kind,
                                  std::vector<std::pair<ExprPtr, ExprPtr>> on,
                                  ExprPtr filter = nullptr) const;
  Result<LogicalPlanBuilder> CrossJoin(const LogicalPlanBuilder& right) const;
  Result<LogicalPlanBuilder> Union(const LogicalPlanBuilder& other) const;
  Result<LogicalPlanBuilder> Distinct() const;
  Result<LogicalPlanBuilder> Window(std::vector<ExprPtr> window_exprs) const;
  Result<LogicalPlanBuilder> Alias(std::string alias) const;

  const PlanPtr& Build() const { return plan_; }

 private:
  PlanPtr plan_;
};

}  // namespace logical
}  // namespace fusion

#endif  // FUSION_LOGICAL_PLAN_H_
