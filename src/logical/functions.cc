#include "logical/functions.h"

#include <cmath>

#include "arrow/builder.h"
#include "compute/cast.h"
#include "compute/string_kernels.h"
#include "compute/temporal.h"
#include "common/macros.h"

namespace fusion {
namespace logical {

// ------------------------------------------------------------- registry

std::shared_ptr<FunctionRegistry> FunctionRegistry::Default() {
  auto registry = std::make_shared<FunctionRegistry>();
  RegisterBuiltinScalarFunctions(registry.get());
  RegisterBuiltinAggregateFunctions(registry.get());
  RegisterBuiltinWindowFunctions(registry.get());
  return registry;
}

Status FunctionRegistry::RegisterScalar(ScalarFunctionPtr fn) {
  scalar_[fn->name] = std::move(fn);
  return Status::OK();
}

Status FunctionRegistry::RegisterAggregate(AggregateFunctionPtr fn) {
  aggregate_[fn->name] = std::move(fn);
  return Status::OK();
}

Status FunctionRegistry::RegisterWindow(WindowFunctionPtr fn) {
  window_[fn->name] = std::move(fn);
  return Status::OK();
}

Result<ScalarFunctionPtr> FunctionRegistry::GetScalar(const std::string& name) const {
  auto it = scalar_.find(name);
  if (it == scalar_.end()) {
    return Status::KeyError("no scalar function named '" + name + "'");
  }
  return it->second;
}

Result<AggregateFunctionPtr> FunctionRegistry::GetAggregate(
    const std::string& name) const {
  auto it = aggregate_.find(name);
  if (it == aggregate_.end()) {
    return Status::KeyError("no aggregate function named '" + name + "'");
  }
  return it->second;
}

Result<WindowFunctionPtr> FunctionRegistry::GetWindow(const std::string& name) const {
  auto it = window_.find(name);
  if (it == window_.end()) {
    return Status::KeyError("no window function named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> FunctionRegistry::ScalarNames() const {
  std::vector<std::string> out;
  out.reserve(scalar_.size());
  for (const auto& [name, fn] : scalar_) out.push_back(name);
  return out;
}

// ------------------------------------------------------- scalar builtins

namespace {

Result<DataType> CheckArity(const std::vector<DataType>& args, size_t n,
                            const char* name, DataType ret) {
  if (args.size() != n) {
    return Status::PlanError(std::string(name) + " expects " + std::to_string(n) +
                             " arguments");
  }
  return ret;
}

/// Unary float64 math function over a numeric column.
ScalarFunctionPtr MakeFloatUnary(const char* name, double (*fn)(double)) {
  auto def = std::make_shared<ScalarFunctionDef>();
  def->name = name;
  std::string fname = name;
  def->return_type = [fname](const std::vector<DataType>& args) {
    return CheckArity(args, 1, fname.c_str(), float64());
  };
  def->impl = [fn](const std::vector<ColumnarValue>& args,
                   int64_t num_rows) -> Result<ColumnarValue> {
    FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
    FUSION_ASSIGN_OR_RAISE(auto as_double, compute::Cast(*arr, float64()));
    const auto& in = checked_cast<Float64Array>(*as_double);
    Float64Builder builder;
    builder.Reserve(in.length());
    for (int64_t i = 0; i < in.length(); ++i) {
      if (in.IsNull(i)) {
        builder.AppendNull();
      } else {
        builder.Append(fn(in.Value(i)));
      }
    }
    FUSION_ASSIGN_OR_RAISE(auto out, builder.Finish());
    return ColumnarValue(std::move(out));
  };
  return def;
}

Result<ColumnarValue> AbsImpl(const std::vector<ColumnarValue>& args,
                              int64_t num_rows) {
  FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
  if (arr->type().is_null()) return ColumnarValue(std::move(arr));
  switch (arr->type().id()) {
    case TypeId::kInt32: {
      Int32Builder b;
      const auto& in = checked_cast<Int32Array>(*arr);
      for (int64_t i = 0; i < in.length(); ++i) {
        in.IsNull(i) ? b.AppendNull() : b.Append(std::abs(in.Value(i)));
      }
      FUSION_ASSIGN_OR_RAISE(auto out, b.Finish());
      return ColumnarValue(std::move(out));
    }
    case TypeId::kInt64: {
      Int64Builder b;
      const auto& in = checked_cast<Int64Array>(*arr);
      for (int64_t i = 0; i < in.length(); ++i) {
        in.IsNull(i) ? b.AppendNull() : b.Append(std::llabs(in.Value(i)));
      }
      FUSION_ASSIGN_OR_RAISE(auto out, b.Finish());
      return ColumnarValue(std::move(out));
    }
    case TypeId::kFloat64: {
      Float64Builder b;
      const auto& in = checked_cast<Float64Array>(*arr);
      for (int64_t i = 0; i < in.length(); ++i) {
        in.IsNull(i) ? b.AppendNull() : b.Append(std::fabs(in.Value(i)));
      }
      FUSION_ASSIGN_OR_RAISE(auto out, b.Finish());
      return ColumnarValue(std::move(out));
    }
    default:
      return Status::TypeError("abs: unsupported type " + arr->type().ToString());
  }
}

Result<ColumnarValue> RoundImpl(const std::vector<ColumnarValue>& args,
                                int64_t num_rows) {
  FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
  FUSION_ASSIGN_OR_RAISE(auto as_double, compute::Cast(*arr, float64()));
  double scale = 1.0;
  if (args.size() > 1) {
    if (!args[1].is_scalar()) {
      return Status::Invalid("round: digits must be a literal");
    }
    scale = std::pow(10.0, args[1].scalar().AsDouble());
  }
  const auto& in = checked_cast<Float64Array>(*as_double);
  Float64Builder builder;
  for (int64_t i = 0; i < in.length(); ++i) {
    if (in.IsNull(i)) {
      builder.AppendNull();
    } else {
      builder.Append(std::round(in.Value(i) * scale) / scale);
    }
  }
  FUSION_ASSIGN_OR_RAISE(auto out, builder.Finish());
  return ColumnarValue(std::move(out));
}

compute::DateField ParseDateField(const std::string& field) {
  if (field == "year") return compute::DateField::kYear;
  if (field == "month") return compute::DateField::kMonth;
  if (field == "day") return compute::DateField::kDay;
  if (field == "hour") return compute::DateField::kHour;
  if (field == "minute") return compute::DateField::kMinute;
  if (field == "second") return compute::DateField::kSecond;
  return compute::DateField::kDayOfWeek;
}

compute::TruncUnit ParseTruncUnit(const std::string& unit) {
  if (unit == "year") return compute::TruncUnit::kYear;
  if (unit == "month") return compute::TruncUnit::kMonth;
  if (unit == "day") return compute::TruncUnit::kDay;
  if (unit == "hour") return compute::TruncUnit::kHour;
  return compute::TruncUnit::kMinute;
}

}  // namespace

void RegisterBuiltinScalarFunctions(FunctionRegistry* registry) {
  auto reg = [registry](ScalarFunctionPtr fn) {
    registry->RegisterScalar(std::move(fn)).Abort();
  };

  // Math -------------------------------------------------------------
  {
    auto abs_fn = std::make_shared<ScalarFunctionDef>();
    abs_fn->name = "abs";
    abs_fn->return_type = [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.size() != 1) return Status::PlanError("abs expects 1 argument");
      return args[0];
    };
    abs_fn->impl = AbsImpl;
    reg(abs_fn);
  }
  reg(MakeFloatUnary("sqrt", [](double x) { return std::sqrt(x); }));
  reg(MakeFloatUnary("exp", [](double x) { return std::exp(x); }));
  reg(MakeFloatUnary("ln", [](double x) { return std::log(x); }));
  reg(MakeFloatUnary("log10", [](double x) { return std::log10(x); }));
  reg(MakeFloatUnary("ceil", [](double x) { return std::ceil(x); }));
  reg(MakeFloatUnary("floor", [](double x) { return std::floor(x); }));
  reg(MakeFloatUnary("sign", [](double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }));
  {
    auto round_fn = std::make_shared<ScalarFunctionDef>();
    round_fn->name = "round";
    round_fn->return_type = [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.empty() || args.size() > 2) {
        return Status::PlanError("round expects 1 or 2 arguments");
      }
      return float64();
    };
    round_fn->impl = RoundImpl;
    reg(round_fn);
  }
  {
    auto power_fn = std::make_shared<ScalarFunctionDef>();
    power_fn->name = "power";
    power_fn->return_type = [](const std::vector<DataType>& args) {
      return CheckArity(args, 2, "power", float64());
    };
    power_fn->impl = [](const std::vector<ColumnarValue>& args,
                        int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto base_arr, args[0].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto exp_arr, args[1].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto base, compute::Cast(*base_arr, float64()));
      FUSION_ASSIGN_OR_RAISE(auto exponent, compute::Cast(*exp_arr, float64()));
      const auto& b = checked_cast<Float64Array>(*base);
      const auto& e = checked_cast<Float64Array>(*exponent);
      Float64Builder builder;
      for (int64_t i = 0; i < b.length(); ++i) {
        if (b.IsNull(i) || e.IsNull(i)) {
          builder.AppendNull();
        } else {
          builder.Append(std::pow(b.Value(i), e.Value(i)));
        }
      }
      FUSION_ASSIGN_OR_RAISE(auto out, builder.Finish());
      return ColumnarValue(std::move(out));
    };
    reg(power_fn);
  }

  // Strings ------------------------------------------------------------
  auto reg_string1 = [&](const char* name,
                         Result<ArrayPtr> (*kernel)(const Array&),
                         DataType ret) {
    auto fn = std::make_shared<ScalarFunctionDef>();
    fn->name = name;
    std::string fname = name;
    fn->return_type = [fname, ret](const std::vector<DataType>& args) {
      return CheckArity(args, 1, fname.c_str(), ret);
    };
    fn->impl = [kernel](const std::vector<ColumnarValue>& args,
                        int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto out, kernel(*arr));
      return ColumnarValue(std::move(out));
    };
    reg(fn);
  };
  reg_string1("upper", compute::Upper, utf8());
  reg_string1("lower", compute::Lower, utf8());
  reg_string1("trim", compute::Trim, utf8());
  reg_string1("length", compute::Length, int64());
  reg_string1("char_length", compute::Length, int64());
  {
    auto substr_fn = std::make_shared<ScalarFunctionDef>();
    substr_fn->name = "substr";
    substr_fn->return_type = [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.size() < 2 || args.size() > 3) {
        return Status::PlanError("substr expects 2 or 3 arguments");
      }
      return utf8();
    };
    substr_fn->impl = [](const std::vector<ColumnarValue>& args,
                         int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
      if (!args[1].is_scalar() || (args.size() > 2 && !args[2].is_scalar())) {
        return Status::NotImplemented("substr: start/length must be literals");
      }
      int64_t start = args[1].scalar().int_value();
      int64_t len = args.size() > 2 ? args[2].scalar().int_value() : -1;
      FUSION_ASSIGN_OR_RAISE(auto out, compute::Substr(*arr, start, len));
      return ColumnarValue(std::move(out));
    };
    reg(substr_fn);
  }
  {
    auto concat_fn = std::make_shared<ScalarFunctionDef>();
    concat_fn->name = "concat";
    concat_fn->return_type = [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.empty()) return Status::PlanError("concat expects arguments");
      return utf8();
    };
    concat_fn->impl = [](const std::vector<ColumnarValue>& args,
                         int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto acc_any, args[0].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto acc, compute::Cast(*acc_any, utf8()));
      for (size_t i = 1; i < args.size(); ++i) {
        FUSION_ASSIGN_OR_RAISE(auto next_any, args[i].ToArray(num_rows));
        FUSION_ASSIGN_OR_RAISE(auto next, compute::Cast(*next_any, utf8()));
        FUSION_ASSIGN_OR_RAISE(acc, compute::ConcatStrings(*acc, *next));
      }
      return ColumnarValue(std::move(acc));
    };
    reg(concat_fn);
  }
  {
    auto replace_fn = std::make_shared<ScalarFunctionDef>();
    replace_fn->name = "replace";
    replace_fn->return_type = [](const std::vector<DataType>& args) {
      return CheckArity(args, 3, "replace", utf8());
    };
    replace_fn->impl = [](const std::vector<ColumnarValue>& args,
                          int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
      if (!args[1].is_scalar() || !args[2].is_scalar()) {
        return Status::NotImplemented("replace: patterns must be literals");
      }
      FUSION_ASSIGN_OR_RAISE(auto out,
                             compute::ReplaceAll(*arr, args[1].scalar().string_value(),
                                                 args[2].scalar().string_value()));
      return ColumnarValue(std::move(out));
    };
    reg(replace_fn);
  }
  auto reg_string_pred = [&](const char* name,
                             Result<ArrayPtr> (*kernel)(const Array&,
                                                        std::string_view)) {
    auto fn = std::make_shared<ScalarFunctionDef>();
    fn->name = name;
    std::string fname = name;
    fn->return_type = [fname](const std::vector<DataType>& args) {
      return CheckArity(args, 2, fname.c_str(), boolean());
    };
    fn->impl = [kernel](const std::vector<ColumnarValue>& args,
                        int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
      if (!args[1].is_scalar()) {
        return Status::NotImplemented("pattern must be a literal");
      }
      FUSION_ASSIGN_OR_RAISE(auto out,
                             kernel(*arr, args[1].scalar().string_value()));
      return ColumnarValue(std::move(out));
    };
    reg(fn);
  };
  reg_string_pred("starts_with", compute::StartsWith);
  reg_string_pred("ends_with", compute::EndsWith);
  reg_string_pred("contains", compute::Contains);

  // Temporal -----------------------------------------------------------
  {
    auto date_part_fn = std::make_shared<ScalarFunctionDef>();
    date_part_fn->name = "date_part";
    date_part_fn->return_type = [](const std::vector<DataType>& args) {
      return CheckArity(args, 2, "date_part", int64());
    };
    date_part_fn->impl = [](const std::vector<ColumnarValue>& args,
                            int64_t num_rows) -> Result<ColumnarValue> {
      if (!args[0].is_scalar()) {
        return Status::Invalid("date_part: field must be a literal");
      }
      FUSION_ASSIGN_OR_RAISE(auto arr, args[1].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(
          auto out,
          compute::Extract(ParseDateField(args[0].scalar().string_value()), *arr));
      return ColumnarValue(std::move(out));
    };
    reg(date_part_fn);
  }
  {
    auto date_trunc_fn = std::make_shared<ScalarFunctionDef>();
    date_trunc_fn->name = "date_trunc";
    date_trunc_fn->return_type =
        [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.size() != 2) return Status::PlanError("date_trunc expects 2 args");
      return args[1];
    };
    date_trunc_fn->impl = [](const std::vector<ColumnarValue>& args,
                             int64_t num_rows) -> Result<ColumnarValue> {
      if (!args[0].is_scalar()) {
        return Status::Invalid("date_trunc: unit must be a literal");
      }
      FUSION_ASSIGN_OR_RAISE(auto arr, args[1].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(
          auto out,
          compute::DateTrunc(ParseTruncUnit(args[0].scalar().string_value()), *arr));
      return ColumnarValue(std::move(out));
    };
    reg(date_trunc_fn);
  }
  {
    auto to_date_fn = std::make_shared<ScalarFunctionDef>();
    to_date_fn->name = "to_date";
    to_date_fn->return_type = [](const std::vector<DataType>& args) {
      return CheckArity(args, 1, "to_date", date32());
    };
    to_date_fn->impl = [](const std::vector<ColumnarValue>& args,
                          int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto arr, args[0].ToArray(num_rows));
      const Array& sa = *arr;
      Date32Builder builder;
      for (int64_t i = 0; i < sa.length(); ++i) {
        if (sa.IsNull(i)) {
          builder.AppendNull();
          continue;
        }
        auto days = compute::ParseDate32(std::string(StringLikeValue(sa, i)));
        if (!days.ok()) {
          builder.AppendNull();
        } else {
          builder.Append(*days);
        }
      }
      FUSION_ASSIGN_OR_RAISE(auto out, builder.Finish());
      return ColumnarValue(std::move(out));
    };
    reg(to_date_fn);
  }

  // Conditional ----------------------------------------------------------
  {
    auto coalesce_fn = std::make_shared<ScalarFunctionDef>();
    coalesce_fn->name = "coalesce";
    coalesce_fn->return_type =
        [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.empty()) return Status::PlanError("coalesce expects arguments");
      DataType t = args[0];
      for (const auto& a : args) {
        FUSION_ASSIGN_OR_RAISE(t, compute::CommonType(t, a));
      }
      return t;
    };
    coalesce_fn->impl = [](const std::vector<ColumnarValue>& args,
                           int64_t num_rows) -> Result<ColumnarValue> {
      DataType out_type = null_type();
      for (const auto& a : args) {
        FUSION_ASSIGN_OR_RAISE(out_type, compute::CommonType(out_type, a.type()));
      }
      std::vector<ArrayPtr> arrays;
      for (const auto& a : args) {
        FUSION_ASSIGN_OR_RAISE(auto arr, a.ToArray(num_rows));
        FUSION_ASSIGN_OR_RAISE(arr, compute::Cast(*arr, out_type));
        arrays.push_back(std::move(arr));
      }
      FUSION_ASSIGN_OR_RAISE(auto builder, MakeBuilder(out_type));
      for (int64_t i = 0; i < num_rows; ++i) {
        bool done = false;
        for (const auto& arr : arrays) {
          if (arr->IsValid(i)) {
            builder->AppendFrom(*arr, i);
            done = true;
            break;
          }
        }
        if (!done) builder->AppendNull();
      }
      FUSION_ASSIGN_OR_RAISE(auto out, builder->Finish());
      return ColumnarValue(std::move(out));
    };
    reg(coalesce_fn);
  }
  {
    auto nullif_fn = std::make_shared<ScalarFunctionDef>();
    nullif_fn->name = "nullif";
    nullif_fn->return_type =
        [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.size() != 2) return Status::PlanError("nullif expects 2 args");
      return args[0];
    };
    nullif_fn->impl = [](const std::vector<ColumnarValue>& args,
                         int64_t num_rows) -> Result<ColumnarValue> {
      FUSION_ASSIGN_OR_RAISE(auto a, args[0].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto b_any, args[1].ToArray(num_rows));
      FUSION_ASSIGN_OR_RAISE(auto b, compute::Cast(*b_any, a->type()));
      FUSION_ASSIGN_OR_RAISE(auto builder, MakeBuilder(a->type()));
      for (int64_t i = 0; i < num_rows; ++i) {
        if (a->IsValid(i) && b->IsValid(i) && ArrayElementsEqual(*a, i, *b, i)) {
          builder->AppendNull();
        } else {
          builder->AppendFrom(*a, i);
        }
      }
      FUSION_ASSIGN_OR_RAISE(auto out, builder->Finish());
      return ColumnarValue(std::move(out));
    };
    reg(nullif_fn);
  }
}

}  // namespace logical
}  // namespace fusion
