#include "logical/sql_planner.h"

#include <algorithm>
#include <charconv>

#include "compute/cast.h"
#include "compute/temporal.h"
#include "logical/expr_eval.h"
#include "logical/simplify.h"

namespace fusion {
namespace logical {

namespace {

Result<DataType> TypeFromSqlName(const std::string& name) {
  if (name == "int" || name == "integer" || name == "bigint" || name == "int8" ||
      name == "long") {
    return int64();
  }
  if (name == "smallint" || name == "int4" || name == "int32") return int32();
  if (name.rfind("decimal", 0) == 0 || name.rfind("numeric", 0) == 0) {
    // "decimal"/"numeric" with or without (p,s); both names are 7 chars.
    return TypeFromString("decimal" + name.substr(7));
  }
  if (name == "double" || name == "float" || name == "real" || name == "float8") {
    return float64();
  }
  if (name == "varchar" || name == "text" || name == "char" || name == "string") {
    return utf8();
  }
  if (name == "date") return date32();
  if (name == "timestamp" || name == "datetime") return timestamp();
  if (name == "bool" || name == "boolean") return boolean();
  return Status::PlanError("unknown type name '" + name + "' in CAST");
}

Result<BinaryOp> BinaryOpFromText(const std::string& op) {
  if (op == "AND") return BinaryOp::kAnd;
  if (op == "OR") return BinaryOp::kOr;
  if (op == "=") return BinaryOp::kEq;
  if (op == "<>" || op == "!=") return BinaryOp::kNeq;
  if (op == "<") return BinaryOp::kLt;
  if (op == "<=") return BinaryOp::kLtEq;
  if (op == ">") return BinaryOp::kGt;
  if (op == ">=") return BinaryOp::kGtEq;
  if (op == "+") return BinaryOp::kPlus;
  if (op == "-") return BinaryOp::kMinus;
  if (op == "*") return BinaryOp::kMultiply;
  if (op == "/") return BinaryOp::kDivide;
  if (op == "%") return BinaryOp::kModulo;
  if (op == "||") return BinaryOp::kStringConcat;
  return Status::PlanError("unknown binary operator '" + op + "'");
}

/// Names of the output columns an Aggregate node produces for the given
/// group/aggregate expressions (mirrors SchemaFromExprs naming).
std::vector<std::string> OutputNames(const std::vector<ExprPtr>& exprs) {
  std::vector<std::string> names;
  names.reserve(exprs.size());
  for (const auto& e : exprs) names.push_back(e->DisplayName());
  return names;
}

bool SameExpr(const ExprPtr& a, const ExprPtr& b) {
  return Unalias(a)->ToString() == Unalias(b)->ToString();
}

/// Collect all aggregate subexpressions (deduplicated).
void CollectAggregates(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  VisitExpr(expr, [out](const ExprPtr& e) {
    if (e->kind == Expr::Kind::kAggregate) {
      for (const auto& seen : *out) {
        if (SameExpr(seen, e)) return false;
      }
      out->push_back(e);
      return false;  // don't descend into aggregate args
    }
    return true;
  });
}

void CollectWindows(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  VisitExpr(expr, [out](const ExprPtr& e) {
    if (e->kind == Expr::Kind::kWindow) {
      for (const auto& seen : *out) {
        if (SameExpr(seen, e)) return false;
      }
      out->push_back(e);
      return false;
    }
    return true;
  });
}

WindowFrame ConvertFrame(const sql::WindowSpec& spec) {
  WindowFrame frame;
  if (!spec.has_frame) {
    // SQL default: RANGE UNBOUNDED PRECEDING .. CURRENT ROW when ORDER
    // BY is present, else the whole partition.
    frame.is_rows = false;
    frame.start = WindowFrame::BoundKind::kUnboundedPreceding;
    frame.end = spec.order_by.empty()
                    ? WindowFrame::BoundKind::kUnboundedFollowing
                    : WindowFrame::BoundKind::kCurrentRow;
    return frame;
  }
  frame.is_rows = spec.frame_is_rows;
  auto convert_bound = [](const sql::FrameBound& b, WindowFrame::BoundKind* kind,
                          int64_t* offset) {
    switch (b.kind) {
      case sql::FrameBound::Kind::kUnboundedPreceding:
        *kind = WindowFrame::BoundKind::kUnboundedPreceding;
        break;
      case sql::FrameBound::Kind::kPreceding:
        *kind = WindowFrame::BoundKind::kPreceding;
        *offset = b.offset;
        break;
      case sql::FrameBound::Kind::kCurrentRow:
        *kind = WindowFrame::BoundKind::kCurrentRow;
        break;
      case sql::FrameBound::Kind::kFollowing:
        *kind = WindowFrame::BoundKind::kFollowing;
        *offset = b.offset;
        break;
      case sql::FrameBound::Kind::kUnboundedFollowing:
        *kind = WindowFrame::BoundKind::kUnboundedFollowing;
        break;
    }
  };
  convert_bound(spec.frame_start, &frame.start, &frame.start_offset);
  convert_bound(spec.frame_end, &frame.end, &frame.end_offset);
  return frame;
}

}  // namespace

Result<ExprPtr> RewriteToColumns(const ExprPtr& expr,
                                 const std::vector<ExprPtr>& sources,
                                 const std::vector<std::string>& names) {
  return TransformExpr(expr, [&](const ExprPtr& e) -> Result<ExprPtr> {
    for (size_t i = 0; i < sources.size(); ++i) {
      if (SameExpr(e, sources[i]) && e->kind != Expr::Kind::kAlias) {
        return Col(names[i]);
      }
    }
    return e;
  });
}

Result<PlanPtr> SqlPlanner::PlanStatement(const sql::Statement& stmt) {
  FUSION_ASSIGN_OR_RAISE(PlanPtr plan, PlanQuery(*stmt.query, {}));
  if (stmt.kind == sql::Statement::Kind::kExplain) {
    return MakeExplain(std::move(plan), stmt.analyze);
  }
  return plan;
}

Result<PlanPtr> SqlPlanner::PlanSql(const std::string& sql) {
  FUSION_ASSIGN_OR_RAISE(sql::Statement stmt, sql::Parser::Parse(sql));
  return PlanStatement(stmt);
}

Result<PlanPtr> SqlPlanner::PlanQuery(const sql::AstQuery& query,
                                      const CteScope& outer_ctes) {
  CteScope ctes = outer_ctes;
  for (const auto& [name, cte_query] : query.ctes) {
    FUSION_ASSIGN_OR_RAISE(PlanPtr cte_plan, PlanQuery(*cte_query, ctes));
    FUSION_ASSIGN_OR_RAISE(cte_plan, MakeSubqueryAlias(std::move(cte_plan), name));
    ctes[name] = std::move(cte_plan);
  }

  FUSION_ASSIGN_OR_RAISE(PlanPtr plan, PlanSelectCore(query.cores[0], ctes));
  for (size_t i = 1; i < query.cores.size(); ++i) {
    FUSION_ASSIGN_OR_RAISE(PlanPtr next, PlanSelectCore(query.cores[i], ctes));
    switch (query.set_ops[i - 1]) {
      case sql::SetOp::kUnionAll: {
        FUSION_ASSIGN_OR_RAISE(plan, MakeUnion({std::move(plan), std::move(next)}));
        break;
      }
      case sql::SetOp::kUnionDistinct: {
        FUSION_ASSIGN_OR_RAISE(plan, MakeUnion({std::move(plan), std::move(next)}));
        FUSION_ASSIGN_OR_RAISE(plan, MakeDistinct(std::move(plan)));
        break;
      }
      case sql::SetOp::kIntersect:
      case sql::SetOp::kExcept: {
        // INTERSECT -> semi join on all columns; EXCEPT -> anti join
        // (both with DISTINCT output, per SQL set semantics).
        if (plan->schema().num_fields() != next->schema().num_fields()) {
          return Status::PlanError("set operation: column count mismatch");
        }
        std::vector<std::pair<ExprPtr, ExprPtr>> on;
        for (int c = 0; c < plan->schema().num_fields(); ++c) {
          on.emplace_back(
              Col(plan->schema().qualifier(c), plan->schema().field(c).name()),
              Col(next->schema().qualifier(c), next->schema().field(c).name()));
        }
        JoinKind kind = query.set_ops[i - 1] == sql::SetOp::kIntersect
                            ? JoinKind::kLeftSemi
                            : JoinKind::kLeftAnti;
        FUSION_ASSIGN_OR_RAISE(
            plan, MakeJoin(std::move(plan), std::move(next), kind, std::move(on)));
        FUSION_ASSIGN_OR_RAISE(plan, MakeDistinct(std::move(plan)));
        break;
      }
    }
  }

  if (!query.order_by.empty()) {
    // ORDER BY may reference output aliases, ordinals, or arbitrary
    // expressions over the input of the final projection.
    std::vector<SortExpr> sort_exprs;
    std::vector<ExprPtr> extra_projections;
    const PlanSchema& out_schema = plan->schema();
    const bool is_projection = plan->kind == PlanKind::kProjection;
    for (const auto& item : query.order_by) {
      SortExpr se;
      se.options.descending = item.descending;
      se.options.nulls_first =
          item.nulls_specified ? item.nulls_first : item.descending;
      // Ordinal?
      if (item.expr->kind == sql::AstExpr::Kind::kNumber) {
        int64_t ordinal = 0;
        std::from_chars(item.expr->text.data(),
                        item.expr->text.data() + item.expr->text.size(), ordinal);
        if (ordinal < 1 || ordinal > out_schema.num_fields()) {
          return Status::PlanError("ORDER BY ordinal out of range");
        }
        se.expr = Col(out_schema.field(static_cast<int>(ordinal - 1)).name());
        sort_exprs.push_back(std::move(se));
        continue;
      }
      // Try against the output schema (aliases).
      auto converted = ConvertExpr(item.expr, out_schema, ctes);
      if (converted.ok() && !ContainsAggregate(*converted)) {
        se.expr = *converted;
        sort_exprs.push_back(std::move(se));
        continue;
      }
      // ORDER BY an aggregate (e.g. ORDER BY count(*) DESC): match the
      // aggregate's display name against the projected output columns.
      if (converted.ok() && ContainsAggregate(*converted)) {
        std::string display = (*converted)->DisplayName();
        if (out_schema.IndexOf("", display).ok()) {
          se.expr = Col(display);
          sort_exprs.push_back(std::move(se));
          continue;
        }
      }
      // Fall back: expression over the projection's input, projected as
      // an extra (hidden) column.
      if (!is_projection) return converted.status();
      FUSION_ASSIGN_OR_RAISE(ExprPtr under,
                             ConvertExpr(item.expr, plan->child(0)->schema(), ctes));
      FUSION_ASSIGN_OR_RAISE(under, Coerce(under, plan->child(0)->schema()));
      std::string hidden = "__sort_" + std::to_string(extra_projections.size());
      extra_projections.push_back(AliasExpr(under, hidden));
      se.expr = Col(hidden);
      sort_exprs.push_back(std::move(se));
    }
    if (!extra_projections.empty()) {
      // Extend the projection, sort, then trim back to the original.
      std::vector<ExprPtr> extended = plan->exprs;
      std::vector<ExprPtr> final_cols;
      for (int i = 0; i < out_schema.num_fields(); ++i) {
        final_cols.push_back(Col(out_schema.field(i).name()));
      }
      for (auto& e : extra_projections) extended.push_back(std::move(e));
      FUSION_ASSIGN_OR_RAISE(plan, MakeProjection(plan->child(0), extended));
      FUSION_ASSIGN_OR_RAISE(plan, MakeSort(std::move(plan), sort_exprs));
      FUSION_ASSIGN_OR_RAISE(plan, MakeProjection(std::move(plan), final_cols));
    } else {
      FUSION_ASSIGN_OR_RAISE(plan, MakeSort(std::move(plan), sort_exprs));
    }
  }
  if (query.limit >= 0 || query.offset > 0) {
    FUSION_ASSIGN_OR_RAISE(plan, MakeLimit(std::move(plan), query.offset,
                                           query.limit));
  }
  return plan;
}

Result<PlanPtr> SqlPlanner::PlanTableRef(const sql::TableRef& ref,
                                         const CteScope& ctes) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable: {
      auto it = ctes.find(ref.name);
      PlanPtr plan;
      if (it != ctes.end()) {
        plan = it->second;
      } else {
        FUSION_ASSIGN_OR_RAISE(auto provider, resolver_(ref.name));
        FUSION_ASSIGN_OR_RAISE(plan, MakeTableScan(ref.name, std::move(provider)));
      }
      if (!ref.alias.empty()) {
        return MakeSubqueryAlias(std::move(plan), ref.alias);
      }
      return plan;
    }
    case sql::TableRef::Kind::kSubquery: {
      FUSION_ASSIGN_OR_RAISE(PlanPtr plan, PlanQuery(*ref.subquery, ctes));
      if (!ref.alias.empty()) {
        return MakeSubqueryAlias(std::move(plan), ref.alias);
      }
      return plan;
    }
    case sql::TableRef::Kind::kJoin: {
      FUSION_ASSIGN_OR_RAISE(PlanPtr left, PlanTableRef(*ref.left, ctes));
      FUSION_ASSIGN_OR_RAISE(PlanPtr right, PlanTableRef(*ref.right, ctes));
      JoinKind kind = JoinKind::kInner;
      switch (ref.join_kind) {
        case sql::TableRef::JoinKind::kInner: kind = JoinKind::kInner; break;
        case sql::TableRef::JoinKind::kLeft: kind = JoinKind::kLeft; break;
        case sql::TableRef::JoinKind::kRight: kind = JoinKind::kRight; break;
        case sql::TableRef::JoinKind::kFull: kind = JoinKind::kFull; break;
        case sql::TableRef::JoinKind::kLeftSemi: kind = JoinKind::kLeftSemi; break;
        case sql::TableRef::JoinKind::kLeftAnti: kind = JoinKind::kLeftAnti; break;
        case sql::TableRef::JoinKind::kCross:
          return MakeCrossJoin(std::move(left), std::move(right));
      }
      // USING(cols) -> equi pairs.
      if (!ref.using_columns.empty()) {
        std::vector<std::pair<ExprPtr, ExprPtr>> on;
        for (const auto& col : ref.using_columns) {
          on.emplace_back(Col(col), Col(col));
        }
        return MakeJoin(std::move(left), std::move(right), kind, std::move(on));
      }
      // ON condition: extract equi pairs; everything else becomes the
      // join filter (paper §6.4: equi-join predicate identification).
      PlanSchema combined = left->schema().Concat(right->schema());
      FUSION_ASSIGN_OR_RAISE(ExprPtr on_expr, ConvertExpr(ref.on, combined, ctes));
      FUSION_ASSIGN_OR_RAISE(on_expr, Coerce(on_expr, combined));
      std::vector<ExprPtr> conjuncts;
      SplitConjunction(on_expr, &conjuncts);
      std::vector<std::pair<ExprPtr, ExprPtr>> on;
      std::vector<ExprPtr> residual;
      auto side_of = [&](const ExprPtr& e) -> int {
        // 0 = left only, 1 = right only, -1 = mixed/none.
        bool uses_left = false, uses_right = false;
        std::vector<ExprPtr> cols;
        CollectColumns(e, &cols);
        for (const auto& c : cols) {
          bool on_left = left->schema().IndexOf(c->qualifier, c->name).ok();
          bool on_right = right->schema().IndexOf(c->qualifier, c->name).ok();
          if (on_left && !on_right) uses_left = true;
          else if (on_right && !on_left) uses_right = true;
          else return -1;  // ambiguous
        }
        if (uses_left && !uses_right) return 0;
        if (uses_right && !uses_left) return 1;
        return -1;
      };
      for (const auto& conj : conjuncts) {
        const ExprPtr& c = Unalias(conj);
        if (c->kind == Expr::Kind::kBinary && c->op == BinaryOp::kEq) {
          int ls = side_of(c->children[0]);
          int rs = side_of(c->children[1]);
          if (ls == 0 && rs == 1) {
            on.emplace_back(c->children[0], c->children[1]);
            continue;
          }
          if (ls == 1 && rs == 0) {
            on.emplace_back(c->children[1], c->children[0]);
            continue;
          }
        }
        residual.push_back(conj);
      }
      return MakeJoin(std::move(left), std::move(right), kind, std::move(on),
                      Conjunction(residual));
    }
  }
  return Status::Internal("unhandled table ref kind");
}

Result<PlanPtr> SqlPlanner::ApplyWhere(PlanPtr input, const sql::AstExprPtr& where,
                                       const CteScope& ctes) {
  if (where == nullptr) return input;
  // Split AST-level conjuncts so IN/EXISTS subqueries become joins.
  std::vector<sql::AstExprPtr> conjuncts;
  std::function<void(const sql::AstExprPtr&)> split = [&](const sql::AstExprPtr& e) {
    if (e->kind == sql::AstExpr::Kind::kBinary && e->op == "AND") {
      split(e->left);
      split(e->right);
    } else {
      conjuncts.push_back(e);
    }
  };
  split(where);

  std::vector<ExprPtr> predicates;
  for (const auto& conj : conjuncts) {
    if (conj->kind == sql::AstExpr::Kind::kInSubquery) {
      FUSION_ASSIGN_OR_RAISE(ExprPtr key,
                             ConvertExpr(conj->left, input->schema(), ctes));
      FUSION_ASSIGN_OR_RAISE(PlanPtr sub, PlanQuery(*conj->subquery, ctes));
      if (sub->schema().num_fields() != 1) {
        return Status::PlanError("IN subquery must produce one column");
      }
      ExprPtr sub_key = Col(sub->schema().qualifier(0), sub->schema().field(0).name());
      FUSION_ASSIGN_OR_RAISE(
          input, MakeJoin(std::move(input), std::move(sub),
                          conj->negated ? JoinKind::kLeftAnti : JoinKind::kLeftSemi,
                          {{key, sub_key}}));
      continue;
    }
    if (conj->kind == sql::AstExpr::Kind::kExists) {
      return Status::NotImplemented(
          "EXISTS subqueries are not supported; rewrite as a join "
          "(see DESIGN.md §5.7)");
    }
    FUSION_ASSIGN_OR_RAISE(ExprPtr p, ConvertExpr(conj, input->schema(), ctes));
    if (ContainsAggregate(p)) {
      return Status::PlanError("aggregate functions are not allowed in WHERE");
    }
    FUSION_ASSIGN_OR_RAISE(p, Coerce(p, input->schema()));
    predicates.push_back(std::move(p));
  }
  if (predicates.empty()) return input;
  FUSION_ASSIGN_OR_RAISE(ExprPtr predicate, SimplifyExpr(Conjunction(predicates)));
  return MakeFilter(std::move(input), std::move(predicate));
}

Result<PlanPtr> SqlPlanner::PlanSelectCore(const sql::SelectCore& core,
                                           const CteScope& ctes) {
  // FROM.
  PlanPtr plan;
  if (core.from != nullptr) {
    FUSION_ASSIGN_OR_RAISE(plan, PlanTableRef(*core.from, ctes));
  } else {
    FUSION_ASSIGN_OR_RAISE(plan, MakeEmptyRelation(/*produce_one_row=*/true));
  }

  // WHERE (with IN-subquery -> semi-join rewriting).
  FUSION_ASSIGN_OR_RAISE(plan, ApplyWhere(std::move(plan), core.where, ctes));

  // SELECT items (star expansion + conversion).
  const PlanSchema from_schema = plan->schema();
  std::vector<ExprPtr> select_exprs;
  for (const auto& item : core.items) {
    if (item.is_star) {
      for (int i = 0; i < from_schema.num_fields(); ++i) {
        if (!item.star_qualifier.empty() &&
            from_schema.qualifier(i) != item.star_qualifier) {
          continue;
        }
        select_exprs.push_back(
            Col(from_schema.qualifier(i), from_schema.field(i).name()));
      }
      continue;
    }
    FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(item.expr, from_schema, ctes));
    FUSION_ASSIGN_OR_RAISE(e, Coerce(e, from_schema));
    FUSION_ASSIGN_OR_RAISE(e, SimplifyExpr(e));
    if (!item.alias.empty()) e = AliasExpr(e, item.alias);
    select_exprs.push_back(std::move(e));
  }

  // HAVING (may contain aggregates).
  ExprPtr having;
  if (core.having != nullptr) {
    FUSION_ASSIGN_OR_RAISE(having, ConvertExpr(core.having, from_schema, ctes));
    FUSION_ASSIGN_OR_RAISE(having, Coerce(having, from_schema));
  }

  // GROUP BY expressions (support ordinals and select aliases).
  std::vector<ExprPtr> group_exprs;
  for (const auto& g : core.group_by) {
    if (g->kind == sql::AstExpr::Kind::kNumber) {
      int64_t ordinal = 0;
      std::from_chars(g->text.data(), g->text.data() + g->text.size(), ordinal);
      if (ordinal >= 1 && ordinal <= static_cast<int64_t>(select_exprs.size())) {
        group_exprs.push_back(Unalias(select_exprs[ordinal - 1]));
        continue;
      }
    }
    if (g->kind == sql::AstExpr::Kind::kColumn && g->qualifier.empty()) {
      // Alias reference?
      bool matched = false;
      if (!from_schema.IndexOf("", g->name).ok()) {
        for (const auto& se : select_exprs) {
          if (se->kind == Expr::Kind::kAlias && se->alias == g->name) {
            group_exprs.push_back(Unalias(se));
            matched = true;
            break;
          }
        }
      }
      if (matched) continue;
    }
    FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(g, from_schema, ctes));
    FUSION_ASSIGN_OR_RAISE(e, Coerce(e, from_schema));
    group_exprs.push_back(std::move(e));
  }

  // Aggregation.
  std::vector<ExprPtr> aggregates;
  for (const auto& e : select_exprs) CollectAggregates(e, &aggregates);
  if (having != nullptr) CollectAggregates(having, &aggregates);

  if (!aggregates.empty() || !group_exprs.empty()) {
    FUSION_ASSIGN_OR_RAISE(plan, MakeAggregate(plan, group_exprs, aggregates));
    // Re-express select/having over the aggregate's output columns.
    std::vector<ExprPtr> sources = group_exprs;
    sources.insert(sources.end(), aggregates.begin(), aggregates.end());
    std::vector<std::string> names = OutputNames(sources);
    for (auto& e : select_exprs) {
      FUSION_ASSIGN_OR_RAISE(e, RewriteToColumns(e, sources, names));
      // Anything left referencing a non-grouped column is an error.
      std::vector<ExprPtr> cols;
      CollectColumns(e, &cols);
      for (const auto& c : cols) {
        if (!plan->schema().IndexOf(c->qualifier, c->name).ok()) {
          return Status::PlanError("column '" + c->name +
                                   "' must appear in GROUP BY or an aggregate");
        }
      }
    }
    if (having != nullptr) {
      FUSION_ASSIGN_OR_RAISE(having, RewriteToColumns(having, sources, names));
      FUSION_ASSIGN_OR_RAISE(plan, MakeFilter(std::move(plan), having));
    }
  } else if (having != nullptr) {
    return Status::PlanError("HAVING requires GROUP BY or aggregates");
  }

  // Window functions (evaluated after aggregation).
  std::vector<ExprPtr> windows;
  for (const auto& e : select_exprs) CollectWindows(e, &windows);
  if (!windows.empty()) {
    FUSION_ASSIGN_OR_RAISE(plan, MakeWindow(plan, windows));
    std::vector<std::string> names = OutputNames(windows);
    for (auto& e : select_exprs) {
      FUSION_ASSIGN_OR_RAISE(e, RewriteToColumns(e, windows, names));
    }
  }

  FUSION_ASSIGN_OR_RAISE(plan, MakeProjection(std::move(plan), select_exprs));
  if (core.distinct) {
    FUSION_ASSIGN_OR_RAISE(plan, MakeDistinct(std::move(plan)));
  }
  return plan;
}

Result<ExprPtr> SqlPlanner::Coerce(ExprPtr expr, const PlanSchema& schema) {
  return TransformExpr(expr, [&](const ExprPtr& e) -> Result<ExprPtr> {
    if (e->kind != Expr::Kind::kBinary) return e;
    if (e->op == BinaryOp::kAnd || e->op == BinaryOp::kOr ||
        e->op == BinaryOp::kStringConcat) {
      return e;
    }
    FUSION_ASSIGN_OR_RAISE(DataType lt, e->children[0]->GetType(schema));
    FUSION_ASSIGN_OR_RAISE(DataType rt, e->children[1]->GetType(schema));
    if (lt == rt) return e;
    // Temporal +/- integer (date math) keeps operands as-is.
    if (IsArithmeticOp(e->op) && (lt.is_temporal() || rt.is_temporal())) return e;
    if (IsArithmeticOp(e->op) && (lt.is_decimal() || rt.is_decimal())) {
      // Decimal arithmetic must NOT rescale decimal operands: the kernel
      // propagates (precision, scale) itself (multiplication adds scales,
      // so forcing a common scale up front would be wrong). Only the
      // non-decimal side is coerced.
      if (lt.is_decimal() && rt.is_decimal()) return e;
      const int dec_idx = lt.is_decimal() ? 0 : 1;
      const int other_idx = 1 - dec_idx;
      const DataType dec = dec_idx == 0 ? lt : rt;
      const DataType other = dec_idx == 0 ? rt : lt;
      auto copy = std::make_shared<Expr>(*e);
      if (other.is_floating()) {
        // Doubles pull the expression into the approximate domain.
        copy->children[dec_idx] = CastExpr(copy->children[dec_idx], float64());
      } else if (other.is_integer()) {
        const int digits = other.id() == TypeId::kInt64 ? 19 : 10;
        copy->children[other_idx] =
            CastExpr(copy->children[other_idx],
                     decimal128(std::min<int>(kDecimalMaxPrecision, digits), 0));
      } else if (other.is_string()) {
        copy->children[other_idx] = CastExpr(copy->children[other_idx], dec);
      } else {
        return Status::TypeError("no arithmetic between " + lt.ToString() +
                                 " and " + rt.ToString());
      }
      return ExprPtr(copy);
    }
    FUSION_ASSIGN_OR_RAISE(DataType common, compute::CommonType(lt, rt));
    auto copy = std::make_shared<Expr>(*e);
    if (lt != common) copy->children[0] = CastExpr(copy->children[0], common);
    if (rt != common) copy->children[1] = CastExpr(copy->children[1], common);
    return ExprPtr(copy);
  });
}

Result<ExprPtr> SqlPlanner::ConvertExpr(const sql::AstExprPtr& ast,
                                        const PlanSchema& schema,
                                        const CteScope& ctes) {
  using K = sql::AstExpr::Kind;
  switch (ast->kind) {
    case K::kColumn: {
      // Resolve now and store the schema's canonical (case-preserving)
      // column name so downstream rules match field names exactly.
      FUSION_ASSIGN_OR_RAISE(int idx, schema.IndexOf(ast->qualifier, ast->name));
      std::string qualifier = ast->qualifier;
      if (!qualifier.empty()) qualifier = schema.qualifier(idx);
      return Col(std::move(qualifier), schema.field(idx).name());
    }
    case K::kNumber: {
      // Integral literals become int64; others float64.
      if (ast->text.find('.') == std::string::npos &&
          ast->text.find('e') == std::string::npos &&
          ast->text.find('E') == std::string::npos) {
        int64_t v = 0;
        auto res = std::from_chars(ast->text.data(),
                                   ast->text.data() + ast->text.size(), v);
        if (res.ec == std::errc()) return Lit(v);
      }
      return Lit(std::strtod(ast->text.c_str(), nullptr));
    }
    case K::kString:
      return Lit(ast->text);
    case K::kBool:
      return Lit(Scalar::Bool(ast->bool_value));
    case K::kNull:
      return Lit(Scalar());
    case K::kDate: {
      FUSION_ASSIGN_OR_RAISE(int32_t days, compute::ParseDate32(ast->text));
      return Lit(Scalar::Date32(days));
    }
    case K::kTimestampLit: {
      FUSION_ASSIGN_OR_RAISE(int64_t micros, compute::ParseTimestamp(ast->text));
      return Lit(Scalar::Timestamp(micros));
    }
    case K::kInterval:
      return Status::PlanError(
          "INTERVAL literals are only supported in +/- expressions with "
          "constant temporal operands");
    case K::kStar:
      return Status::PlanError("'*' is only valid in COUNT(*)");
    case K::kBinary: {
      // date/timestamp +/- INTERVAL folds at plan time.
      if (ast->right != nullptr && ast->right->kind == K::kInterval &&
          (ast->op == "+" || ast->op == "-")) {
        FUSION_ASSIGN_OR_RAISE(ExprPtr left, ConvertExpr(ast->left, schema, ctes));
        if (!IsConstant(left)) {
          return Status::NotImplemented(
              "INTERVAL arithmetic requires a constant temporal operand");
        }
        FUSION_ASSIGN_OR_RAISE(Scalar base, EvaluateConstantExpr(left));
        FUSION_ASSIGN_OR_RAISE(
            Scalar shifted,
            AddInterval(base, ast->right->interval_months, ast->right->interval_days,
                        ast->op == "-"));
        return Lit(std::move(shifted));
      }
      FUSION_ASSIGN_OR_RAISE(ExprPtr left, ConvertExpr(ast->left, schema, ctes));
      FUSION_ASSIGN_OR_RAISE(ExprPtr right, ConvertExpr(ast->right, schema, ctes));
      FUSION_ASSIGN_OR_RAISE(BinaryOp op, BinaryOpFromText(ast->op));
      return Binary(std::move(left), op, std::move(right));
    }
    case K::kUnary: {
      FUSION_ASSIGN_OR_RAISE(ExprPtr child, ConvertExpr(ast->left, schema, ctes));
      if (ast->op == "NOT") return Not(std::move(child));
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kNegative;
      e->children = {std::move(child)};
      return ExprPtr(e);
    }
    case K::kIsNull: {
      FUSION_ASSIGN_OR_RAISE(ExprPtr child, ConvertExpr(ast->left, schema, ctes));
      return ast->negated ? IsNotNullExpr(std::move(child))
                          : IsNullExpr(std::move(child));
    }
    case K::kBetween: {
      FUSION_ASSIGN_OR_RAISE(ExprPtr value, ConvertExpr(ast->left, schema, ctes));
      FUSION_ASSIGN_OR_RAISE(ExprPtr low, ConvertExpr(ast->low, schema, ctes));
      FUSION_ASSIGN_OR_RAISE(ExprPtr high, ConvertExpr(ast->high, schema, ctes));
      ExprPtr range = And(Binary(value, BinaryOp::kGtEq, std::move(low)),
                          Binary(value, BinaryOp::kLtEq, std::move(high)));
      return ast->negated ? Not(std::move(range)) : range;
    }
    case K::kInList: {
      FUSION_ASSIGN_OR_RAISE(ExprPtr value, ConvertExpr(ast->left, schema, ctes));
      std::vector<ExprPtr> list;
      for (const auto& item : ast->list) {
        FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(item, schema, ctes));
        list.push_back(std::move(e));
      }
      return InListExpr(std::move(value), std::move(list), ast->negated);
    }
    case K::kInSubquery:
      return Status::NotImplemented(
          "IN (subquery) is only supported as a top-level WHERE conjunct");
    case K::kExists:
      return Status::NotImplemented(
          "EXISTS subqueries are not supported; rewrite as a join");
    case K::kLike: {
      FUSION_ASSIGN_OR_RAISE(ExprPtr value, ConvertExpr(ast->left, schema, ctes));
      FUSION_ASSIGN_OR_RAISE(ExprPtr pattern, ConvertExpr(ast->right, schema, ctes));
      return LikeExpr(std::move(value), std::move(pattern), ast->negated,
                      ast->case_insensitive);
    }
    case K::kCase: {
      std::vector<std::pair<ExprPtr, ExprPtr>> when_then;
      ExprPtr operand;
      if (ast->case_operand != nullptr) {
        FUSION_ASSIGN_OR_RAISE(operand, ConvertExpr(ast->case_operand, schema, ctes));
      }
      for (const auto& [when_ast, then_ast] : ast->when_clauses) {
        FUSION_ASSIGN_OR_RAISE(ExprPtr when, ConvertExpr(when_ast, schema, ctes));
        FUSION_ASSIGN_OR_RAISE(ExprPtr then, ConvertExpr(then_ast, schema, ctes));
        if (operand != nullptr) {
          // CASE x WHEN v ... desugars to CASE WHEN x = v ...
          when = Binary(operand, BinaryOp::kEq, std::move(when));
        }
        when_then.emplace_back(std::move(when), std::move(then));
      }
      ExprPtr else_expr;
      if (ast->else_expr != nullptr) {
        FUSION_ASSIGN_OR_RAISE(else_expr, ConvertExpr(ast->else_expr, schema, ctes));
      }
      return CaseExpr(std::move(when_then), std::move(else_expr));
    }
    case K::kCast: {
      FUSION_ASSIGN_OR_RAISE(DataType type, TypeFromSqlName(ast->cast_type));
      if (type.is_decimal()) {
        // Exact decimal literal: CAST(1.23 AS DECIMAL(p,s)) parses the
        // literal text directly instead of routing through a double.
        const sql::AstExpr* lit = ast->left.get();
        bool negated = false;
        if (lit->kind == K::kUnary && lit->op == "-" && lit->left != nullptr &&
            lit->left->kind == K::kNumber) {
          negated = true;
          lit = lit->left.get();
        }
        if (lit->kind == K::kNumber) {
          Decimal128 v;
          if (DecimalFromString(lit->text, type.precision(), type.scale(), &v)) {
            return Lit(Scalar::Decimal(negated ? -v : v, type));
          }
          return Status::PlanError("decimal literal '" + lit->text +
                                   "' does not fit " + type.ToString());
        }
      }
      FUSION_ASSIGN_OR_RAISE(ExprPtr child, ConvertExpr(ast->left, schema, ctes));
      return CastExpr(std::move(child), type);
    }
    case K::kScalarSubquery: {
      FUSION_ASSIGN_OR_RAISE(PlanPtr sub, PlanQuery(*ast->subquery, ctes));
      if (sub->schema().num_fields() != 1) {
        return Status::PlanError("scalar subquery must produce one column");
      }
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kScalarSubquery;
      e->cast_type = sub->schema().field(0).type();
      e->subquery_plan = std::static_pointer_cast<void>(sub);
      return ExprPtr(e);
    }
    case K::kFunction: {
      // Window invocation?
      if (ast->window != nullptr) {
        FUSION_ASSIGN_OR_RAISE(auto fn, registry_->GetWindow(ast->func_name));
        std::vector<ExprPtr> args;
        for (const auto& arg : ast->args) {
          if (arg->kind == K::kStar) continue;  // count(*) over(...)
          FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(arg, schema, ctes));
          args.push_back(std::move(e));
        }
        auto spec = std::make_shared<WindowSpecExpr>();
        for (const auto& p : ast->window->partition_by) {
          FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(p, schema, ctes));
          spec->partition_by.push_back(std::move(e));
        }
        for (const auto& o : ast->window->order_by) {
          SortExpr se;
          FUSION_ASSIGN_OR_RAISE(se.expr, ConvertExpr(o.expr, schema, ctes));
          se.options.descending = o.descending;
          se.options.nulls_first = o.nulls_specified ? o.nulls_first : o.descending;
          spec->order_by.push_back(std::move(se));
        }
        spec->frame = ConvertFrame(*ast->window);
        spec->has_explicit_frame = ast->window->has_frame;
        return WindowCall(std::move(fn), std::move(args), std::move(spec));
      }
      // Aggregate?
      std::string name = ast->func_name;
      if (registry_->HasAggregate(name) ||
          (name == "count" && ast->distinct)) {
        if (ast->distinct) {
          if (name != "count") {
            return Status::NotImplemented("DISTINCT is only supported for count()");
          }
          name = "count_distinct";
        }
        FUSION_ASSIGN_OR_RAISE(auto fn, registry_->GetAggregate(name));
        std::vector<ExprPtr> args;
        for (const auto& arg : ast->args) {
          if (arg->kind == K::kStar) continue;  // count(*)
          FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(arg, schema, ctes));
          args.push_back(std::move(e));
        }
        ExprPtr filter;
        if (ast->filter != nullptr) {
          FUSION_ASSIGN_OR_RAISE(filter, ConvertExpr(ast->filter, schema, ctes));
        }
        // Aggregates accumulate over the common numeric domain; widen
        // int32 inputs where the accumulator expects it is handled by
        // the accumulators themselves.
        return AggregateCall(std::move(fn), std::move(args), ast->distinct,
                             std::move(filter));
      }
      // Scalar function.
      FUSION_ASSIGN_OR_RAISE(auto fn, registry_->GetScalar(ast->func_name));
      std::vector<ExprPtr> args;
      for (const auto& arg : ast->args) {
        FUSION_ASSIGN_OR_RAISE(ExprPtr e, ConvertExpr(arg, schema, ctes));
        args.push_back(std::move(e));
      }
      return FunctionCall(std::move(fn), std::move(args));
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

}  // namespace logical
}  // namespace fusion
