#ifndef FUSION_LOGICAL_INTERVAL_ANALYSIS_H_
#define FUSION_LOGICAL_INTERVAL_ANALYSIS_H_

#include <map>
#include <string>

#include "logical/expr.h"

namespace fusion {
namespace logical {

/// \brief Closed numeric interval [lo, hi] with optional open bounds;
/// a null scalar bound means unbounded. The unit of the expression
/// range-propagation library (paper §5.4.2, after Moore's interval
/// arithmetic).
struct ValueInterval {
  Scalar lo;  // null = -inf
  Scalar hi;  // null = +inf

  static ValueInterval Unbounded() { return {}; }
  static ValueInterval Point(Scalar v) { return {v, v}; }
  static ValueInterval Of(Scalar lo, Scalar hi) { return {std::move(lo), std::move(hi)}; }

  bool IsUnbounded() const { return lo.is_null() && hi.is_null(); }
  /// True when the interval is provably empty (lo > hi).
  bool IsEmpty() const;

  std::string ToString() const;
};

/// Known column bounds, keyed by (unqualified) column name.
using ColumnBounds = std::map<std::string, ValueInterval>;

/// Compute the value interval of an arithmetic expression from column
/// bounds; unbounded when unknown. Supports +, -, *, literals, columns,
/// negation and cast.
Result<ValueInterval> AnalyzeExprInterval(const ExprPtr& expr,
                                          const ColumnBounds& bounds);

/// Can a predicate possibly be satisfied under the given bounds?
/// (Plan-time pruning, e.g. partition elimination.) Conservative: true
/// when unknown.
Result<bool> PredicateMaySatisfy(const ExprPtr& predicate,
                                 const ColumnBounds& bounds);

/// Heuristic selectivity in [0,1] for a predicate (statistics-free
/// fallback used by the join-reordering rule).
double EstimateSelectivity(const ExprPtr& predicate);

}  // namespace logical
}  // namespace fusion

#endif  // FUSION_LOGICAL_INTERVAL_ANALYSIS_H_
