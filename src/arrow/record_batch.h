#ifndef FUSION_ARROW_RECORD_BATCH_H_
#define FUSION_ARROW_RECORD_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "arrow/array.h"
#include "arrow/type.h"
#include "common/result.h"

namespace fusion {

class RecordBatch;
using RecordBatchPtr = std::shared_ptr<RecordBatch>;

/// \brief A horizontal slice of a table: a schema plus equal-length
/// columns. The unit of data flow between Streams (default 8192 rows).
class RecordBatch {
 public:
  RecordBatch(SchemaPtr schema, int64_t num_rows, std::vector<ArrayPtr> columns)
      : schema_(std::move(schema)), num_rows_(num_rows), columns_(std::move(columns)) {}

  static Result<RecordBatchPtr> Make(SchemaPtr schema, std::vector<ArrayPtr> columns);

  /// Zero-column batch carrying only a row count (e.g. COUNT(*) scans).
  static RecordBatchPtr MakeEmpty(SchemaPtr schema, int64_t num_rows = 0) {
    return std::make_shared<RecordBatch>(std::move(schema), num_rows,
                                         std::vector<ArrayPtr>{});
  }

  const SchemaPtr& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ArrayPtr& column(int i) const { return columns_[i]; }
  const std::vector<ArrayPtr>& columns() const { return columns_; }

  /// Column by name, or error.
  Result<ArrayPtr> GetColumnByName(const std::string& name) const;

  /// Batch with only the given column indices.
  Result<RecordBatchPtr> Project(const std::vector<int>& indices) const;

  /// Rows [offset, offset+length).
  RecordBatchPtr Slice(int64_t offset, int64_t length) const;

  bool Equals(const RecordBatch& other) const;

  /// Approximate in-memory footprint, used for MemoryPool accounting.
  int64_t TotalBufferSize() const;

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  int64_t num_rows_;
  std::vector<ArrayPtr> columns_;
};

/// Concatenate row-compatible batches into one (used by pipeline
/// breakers and test helpers).
Result<RecordBatchPtr> ConcatenateBatches(const SchemaPtr& schema,
                                          const std::vector<RecordBatchPtr>& batches);

/// Split a batch into chunks of at most `max_rows` rows.
std::vector<RecordBatchPtr> SliceBatch(const RecordBatchPtr& batch, int64_t max_rows);

}  // namespace fusion

#endif  // FUSION_ARROW_RECORD_BATCH_H_
