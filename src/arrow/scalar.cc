#include "arrow/scalar.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "arrow/builder.h"
#include "common/hash_util.h"

namespace fusion {

Scalar Scalar::FromArray(const Array& arr, int64_t i) {
  if (arr.IsNull(i)) {
    // Scalars are always logical values; dictionary encoding does not
    // survive extraction.
    return Scalar::Null(arr.type().is_dictionary() ? utf8() : arr.type());
  }
  switch (arr.type().id()) {
    case TypeId::kNull:
      return Scalar();
    case TypeId::kBool:
      return Scalar::Bool(checked_cast<BooleanArray>(arr).Value(i));
    case TypeId::kInt32:
      return Scalar::Int32(checked_cast<Int32Array>(arr).Value(i));
    case TypeId::kDate32:
      return Scalar::Date32(checked_cast<Int32Array>(arr).Value(i));
    case TypeId::kInt64:
      return Scalar::Int64(checked_cast<Int64Array>(arr).Value(i));
    case TypeId::kTimestamp:
      return Scalar::Timestamp(checked_cast<Int64Array>(arr).Value(i));
    case TypeId::kFloat64:
      return Scalar::Float64(checked_cast<Float64Array>(arr).Value(i));
    case TypeId::kDecimal128:
      return Scalar::Decimal(checked_cast<Decimal128Array>(arr).Value(i),
                             arr.type());
    case TypeId::kString:
    case TypeId::kDictionary:
      return Scalar::String(std::string(StringLikeValue(arr, i)));
  }
  return Scalar();
}

namespace {

/// double -> unscaled decimal with round-half-away-from-zero; false on
/// overflow/NaN.
bool DoubleToDecimal(double v, int scale, Decimal128* out) {
  if (std::isnan(v) || std::isinf(v)) return false;
  double scaled = v * DecimalPowerOfTen(scale).ToDouble();
  scaled = std::round(scaled);
  // 1.7e38 < 2^127; anything beyond cannot fit 38 digits anyway.
  if (std::abs(scaled) >= 1.7e38) return false;
  *out = Decimal128::FromInt128(static_cast<__int128>(scaled));
  return true;
}

}  // namespace

Result<Scalar> Scalar::CastTo(DataType target) const {
  if (type_ == target) return *this;
  if (is_null_) return Scalar::Null(target);
  switch (target.id()) {
    case TypeId::kBool:
      if (type_.is_numeric()) return Scalar::Bool(AsDouble() != 0.0);
      break;
    case TypeId::kInt32:
      if (type_.is_numeric() || type_.is_temporal()) {
        return Scalar::Int32(static_cast<int32_t>(
            type_.is_floating() ? static_cast<int64_t>(double_value()) : int_value()));
      }
      if (type_.is_string()) {
        return Scalar::Int32(static_cast<int32_t>(std::strtoll(
            string_value().c_str(), nullptr, 10)));
      }
      if (type_.is_bool()) return Scalar::Int32(bool_value() ? 1 : 0);
      if (type_.is_decimal()) {
        Decimal128 truncated;
        if (DecimalRescale(decimal_value(), type_.scale(), 0, &truncated) &&
            truncated.FitsInInt64()) {
          return Scalar::Int32(static_cast<int32_t>(
              static_cast<int64_t>(truncated.ToInt128())));
        }
      }
      break;
    case TypeId::kInt64:
      if (type_.is_floating()) {
        return Scalar::Int64(static_cast<int64_t>(double_value()));
      }
      if (type_.is_integer() || type_.is_temporal()) return Scalar::Int64(int_value());
      if (type_.is_string()) {
        return Scalar::Int64(std::strtoll(string_value().c_str(), nullptr, 10));
      }
      if (type_.is_bool()) return Scalar::Int64(bool_value() ? 1 : 0);
      if (type_.is_decimal()) {
        Decimal128 truncated;
        if (DecimalRescale(decimal_value(), type_.scale(), 0, &truncated) &&
            truncated.FitsInInt64()) {
          return Scalar::Int64(static_cast<int64_t>(truncated.ToInt128()));
        }
      }
      break;
    case TypeId::kFloat64:
      if (type_.is_integer() || type_.is_temporal()) {
        return Scalar::Float64(static_cast<double>(int_value()));
      }
      if (type_.is_string()) {
        return Scalar::Float64(std::strtod(string_value().c_str(), nullptr));
      }
      if (type_.is_bool()) return Scalar::Float64(bool_value() ? 1.0 : 0.0);
      if (type_.is_decimal()) return Scalar::Float64(AsDouble());
      break;
    case TypeId::kDecimal128: {
      Decimal128 v;
      if (type_.is_decimal()) {
        if (DecimalRescale(decimal_value(), type_.scale(), target.scale(), &v) &&
            DecimalFitsPrecision(v, target.precision())) {
          return Scalar::Decimal(v, target);
        }
        break;
      }
      if (type_.is_integer()) {
        if (DecimalRescale(Decimal128(int_value()), 0, target.scale(), &v) &&
            DecimalFitsPrecision(v, target.precision())) {
          return Scalar::Decimal(v, target);
        }
        break;
      }
      if (type_.is_floating()) {
        if (DoubleToDecimal(double_value(), target.scale(), &v) &&
            DecimalFitsPrecision(v, target.precision())) {
          return Scalar::Decimal(v, target);
        }
        break;
      }
      if (type_.is_string()) {
        if (DecimalFromString(string_value(), target.precision(), target.scale(),
                              &v)) {
          return Scalar::Decimal(v, target);
        }
        break;
      }
      break;
    }
    case TypeId::kString:
      return Scalar::String(ToString());
    case TypeId::kDate32:
      if (type_.is_integer()) return Scalar::Date32(static_cast<int32_t>(int_value()));
      break;
    case TypeId::kTimestamp:
      if (type_.is_integer()) return Scalar::Timestamp(int_value());
      if (type_.id() == TypeId::kDate32) {
        return Scalar::Timestamp(int_value() * 86400LL * 1000000LL);
      }
      break;
    default:
      break;
  }
  return Status::TypeError("cannot cast scalar " + ToString() + " from " +
                           type_.ToString() + " to " + target.ToString());
}

int Scalar::Compare(const Scalar& other) const {
  if (is_null_ || other.is_null_) {
    if (is_null_ && other.is_null_) return 0;
    return is_null_ ? -1 : 1;
  }
  // Decimal pairs of different scale compare exactly when a common
  // scale fits in 128 bits, falling back to double beyond that.
  if (type_.is_decimal() && other.type_.is_decimal() && type_ != other.type_) {
    int common = std::max(type_.scale(), other.type_.scale());
    Decimal128 a, b;
    if (DecimalRescale(decimal_value(), type_.scale(), common, &a) &&
        DecimalRescale(other.decimal_value(), other.type_.scale(), common, &b)) {
      return a < b ? -1 : (b < a ? 1 : 0);
    }
  }
  // Numeric cross-type comparison goes through double; exact for the
  // value ranges used by statistics pruning.
  if ((type_.is_numeric() || type_.is_decimal()) &&
      (other.type_.is_numeric() || other.type_.is_decimal()) &&
      type_ != other.type_) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  switch (type_.id()) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate32:
    case TypeId::kTimestamp: {
      int64_t a = int_value();
      int64_t b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kFloat64: {
      double a = double_value();
      double b = other.double_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDecimal128: {
      const Decimal128& a = decimal_value();
      const Decimal128& b = other.decimal_value();
      return a < b ? -1 : (b < a ? 1 : 0);
    }
    // Scalars are always materialized values; a dictionary-typed scalar
    // never exists, but compare as a string if one ever does.
    case TypeId::kString:
    case TypeId::kDictionary:
      return string_value().compare(other.string_value());
  }
  return 0;
}

bool Scalar::Equals(const Scalar& other) const {
  if (is_null_ != other.is_null_) return false;
  if (is_null_) return type_ == other.type_;
  if (type_ != other.type_) return false;
  return Compare(other) == 0;
}

uint64_t Scalar::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_.id()) {
    case TypeId::kBool:
      return hash_util::HashInt64(bool_value() ? 1 : 0);
    case TypeId::kFloat64: {
      double d = double_value();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      return hash_util::HashInt64(bits);
    }
    case TypeId::kString:
      return hash_util::HashString(string_value());
    case TypeId::kDecimal128:
      return decimal_value().Hash();
    default:
      return hash_util::HashInt64(static_cast<uint64_t>(int_value()));
  }
}

std::string Scalar::ToString() const {
  if (is_null_) return "NULL";
  switch (type_.id()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate32:
    case TypeId::kTimestamp:
      return std::to_string(int_value());
    case TypeId::kFloat64: {
      std::ostringstream out;
      out << double_value();
      return out.str();
    }
    case TypeId::kDecimal128:
      return DecimalToString(decimal_value(), type_.scale());
    case TypeId::kString:
    case TypeId::kDictionary:
      return string_value();
  }
  return "?";
}

Result<ArrayPtr> Scalar::MakeArray(int64_t length) const {
  if (is_null_) return MakeArrayOfNulls(type_, length);
  FUSION_ASSIGN_OR_RAISE(auto builder, MakeBuilder(type_));
  builder->Reserve(length);
  switch (type_.id()) {
    case TypeId::kBool:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<BooleanBuilder*>(builder.get())->Append(bool_value());
      }
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<NumericBuilder<int32_t>*>(builder.get())
            ->Append(static_cast<int32_t>(int_value()));
      }
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<NumericBuilder<int64_t>*>(builder.get())->Append(int_value());
      }
      break;
    case TypeId::kFloat64:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<Float64Builder*>(builder.get())->Append(double_value());
      }
      break;
    case TypeId::kString:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<StringBuilder*>(builder.get())->Append(string_value());
      }
      break;
    case TypeId::kDecimal128:
      for (int64_t i = 0; i < length; ++i) {
        static_cast<Decimal128Builder*>(builder.get())->Append(decimal_value());
      }
      break;
    default:
      return Status::TypeError("Scalar::MakeArray: unsupported type");
  }
  return builder->Finish();
}

}  // namespace fusion
