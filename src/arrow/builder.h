#ifndef FUSION_ARROW_BUILDER_H_
#define FUSION_ARROW_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "arrow/array.h"
#include "arrow/buffer.h"
#include "arrow/type.h"
#include "common/result.h"

namespace fusion {

/// \brief Incremental array construction. One builder per column; call
/// the typed Append methods, then Finish() to produce an immutable Array.
class ArrayBuilder {
 public:
  virtual ~ArrayBuilder() = default;

  virtual DataType type() const = 0;
  int64_t length() const { return length_; }

  virtual void AppendNull() = 0;
  /// Append `n` nulls.
  void AppendNulls(int64_t n) {
    for (int64_t i = 0; i < n; ++i) AppendNull();
  }
  /// Append value `i` of `src` (which must have this builder's type).
  virtual void AppendFrom(const Array& src, int64_t i) = 0;

  virtual Result<ArrayPtr> Finish() = 0;

  virtual void Reserve(int64_t n) = 0;

 protected:
  void AppendValidity(bool valid);
  BufferPtr FinishValidity();

  int64_t length_ = 0;
  int64_t null_count_ = 0;
  std::vector<uint8_t> validity_;
};

/// \brief Builder for fixed-width primitive arrays.
template <typename CType>
class NumericBuilder : public ArrayBuilder {
 public:
  explicit NumericBuilder(DataType type) : type_(type) {}

  DataType type() const override { return type_; }

  void Append(CType value) {
    values_.push_back(value);
    AppendValidity(true);
  }
  void AppendNull() override {
    values_.push_back(CType{});
    AppendValidity(false);
  }
  void AppendFrom(const Array& src, int64_t i) override {
    if (src.IsNull(i)) {
      AppendNull();
    } else {
      Append(checked_cast<NumericArray<CType>>(src).Value(i));
    }
  }
  void Reserve(int64_t n) override { values_.reserve(values_.size() + n); }

  Result<ArrayPtr> Finish() override {
    auto values = Buffer::CopyOf(values_.data(), values_.size() * sizeof(CType));
    int64_t len = length_;
    int64_t nulls = null_count_;
    BufferPtr validity = FinishValidity();
    values_.clear();
    return ArrayPtr(std::make_shared<NumericArray<CType>>(
        type_, len, std::move(values), std::move(validity), nulls));
  }

 private:
  DataType type_;
  std::vector<CType> values_;
};

class Int32Builder : public NumericBuilder<int32_t> {
 public:
  Int32Builder() : NumericBuilder<int32_t>(int32()) {}
  explicit Int32Builder(DataType type) : NumericBuilder<int32_t>(type) {}
};
class Int64Builder : public NumericBuilder<int64_t> {
 public:
  Int64Builder() : NumericBuilder<int64_t>(int64()) {}
  explicit Int64Builder(DataType type) : NumericBuilder<int64_t>(type) {}
};
class Float64Builder : public NumericBuilder<double> {
 public:
  Float64Builder() : NumericBuilder<double>(float64()) {}
};
class Date32Builder : public NumericBuilder<int32_t> {
 public:
  Date32Builder() : NumericBuilder<int32_t>(date32()) {}
};
class TimestampBuilder : public NumericBuilder<int64_t> {
 public:
  TimestampBuilder() : NumericBuilder<int64_t>(timestamp()) {}
};
class Decimal128Builder : public NumericBuilder<Decimal128> {
 public:
  Decimal128Builder(int precision, int scale)
      : NumericBuilder<Decimal128>(decimal128(precision, scale)) {}
  explicit Decimal128Builder(DataType type) : NumericBuilder<Decimal128>(type) {}
};

/// \brief Builder for boolean arrays.
class BooleanBuilder : public ArrayBuilder {
 public:
  DataType type() const override { return boolean(); }

  void Append(bool value) {
    values_.push_back(value ? 1 : 0);
    AppendValidity(true);
  }
  void AppendNull() override {
    values_.push_back(0);
    AppendValidity(false);
  }
  void AppendFrom(const Array& src, int64_t i) override {
    if (src.IsNull(i)) {
      AppendNull();
    } else {
      Append(checked_cast<BooleanArray>(src).Value(i));
    }
  }
  void Reserve(int64_t n) override { values_.reserve(values_.size() + n); }

  Result<ArrayPtr> Finish() override;

 private:
  std::vector<uint8_t> values_;
};

/// \brief Builder for UTF-8 string arrays.
class StringBuilder : public ArrayBuilder {
 public:
  DataType type() const override { return utf8(); }

  void Append(std::string_view value) {
    data_.insert(data_.end(), value.begin(), value.end());
    offsets_.push_back(static_cast<int32_t>(data_.size()));
    AppendValidity(true);
  }
  void AppendNull() override {
    offsets_.push_back(offsets_.empty() ? 0 : offsets_.back());
    AppendValidity(false);
  }
  void AppendFrom(const Array& src, int64_t i) override {
    if (src.IsNull(i)) {
      AppendNull();
    } else {
      Append(StringLikeValue(src, i));
    }
  }
  void Reserve(int64_t n) override { offsets_.reserve(offsets_.size() + n); }

  Result<ArrayPtr> Finish() override;

 private:
  std::vector<int32_t> offsets_;  // end offsets; implicit leading 0
  std::vector<char> data_;
};

/// \brief Builder for dictionary-encoded string arrays. Interns each
/// appended value; AppendFrom a DictionaryArray with a previously seen
/// dictionary remaps codes through a cached per-dictionary table
/// instead of re-hashing strings.
class DictionaryBuilder : public ArrayBuilder {
 public:
  DataType type() const override { return dictionary(); }

  void Append(std::string_view value);
  void AppendNull() override {
    codes_.push_back(0);
    AppendValidity(false);
  }
  void AppendFrom(const Array& src, int64_t i) override;
  void Reserve(int64_t n) override { codes_.reserve(codes_.size() + n); }

  Result<ArrayPtr> Finish() override;

 private:
  int32_t InternValue(std::string_view value);

  std::vector<int32_t> codes_;
  std::vector<std::string> dict_values_;
  std::unordered_map<std::string, int32_t> dict_index_;
  /// Cache: source dictionary instance -> per-code remap into our dict.
  const StringArray* remap_src_ = nullptr;
  std::vector<int32_t> remap_;
};

/// Create a builder for any supported type.
Result<std::unique_ptr<ArrayBuilder>> MakeBuilder(DataType type);

/// Convenience constructors used heavily in tests and examples ----------

ArrayPtr MakeInt32Array(const std::vector<int32_t>& values,
                        const std::vector<bool>& valid = {});
ArrayPtr MakeInt64Array(const std::vector<int64_t>& values,
                        const std::vector<bool>& valid = {});
ArrayPtr MakeFloat64Array(const std::vector<double>& values,
                          const std::vector<bool>& valid = {});
ArrayPtr MakeBooleanArray(const std::vector<bool>& values,
                          const std::vector<bool>& valid = {});
ArrayPtr MakeStringArray(const std::vector<std::string>& values,
                         const std::vector<bool>& valid = {});
ArrayPtr MakeDate32Array(const std::vector<int32_t>& values,
                         const std::vector<bool>& valid = {});
ArrayPtr MakeTimestampArray(const std::vector<int64_t>& values,
                            const std::vector<bool>& valid = {});
/// Values are unscaled integers; e.g. {12345} with scale 2 is 123.45.
ArrayPtr MakeDecimal128Array(int precision, int scale,
                             const std::vector<Decimal128>& values,
                             const std::vector<bool>& valid = {});

}  // namespace fusion

#endif  // FUSION_ARROW_BUILDER_H_
