#ifndef FUSION_ARROW_SCALAR_H_
#define FUSION_ARROW_SCALAR_H_

#include <cstdint>
#include <string>
#include <variant>

#include "arrow/array.h"
#include "arrow/decimal.h"
#include "arrow/type.h"
#include "common/result.h"

namespace fusion {

/// \brief A single typed value (possibly null). Used for literals in
/// expressions, statistics (min/max), and aggregate intermediate state.
class Scalar {
 public:
  /// Null scalar of null type.
  Scalar() : type_(null_type()), is_null_(true) {}

  /// Null scalar of a concrete type.
  static Scalar Null(DataType type) {
    Scalar s;
    s.type_ = type;
    s.is_null_ = true;
    return s;
  }

  static Scalar Bool(bool v) { return Scalar(boolean(), v); }
  static Scalar Int32(int32_t v) { return Scalar(int32(), static_cast<int64_t>(v)); }
  static Scalar Int64(int64_t v) { return Scalar(int64(), v); }
  static Scalar Float64(double v) { return Scalar(float64(), v); }
  static Scalar String(std::string v) { return Scalar(utf8(), std::move(v)); }
  static Scalar Date32(int32_t days) {
    return Scalar(date32(), static_cast<int64_t>(days));
  }
  static Scalar Timestamp(int64_t micros) { return Scalar(timestamp(), micros); }
  /// `value` is the unscaled integer: Decimal(12345, 15, 2) is 123.45.
  static Scalar Decimal(Decimal128 value, int precision, int scale) {
    return Scalar(decimal128(precision, scale), value);
  }
  static Scalar Decimal(Decimal128 value, DataType type) {
    return Scalar(type, value);
  }

  DataType type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const { return std::get<bool>(value_); }
  /// Integer value (also used for date32/timestamp payloads).
  int64_t int_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const std::string& string_value() const { return std::get<std::string>(value_); }
  /// Unscaled decimal value; scale lives in type().scale().
  const Decimal128& decimal_value() const { return std::get<Decimal128>(value_); }

  /// Numeric value as double (ints are widened, decimals divided by
  /// 10^scale); invalid for other types.
  double AsDouble() const {
    if (std::holds_alternative<double>(value_)) return std::get<double>(value_);
    if (std::holds_alternative<Decimal128>(value_)) {
      return std::get<Decimal128>(value_).ToDouble() /
             DecimalPowerOfTen(type_.scale()).ToDouble();
    }
    return static_cast<double>(int_value());
  }

  /// Value at position i of an array, as a Scalar.
  static Scalar FromArray(const Array& arr, int64_t i);

  /// Cast to another type (numeric widening/narrowing, string parse).
  Result<Scalar> CastTo(DataType target) const;

  /// Total ordering consistent with SQL comparison over non-null values;
  /// nulls compare equal to nulls and less than everything else (callers
  /// normally handle nulls explicitly).
  int Compare(const Scalar& other) const;

  bool Equals(const Scalar& other) const;
  bool operator==(const Scalar& other) const { return Equals(other); }

  uint64_t Hash() const;

  std::string ToString() const;

  /// Build an array of `length` copies of this scalar.
  Result<ArrayPtr> MakeArray(int64_t length) const;

 private:
  template <typename V>
  Scalar(DataType type, V value) : type_(type), is_null_(false), value_(std::move(value)) {}

  DataType type_;
  bool is_null_;
  std::variant<std::monostate, bool, int64_t, double, std::string, Decimal128>
      value_;
};

}  // namespace fusion

#endif  // FUSION_ARROW_SCALAR_H_
