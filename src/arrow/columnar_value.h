#ifndef FUSION_ARROW_COLUMNAR_VALUE_H_
#define FUSION_ARROW_COLUMNAR_VALUE_H_

#include <variant>

#include "arrow/array.h"
#include "arrow/scalar.h"
#include "common/result.h"

namespace fusion {

/// \brief Either a full column (Array) or a single Scalar broadcast
/// across all rows — the argument/result type of expression evaluation
/// and user-defined functions (paper §7).
class ColumnarValue {
 public:
  ColumnarValue() : value_(Scalar()) {}
  ColumnarValue(ArrayPtr array) : value_(std::move(array)) {}  // NOLINT
  ColumnarValue(Scalar scalar) : value_(std::move(scalar)) {}  // NOLINT

  bool is_array() const { return std::holds_alternative<ArrayPtr>(value_); }
  bool is_scalar() const { return !is_array(); }

  const ArrayPtr& array() const { return std::get<ArrayPtr>(value_); }
  const Scalar& scalar() const { return std::get<Scalar>(value_); }

  DataType type() const {
    return is_array() ? array()->type() : scalar().type();
  }

  /// Materialize as an array of `num_rows` (broadcasting scalars).
  Result<ArrayPtr> ToArray(int64_t num_rows) const {
    if (is_array()) return array();
    return scalar().MakeArray(num_rows);
  }

 private:
  std::variant<ArrayPtr, Scalar> value_;
};

}  // namespace fusion

#endif  // FUSION_ARROW_COLUMNAR_VALUE_H_
