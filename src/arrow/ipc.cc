#include "arrow/ipc.h"

#include <cstring>

#include "arrow/builder.h"
#include "common/fault_injector.h"

namespace fusion {
namespace ipc {

namespace {

// Blob layout:
//   u32 magic 'FIPC'
//   u32 num_fields
//   per field: u16 name_len, name bytes, u8 type_id, u8 nullable
//   u64 num_rows
//   per column: u8 has_validity, [validity bytes], type-specific buffers
//     primitives: raw value bytes
//     bool: bitmap bytes
//     string: (num_rows+1) int32 offsets + u64 data_len + data bytes

constexpr uint32_t kMagic = 0x46495043;  // "FIPC"

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 2);
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 4);
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 8);
}
void PutBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status Read(void* out, size_t len) {
    if (pos_ + len > size_) return Status::IOError("ipc: truncated blob");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Result<uint16_t> U16() {
    uint16_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 2));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 8));
    return v;
  }
  Result<uint8_t> U8() {
    uint8_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 1));
    return v;
  }
  const uint8_t* Peek() const { return data_ + pos_; }
  Status Skip(size_t len) {
    if (pos_ + len > size_) return Status::IOError("ipc: truncated blob");
    pos_ += len;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeBatch(const RecordBatch& batch) {
  std::vector<uint8_t> out;
  PutU32(&out, kMagic);
  PutU32(&out, static_cast<uint32_t>(batch.num_columns()));
  for (int i = 0; i < batch.num_columns(); ++i) {
    const Field& f = batch.schema()->field(i);
    PutU16(&out, static_cast<uint16_t>(f.name().size()));
    PutBytes(&out, f.name().data(), f.name().size());
    out.push_back(static_cast<uint8_t>(f.type().id()));
    out.push_back(f.nullable() ? 1 : 0);
  }
  PutU64(&out, static_cast<uint64_t>(batch.num_rows()));
  const int64_t rows = batch.num_rows();
  for (int i = 0; i < batch.num_columns(); ++i) {
    ArrayPtr col = batch.column(i);
    // IPC stays encoding-free: dictionary columns densify at this
    // boundary so spill files and shuffles round-trip as plain strings.
    if (col->type().is_dictionary()) {
      col = checked_cast<DictionaryArray>(*col).Densify();
    }
    const bool has_validity = col->validity() != nullptr;
    out.push_back(has_validity ? 1 : 0);
    if (has_validity) {
      PutBytes(&out, col->validity()->data(),
               static_cast<size_t>(bit_util::BytesForBits(rows)));
    }
    switch (col->type().id()) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
        PutBytes(&out, checked_cast<BooleanArray>(*col).values()->data(),
                 static_cast<size_t>(bit_util::BytesForBits(rows)));
        break;
      case TypeId::kString: {
        const auto& sa = checked_cast<StringArray>(*col);
        PutBytes(&out, sa.raw_offsets(), static_cast<size_t>((rows + 1) * 4));
        uint64_t data_len = static_cast<uint64_t>(sa.raw_offsets()[rows]);
        PutU64(&out, data_len);
        PutBytes(&out, sa.data()->data(), data_len);
        break;
      }
      default: {
        int width = col->type().byte_width();
        const Buffer* values = nullptr;
        if (width == 4) {
          values = checked_cast<Int32Array>(*col).values().get();
        } else if (col->type().id() == TypeId::kFloat64) {
          values = checked_cast<Float64Array>(*col).values().get();
        } else {
          values = checked_cast<Int64Array>(*col).values().get();
        }
        PutBytes(&out, values->data(), static_cast<size_t>(rows * width));
      }
    }
  }
  return out;
}

Result<RecordBatchPtr> DeserializeBatch(const uint8_t* data, size_t size) {
  Cursor cur(data, size);
  FUSION_ASSIGN_OR_RAISE(uint32_t magic, cur.U32());
  if (magic != kMagic) return Status::IOError("ipc: bad magic");
  FUSION_ASSIGN_OR_RAISE(uint32_t num_fields, cur.U32());
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    FUSION_ASSIGN_OR_RAISE(uint16_t name_len, cur.U16());
    std::string name(name_len, '\0');
    FUSION_RETURN_NOT_OK(cur.Read(name.data(), name_len));
    FUSION_ASSIGN_OR_RAISE(uint8_t type_id, cur.U8());
    FUSION_ASSIGN_OR_RAISE(uint8_t nullable, cur.U8());
    fields.emplace_back(std::move(name), DataType(static_cast<TypeId>(type_id)),
                        nullable != 0);
  }
  FUSION_ASSIGN_OR_RAISE(uint64_t rows_u, cur.U64());
  const int64_t rows = static_cast<int64_t>(rows_u);
  auto schema = std::make_shared<Schema>(fields);
  std::vector<ArrayPtr> columns;
  columns.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    DataType type = fields[i].type();
    FUSION_ASSIGN_OR_RAISE(uint8_t has_validity, cur.U8());
    BufferPtr validity;
    int64_t nulls = 0;
    if (has_validity) {
      int64_t vbytes = bit_util::BytesForBits(rows);
      validity = std::make_shared<Buffer>(vbytes);
      FUSION_RETURN_NOT_OK(cur.Read(validity->mutable_data(), vbytes));
      nulls = rows - bit_util::CountSetBits(validity->data(), rows);
    }
    switch (type.id()) {
      case TypeId::kNull:
        columns.push_back(std::make_shared<NullArray>(rows));
        break;
      case TypeId::kBool: {
        int64_t vbytes = bit_util::BytesForBits(rows);
        auto values = std::make_shared<Buffer>(vbytes);
        FUSION_RETURN_NOT_OK(cur.Read(values->mutable_data(), vbytes));
        columns.push_back(std::make_shared<BooleanArray>(rows, std::move(values),
                                                         std::move(validity), nulls));
        break;
      }
      case TypeId::kString: {
        auto offsets = std::make_shared<Buffer>((rows + 1) * 4);
        FUSION_RETURN_NOT_OK(cur.Read(offsets->mutable_data(), (rows + 1) * 4));
        FUSION_ASSIGN_OR_RAISE(uint64_t data_len, cur.U64());
        auto bytes = std::make_shared<Buffer>(static_cast<int64_t>(data_len));
        FUSION_RETURN_NOT_OK(cur.Read(bytes->mutable_data(), data_len));
        columns.push_back(std::make_shared<StringArray>(
            rows, std::move(offsets), std::move(bytes), std::move(validity), nulls));
        break;
      }
      default: {
        int width = type.byte_width();
        auto values = std::make_shared<Buffer>(rows * width);
        FUSION_RETURN_NOT_OK(cur.Read(values->mutable_data(), rows * width));
        if (width == 4) {
          columns.push_back(std::make_shared<Int32Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        } else if (type.id() == TypeId::kFloat64) {
          columns.push_back(std::make_shared<Float64Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        } else {
          columns.push_back(std::make_shared<Int64Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        }
      }
    }
  }
  return std::make_shared<RecordBatch>(std::move(schema), rows, std::move(columns));
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IOError("cannot open for write: " + path_);
  return Status::OK();
}

Status FileWriter::WriteBatch(const RecordBatch& batch) {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("ipc.write"));
  std::vector<uint8_t> blob = SerializeBatch(batch);
  uint64_t len = blob.size();
  if (std::fwrite(&len, 8, 1, file_) != 1 ||
      std::fwrite(blob.data(), 1, blob.size(), file_) != blob.size()) {
    return Status::IOError("short write to " + path_);
  }
  bytes_written_ += static_cast<int64_t>(8 + blob.size());
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

FileReader::~FileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileReader::Open() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) return Status::IOError("cannot open for read: " + path_);
  return Status::OK();
}

Result<RecordBatchPtr> FileReader::Next() {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("ipc.read"));
  uint64_t len = 0;
  size_t n = std::fread(&len, 1, 8, file_);
  if (n == 0) return RecordBatchPtr(nullptr);  // clean EOF
  if (n != 8) return Status::IOError("ipc: truncated length prefix");
  std::vector<uint8_t> blob(len);
  if (std::fread(blob.data(), 1, len, file_) != len) {
    return Status::IOError("ipc: truncated batch body");
  }
  return DeserializeBatch(blob.data(), blob.size());
}

Status FileReader::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::OK();
}

Result<std::vector<RecordBatchPtr>> ReadFile(const std::string& path) {
  FileReader reader(path);
  FUSION_RETURN_NOT_OK(reader.Open());
  std::vector<RecordBatchPtr> out;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
    if (batch == nullptr) break;
    out.push_back(std::move(batch));
  }
  return out;
}

Status WriteFile(const std::string& path, const std::vector<RecordBatchPtr>& batches) {
  FileWriter writer(path);
  FUSION_RETURN_NOT_OK(writer.Open());
  for (const auto& b : batches) {
    FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
  }
  return writer.Close();
}

}  // namespace ipc
}  // namespace fusion
