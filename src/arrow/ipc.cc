#include "arrow/ipc.h"

#include <cstdlib>
#include <cstring>

#include "arrow/builder.h"
#include "common/fault_injector.h"

namespace fusion {
namespace ipc {

namespace {

// Blob layout (v2, magic "FIP2"):
//   u32 magic
//   u32 num_fields
//   per field: u16 name_len, name bytes, u8 type_id, u8 nullable,
//              [u8 precision, u8 scale when type_id == kDecimal128]
//   u64 num_rows
//   per column: u8 encoding (0 = plain, 1 = dictionary),
//               u8 has_validity, [validity bytes], buffers:
//     plain primitives: raw value bytes
//     plain bool: bitmap bytes
//     plain string: (num_rows+1) int32 offsets + u64 data_len + data
//     dictionary (string fields only): num_rows int32 codes,
//         u32 dict_len, (dict_len+1) int32 offsets, u64 data_len, data
//
// Everything after the magic is treated as untrusted once these bytes
// arrive from a socket: the cursor's bounds checks are written so that
// attacker-controlled lengths cannot wrap them, and no buffer is
// allocated before its length has been checked against the bytes that
// are actually present.

constexpr uint32_t kMagicV2 = 0x46495032;  // "FIP2"
constexpr uint32_t kMagicV1 = 0x46495043;  // "FIPC" (pre-hardening format)

constexpr uint8_t kEncodingPlain = 0;
constexpr uint8_t kEncodingDictionary = 1;

// Row counts beyond this are rejected outright so size computations
// (`rows * width`, `(rows + 1) * 4`) can never overflow int64 even
// before the per-buffer bounds check runs.
constexpr uint64_t kMaxRows = uint64_t{1} << 40;

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 2);
}
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 4);
}
void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  out->insert(out->end(), reinterpret_cast<uint8_t*>(&v),
              reinterpret_cast<uint8_t*>(&v) + 8);
}
void PutBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  // `pos_ <= size_` is an invariant, so `size_ - pos_` cannot wrap;
  // comparing `len` against the remaining bytes (instead of the old
  // `pos_ + len > size_`, which wraps for len near SIZE_MAX) makes the
  // check immune to attacker-controlled lengths.
  size_t remaining() const { return size_ - pos_; }

  Status Read(void* out, size_t len) {
    if (len > remaining()) return Status::IOError("ipc: truncated blob");
    if (len == 0) return Status::OK();  // memcpy(nullptr, ..., 0) is UB
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  Result<uint16_t> U16() {
    uint16_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 2));
    return v;
  }
  Result<uint32_t> U32() {
    uint32_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 4));
    return v;
  }
  Result<uint64_t> U64() {
    uint64_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 8));
    return v;
  }
  Result<uint8_t> U8() {
    uint8_t v = 0;
    FUSION_RETURN_NOT_OK(Read(&v, 1));
    return v;
  }
  Status Skip(size_t len) {
    if (len > remaining()) return Status::IOError("ipc: truncated blob");
    pos_ += len;
    return Status::OK();
  }

  /// Bounds-check `len` against the remaining bytes, then allocate and
  /// fill a Buffer. The check-before-allocate order is the overcommit
  /// guard: a hostile length prefix can never allocate more than the
  /// blob actually holds.
  Result<BufferPtr> ReadBuffer(uint64_t len) {
    if (len > remaining()) return Status::IOError("ipc: truncated blob");
    auto buf = std::make_shared<Buffer>(static_cast<int64_t>(len));
    FUSION_RETURN_NOT_OK(Read(buf->mutable_data(), static_cast<size_t>(len)));
    return buf;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Serialize one dense string payload: offsets, data length, data.
void PutStringPayload(std::vector<uint8_t>* out, const StringArray& sa,
                      int64_t rows) {
  PutBytes(out, sa.raw_offsets(), static_cast<size_t>((rows + 1) * 4));
  uint64_t data_len = static_cast<uint64_t>(sa.raw_offsets()[rows]);
  PutU64(out, data_len);
  PutBytes(out, sa.data()->data(), data_len);
}

/// Validate untrusted string offsets: zero-based, monotonically
/// non-decreasing, and ending exactly at data_len, so StringArray reads
/// can never leave the data buffer.
Status ValidateOffsets(const Buffer& offsets, int64_t rows, uint64_t data_len) {
  const int32_t* offs = offsets.data_as<int32_t>();
  if (offs[0] != 0) return Status::IOError("ipc: string offsets must start at 0");
  for (int64_t i = 0; i < rows; ++i) {
    if (offs[i + 1] < offs[i]) {
      return Status::IOError("ipc: string offsets not monotonic");
    }
  }
  if (static_cast<uint64_t>(offs[rows]) != data_len) {
    return Status::IOError("ipc: string offsets exceed data buffer");
  }
  return Status::OK();
}

/// Read one dense string payload (offsets + data) for `rows` rows.
Result<std::shared_ptr<StringArray>> ReadStringPayload(Cursor* cur, int64_t rows,
                                                       BufferPtr validity,
                                                       int64_t nulls) {
  FUSION_ASSIGN_OR_RAISE(auto offsets,
                         cur->ReadBuffer(static_cast<uint64_t>(rows + 1) * 4));
  FUSION_ASSIGN_OR_RAISE(uint64_t data_len, cur->U64());
  FUSION_ASSIGN_OR_RAISE(auto bytes, cur->ReadBuffer(data_len));
  FUSION_RETURN_NOT_OK(ValidateOffsets(*offsets, rows, data_len));
  return std::make_shared<StringArray>(rows, std::move(offsets), std::move(bytes),
                                       std::move(validity), nulls);
}

}  // namespace

int64_t MaxFrameBytes() {
  static const int64_t value = [] {
    if (const char* env = std::getenv("FUSION_IPC_MAX_FRAME_BYTES")) {
      long long v = std::atoll(env);
      if (v > 0) return static_cast<int64_t>(v);
    }
    return int64_t{64} << 20;  // 64 MiB
  }();
  return value;
}

std::vector<uint8_t> SerializeBatch(const RecordBatch& batch,
                                    const SerializeOptions& options) {
  std::vector<uint8_t> out;
  PutU32(&out, kMagicV2);
  PutU32(&out, static_cast<uint32_t>(batch.num_columns()));
  for (int i = 0; i < batch.num_columns(); ++i) {
    const Field& f = batch.schema()->field(i);
    PutU16(&out, static_cast<uint16_t>(f.name().size()));
    PutBytes(&out, f.name().data(), f.name().size());
    out.push_back(static_cast<uint8_t>(f.type().id()));
    out.push_back(f.nullable() ? 1 : 0);
    if (f.type().is_decimal()) {
      // Parameterized types carry their parameters right after the id;
      // parameter-free types stay at the two-byte footprint older
      // readers expect.
      out.push_back(static_cast<uint8_t>(f.type().precision()));
      out.push_back(static_cast<uint8_t>(f.type().scale()));
    }
  }
  PutU64(&out, static_cast<uint64_t>(batch.num_rows()));
  const int64_t rows = batch.num_rows();
  for (int i = 0; i < batch.num_columns(); ++i) {
    ArrayPtr col = batch.column(i);
    const bool keep_dict =
        col->type().is_dictionary() && options.preserve_dictionary;
    if (col->type().is_dictionary() && !keep_dict) {
      // Spill files and shuffles stay encoding-free: dictionary columns
      // densify at this boundary so every reader sees plain strings.
      col = checked_cast<DictionaryArray>(*col).Densify();
    }
    out.push_back(keep_dict ? kEncodingDictionary : kEncodingPlain);
    const bool has_validity = col->validity() != nullptr;
    out.push_back(has_validity ? 1 : 0);
    if (has_validity) {
      PutBytes(&out, col->validity()->data(),
               static_cast<size_t>(bit_util::BytesForBits(rows)));
    }
    if (keep_dict) {
      const auto& da = checked_cast<DictionaryArray>(*col);
      PutBytes(&out, da.raw_codes(), static_cast<size_t>(rows * 4));
      const StringArray& dict = *da.dictionary();
      PutU32(&out, static_cast<uint32_t>(dict.length()));
      PutStringPayload(&out, dict, dict.length());
      continue;
    }
    switch (col->type().id()) {
      case TypeId::kNull:
        break;
      case TypeId::kBool:
        PutBytes(&out, checked_cast<BooleanArray>(*col).values()->data(),
                 static_cast<size_t>(bit_util::BytesForBits(rows)));
        break;
      case TypeId::kString:
        PutStringPayload(&out, checked_cast<StringArray>(*col), rows);
        break;
      default: {
        int width = col->type().byte_width();
        const Buffer* values = nullptr;
        if (width == 4) {
          values = checked_cast<Int32Array>(*col).values().get();
        } else if (width == 16) {
          values = checked_cast<Decimal128Array>(*col).values().get();
        } else if (col->type().id() == TypeId::kFloat64) {
          values = checked_cast<Float64Array>(*col).values().get();
        } else {
          values = checked_cast<Int64Array>(*col).values().get();
        }
        PutBytes(&out, values->data(), static_cast<size_t>(rows * width));
      }
    }
  }
  return out;
}

Result<RecordBatchPtr> DeserializeBatch(const uint8_t* data, size_t size) {
  Cursor cur(data, size);
  FUSION_ASSIGN_OR_RAISE(uint32_t magic, cur.U32());
  // v1 ("FIPC") is the pre-hardening on-disk layout: identical to v2
  // except columns carry no encoding byte (everything is plain). Files
  // persisted by older builds stay readable — decoded through the same
  // hardened cursor — while the writer emits v2 only.
  const bool v1 = magic == kMagicV1;
  if (!v1 && magic != kMagicV2) return Status::IOError("ipc: bad magic");
  FUSION_ASSIGN_OR_RAISE(uint32_t num_fields, cur.U32());
  // Each field costs at least 4 bytes on the wire, so a field count the
  // blob cannot possibly hold is rejected before the reserve() below.
  if (num_fields > cur.remaining() / 4) {
    return Status::IOError("ipc: field count exceeds blob size");
  }
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    FUSION_ASSIGN_OR_RAISE(uint16_t name_len, cur.U16());
    std::string name(name_len, '\0');
    FUSION_RETURN_NOT_OK(cur.Read(name.data(), name_len));
    FUSION_ASSIGN_OR_RAISE(uint8_t type_id, cur.U8());
    FUSION_ASSIGN_OR_RAISE(uint8_t nullable, cur.U8());
    // Schema fields carry logical types only; kDictionary is an array
    // encoding, and anything beyond the enum is hostile input.
    if (type_id >= static_cast<uint8_t>(TypeId::kDictionary)) {
      return Status::IOError("ipc: invalid field type id " +
                             std::to_string(type_id));
    }
    DataType type(static_cast<TypeId>(type_id));
    if (type.is_decimal()) {
      FUSION_ASSIGN_OR_RAISE(uint8_t precision, cur.U8());
      FUSION_ASSIGN_OR_RAISE(uint8_t scale, cur.U8());
      if (!ValidDecimalParams(precision, scale)) {
        return Status::IOError("ipc: invalid decimal parameters (" +
                               std::to_string(precision) + "," +
                               std::to_string(scale) + ")");
      }
      type = decimal128(precision, scale);
    }
    fields.emplace_back(std::move(name), type, nullable != 0);
  }
  FUSION_ASSIGN_OR_RAISE(uint64_t rows_u, cur.U64());
  if (rows_u > kMaxRows) {
    return Status::IOError("ipc: implausible row count " + std::to_string(rows_u));
  }
  const int64_t rows = static_cast<int64_t>(rows_u);
  auto schema = std::make_shared<Schema>(fields);
  std::vector<ArrayPtr> columns;
  columns.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; ++i) {
    DataType type = fields[i].type();
    uint8_t encoding = kEncodingPlain;
    if (!v1) {
      FUSION_ASSIGN_OR_RAISE(encoding, cur.U8());
      if (encoding != kEncodingPlain && encoding != kEncodingDictionary) {
        return Status::IOError("ipc: unknown column encoding " +
                               std::to_string(encoding));
      }
      if (encoding == kEncodingDictionary && type.id() != TypeId::kString) {
        return Status::IOError("ipc: dictionary encoding on non-string column");
      }
    }
    FUSION_ASSIGN_OR_RAISE(uint8_t has_validity, cur.U8());
    BufferPtr validity;
    int64_t nulls = 0;
    if (has_validity) {
      FUSION_ASSIGN_OR_RAISE(
          validity,
          cur.ReadBuffer(static_cast<uint64_t>(bit_util::BytesForBits(rows))));
      nulls = rows - bit_util::CountSetBits(validity->data(), rows);
    }
    if (encoding == kEncodingDictionary) {
      FUSION_ASSIGN_OR_RAISE(auto codes,
                             cur.ReadBuffer(static_cast<uint64_t>(rows) * 4));
      FUSION_ASSIGN_OR_RAISE(uint32_t dict_len, cur.U32());
      FUSION_ASSIGN_OR_RAISE(
          auto dict, ReadStringPayload(&cur, static_cast<int64_t>(dict_len),
                                       nullptr, 0));
      // Codes come off the wire: a valid row's code must index the
      // transmitted dictionary, and a null row's (meaningless) code is
      // rewritten to 0 so no later reader can be steered out of bounds.
      int32_t* code_vals = codes->mutable_data_as<int32_t>();
      const uint8_t* valid_bits = validity != nullptr ? validity->data() : nullptr;
      for (int64_t r = 0; r < rows; ++r) {
        const bool valid = valid_bits == nullptr || bit_util::GetBit(valid_bits, r);
        if (!valid) {
          code_vals[r] = 0;
        } else if (code_vals[r] < 0 ||
                   static_cast<uint32_t>(code_vals[r]) >= dict_len) {
          return Status::IOError("ipc: dictionary code out of range");
        }
      }
      if (dict_len == 0) {
        // All rows are null (any valid row failed the range check above);
        // emit a plain all-null StringArray so code 0 never dereferences
        // an empty dictionary.
        auto offsets = std::make_shared<Buffer>((rows + 1) * 4);
        columns.push_back(std::make_shared<StringArray>(
            rows, std::move(offsets), std::make_shared<Buffer>(int64_t{0}),
            std::move(validity), nulls));
      } else {
        columns.push_back(std::make_shared<DictionaryArray>(
            rows, std::move(codes), std::move(dict), std::move(validity), nulls));
      }
      continue;
    }
    switch (type.id()) {
      case TypeId::kNull:
        columns.push_back(std::make_shared<NullArray>(rows));
        break;
      case TypeId::kBool: {
        FUSION_ASSIGN_OR_RAISE(
            auto values,
            cur.ReadBuffer(static_cast<uint64_t>(bit_util::BytesForBits(rows))));
        columns.push_back(std::make_shared<BooleanArray>(rows, std::move(values),
                                                         std::move(validity), nulls));
        break;
      }
      case TypeId::kString: {
        FUSION_ASSIGN_OR_RAISE(
            auto arr, ReadStringPayload(&cur, rows, std::move(validity), nulls));
        columns.push_back(std::move(arr));
        break;
      }
      default: {
        int width = type.byte_width();
        FUSION_ASSIGN_OR_RAISE(
            auto values,
            cur.ReadBuffer(static_cast<uint64_t>(rows) * width));
        if (width == 4) {
          columns.push_back(std::make_shared<Int32Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        } else if (width == 16) {
          columns.push_back(std::make_shared<Decimal128Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        } else if (type.id() == TypeId::kFloat64) {
          columns.push_back(std::make_shared<Float64Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        } else {
          columns.push_back(std::make_shared<Int64Array>(
              type, rows, std::move(values), std::move(validity), nulls));
        }
      }
    }
  }
  if (cur.remaining() != 0) {
    return Status::IOError("ipc: " + std::to_string(cur.remaining()) +
                           " trailing bytes after batch");
  }
  return std::make_shared<RecordBatch>(std::move(schema), rows, std::move(columns));
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return Status::IOError("cannot open for write: " + path_);
  return Status::OK();
}

Status FileWriter::WriteBatch(const RecordBatch& batch) {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("ipc.write"));
  if (file_ == nullptr) return Status::IOError("ipc: write to closed file " + path_);
  std::vector<uint8_t> blob = SerializeBatch(batch);
  if (static_cast<int64_t>(blob.size()) > MaxFrameBytes()) {
    // A frame our own reader would refuse must not be written; raise
    // FUSION_IPC_MAX_FRAME_BYTES for workloads with giant single batches.
    return Status::IOError("ipc: batch of " + std::to_string(blob.size()) +
                           " bytes exceeds FUSION_IPC_MAX_FRAME_BYTES=" +
                           std::to_string(MaxFrameBytes()));
  }
  uint64_t len = blob.size();
  if (std::fwrite(&len, 8, 1, file_) != 1 ||
      std::fwrite(blob.data(), 1, blob.size(), file_) != blob.size()) {
    return Status::IOError("short write to " + path_);
  }
  bytes_written_ += static_cast<int64_t>(8 + blob.size());
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  // The injected flush failure: buffered stdio defers the real write
  // until fclose, so a full disk surfaces exactly here.
  Status fault = FaultInjector::Maybe("ipc.write");
  std::FILE* f = file_;
  file_ = nullptr;
  int rc = std::fclose(f);
  if (!fault.ok()) return fault;
  if (rc != 0) {
    return Status::IOError("ipc: flush/close failed for " + path_);
  }
  return Status::OK();
}

FileReader::~FileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileReader::Open() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) return Status::IOError("cannot open for read: " + path_);
  return Status::OK();
}

Result<RecordBatchPtr> FileReader::Next() {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("ipc.read"));
  if (file_ == nullptr) return Status::IOError("ipc: read from closed file " + path_);
  uint64_t len = 0;
  size_t n = std::fread(&len, 1, 8, file_);
  if (n == 0) return RecordBatchPtr(nullptr);  // clean EOF
  if (n != 8) return Status::IOError("ipc: truncated length prefix");
  // The prefix is a raw 64-bit length under the stream author's control;
  // cap it before sizing the frame buffer so a corrupt or hostile file
  // yields a clean error instead of std::bad_alloc / OOM.
  if (len > static_cast<uint64_t>(MaxFrameBytes())) {
    return Status::IOError("ipc: frame of " + std::to_string(len) +
                           " bytes exceeds FUSION_IPC_MAX_FRAME_BYTES=" +
                           std::to_string(MaxFrameBytes()));
  }
  std::vector<uint8_t> blob(len);
  if (std::fread(blob.data(), 1, len, file_) != len) {
    return Status::IOError("ipc: truncated batch body");
  }
  return DeserializeBatch(blob.data(), blob.size());
}

Status FileReader::Close() {
  if (file_ == nullptr) return Status::OK();
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::IOError("ipc: close failed for " + path_);
  }
  return Status::OK();
}

Result<std::vector<RecordBatchPtr>> ReadFile(const std::string& path) {
  FileReader reader(path);
  FUSION_RETURN_NOT_OK(reader.Open());
  std::vector<RecordBatchPtr> out;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
    if (batch == nullptr) break;
    out.push_back(std::move(batch));
  }
  FUSION_RETURN_NOT_OK(reader.Close());
  return out;
}

Status WriteFile(const std::string& path, const std::vector<RecordBatchPtr>& batches) {
  FileWriter writer(path);
  FUSION_RETURN_NOT_OK(writer.Open());
  for (const auto& b : batches) {
    FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
  }
  return writer.Close();
}

}  // namespace ipc
}  // namespace fusion
