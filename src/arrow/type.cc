#include "arrow/type.h"

#include <cstdio>
#include <sstream>

#include "arrow/decimal.h"

namespace fusion {

int DataType::byte_width() const {
  switch (id_) {
    case TypeId::kInt32:
    case TypeId::kDate32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kFloat64:
      return 8;
    case TypeId::kDecimal128:
      return 16;
    default:
      return 0;
  }
}

std::string DataType::ToString() const {
  switch (id_) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return "bool";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kDate32:
      return "date32";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kDecimal128: {
      std::ostringstream out;
      out << "decimal(" << static_cast<int>(precision_) << ","
          << static_cast<int>(scale_) << ")";
      return out.str();
    }
    case TypeId::kDictionary:
      return "dictionary";
  }
  return "unknown";
}

bool ValidDecimalParams(int precision, int scale) {
  return precision >= 1 && precision <= kDecimalMaxPrecision && scale >= 0 &&
         scale <= precision;
}

Result<DataType> TypeFromString(const std::string& name) {
  if (name == "null") return null_type();
  if (name == "bool") return boolean();
  if (name == "int32") return int32();
  if (name == "int64") return int64();
  if (name == "float64") return float64();
  if (name == "string") return utf8();
  if (name == "date32") return date32();
  if (name == "timestamp") return timestamp();
  if (name == "dictionary") return dictionary();
  if (name.rfind("decimal", 0) == 0) {
    int precision = 0;
    int scale = 0;
    char close = 0;
    if (name == "decimal") return decimal128(kDecimalMaxPrecision, 10);
    if (std::sscanf(name.c_str(), "decimal(%d,%d%c", &precision, &scale,
                    &close) == 3 &&
        close == ')' && ValidDecimalParams(precision, scale)) {
      return decimal128(precision, scale);
    }
    if (std::sscanf(name.c_str(), "decimal(%d%c", &precision, &close) == 2 &&
        close == ')' && ValidDecimalParams(precision, 0)) {
      return decimal128(precision, 0);
    }
    return Status::Invalid("malformed decimal type: " + name);
  }
  return Status::Invalid("unknown type name: " + name);
}

std::string Field::ToString() const {
  std::ostringstream out;
  out << name_ << ": " << type_.ToString();
  if (!nullable_) out << " not null";
  return out.str();
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    // First occurrence wins for duplicate names (e.g. join outputs);
    // callers that need disambiguation use qualified names.
    name_to_index_.emplace(fields_[i].name(), static_cast<int>(i));
  }
}

int Schema::GetFieldIndex(const std::string& name) const {
  auto it = name_to_index_.find(name);
  return it == name_to_index_.end() ? -1 : it->second;
}

Result<Field> Schema::GetFieldByName(const std::string& name) const {
  int idx = GetFieldIndex(name);
  if (idx < 0) return Status::KeyError("no field named '" + name + "' in schema");
  return fields_[idx];
}

bool Schema::Equals(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!fields_[i].Equals(other.fields_[i])) return false;
  }
  return true;
}

std::shared_ptr<Schema> Schema::Project(const std::vector<int>& indices) const {
  std::vector<Field> projected;
  projected.reserve(indices.size());
  for (int i : indices) {
    projected.push_back(fields_[i]);
  }
  return std::make_shared<Schema>(std::move(projected));
}

std::string Schema::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ", ";
    out << fields_[i].ToString();
  }
  return out.str();
}

}  // namespace fusion
