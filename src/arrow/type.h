#ifndef FUSION_ARROW_TYPE_H_
#define FUSION_ARROW_TYPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace fusion {

/// Physical/logical type ids supported by the engine.
///
/// The set is deliberately scoped to what the paper's evaluation
/// workloads (ClickBench, TPC-H, H2O-G) require; see DESIGN.md §4.
enum class TypeId : uint8_t {
  kNull = 0,   ///< null literal type; coerces to any other type
  kBool,       ///< 1 bit per value, bitmap-packed
  kInt32,      ///< 32-bit signed integer
  kInt64,      ///< 64-bit signed integer
  kFloat64,    ///< IEEE 754 double
  kString,     ///< variable-length UTF-8, int32 offsets
  kDate32,     ///< days since UNIX epoch, stored as int32
  kTimestamp,  ///< microseconds since UNIX epoch, stored as int64
  kDecimal128,  ///< 128-bit fixed-point, parameterized by (precision, scale)
  kDictionary,  ///< int32 codes into a shared UTF-8 dictionary
};

/// \brief Lightweight value type describing a column's data type.
///
/// A DataType is a TypeId plus the type's parameters — today only
/// decimal's (precision, scale) — packed into four bytes and passed by
/// value everywhere. Equality compares parameters too: decimal(15,2)
/// and decimal(15,3) are different types.
class DataType {
 public:
  constexpr DataType() : id_(TypeId::kNull), precision_(0), scale_(0) {}
  constexpr explicit DataType(TypeId id) : id_(id), precision_(0), scale_(0) {}
  constexpr DataType(TypeId id, uint8_t precision, uint8_t scale)
      : id_(id), precision_(precision), scale_(scale) {}

  constexpr TypeId id() const { return id_; }
  /// Decimal total digits (0 for non-decimal types).
  constexpr int precision() const { return precision_; }
  /// Decimal fractional digits (0 for non-decimal types).
  constexpr int scale() const { return scale_; }

  bool operator==(const DataType& other) const {
    return id_ == other.id_ && precision_ == other.precision_ &&
           scale_ == other.scale_;
  }
  bool operator!=(const DataType& other) const { return !(*this == other); }

  bool is_null() const { return id_ == TypeId::kNull; }
  bool is_integer() const { return id_ == TypeId::kInt32 || id_ == TypeId::kInt64; }
  bool is_floating() const { return id_ == TypeId::kFloat64; }
  bool is_decimal() const { return id_ == TypeId::kDecimal128; }
  bool is_numeric() const { return is_integer() || is_floating(); }
  bool is_temporal() const {
    return id_ == TypeId::kDate32 || id_ == TypeId::kTimestamp;
  }
  bool is_string() const { return id_ == TypeId::kString; }
  bool is_bool() const { return id_ == TypeId::kBool; }
  bool is_dictionary() const { return id_ == TypeId::kDictionary; }
  /// True for logically-string columns regardless of physical encoding
  /// (dense UTF-8 or dictionary codes).
  bool is_string_like() const { return is_string() || is_dictionary(); }
  /// True if values are stored in fixed-width primitive buffers.
  bool is_primitive() const {
    return !is_string_like() && !is_null();
  }

  /// Width in bytes of the fixed-size value representation (0 for
  /// bool/string/null).
  int byte_width() const;

  std::string ToString() const;

 private:
  TypeId id_;
  uint8_t precision_;
  uint8_t scale_;
};

constexpr DataType null_type() { return DataType(TypeId::kNull); }
constexpr DataType boolean() { return DataType(TypeId::kBool); }
constexpr DataType int32() { return DataType(TypeId::kInt32); }
constexpr DataType int64() { return DataType(TypeId::kInt64); }
constexpr DataType float64() { return DataType(TypeId::kFloat64); }
constexpr DataType utf8() { return DataType(TypeId::kString); }
constexpr DataType date32() { return DataType(TypeId::kDate32); }
constexpr DataType timestamp() { return DataType(TypeId::kTimestamp); }
/// Physical type of dictionary-encoded string arrays. Schema fields
/// keep the logical utf8() type; only arrays carry kDictionary.
constexpr DataType dictionary() { return DataType(TypeId::kDictionary); }
/// Exact fixed-point type with `precision` total digits, `scale` of
/// them fractional. precision in [1, 38], scale in [0, precision].
constexpr DataType decimal128(int precision, int scale) {
  return DataType(TypeId::kDecimal128, static_cast<uint8_t>(precision),
                  static_cast<uint8_t>(scale));
}

/// Validate decimal parameters (used on untrusted serialized input).
bool ValidDecimalParams(int precision, int scale);

/// Parse a type from its ToString() form ("int64", "decimal(15,2)", ...).
Result<DataType> TypeFromString(const std::string& name);

/// \brief A named, typed, nullable column in a Schema.
class Field {
 public:
  Field() = default;
  Field(std::string name, DataType type, bool nullable = true)
      : name_(std::move(name)), type_(type), nullable_(nullable) {}

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  bool nullable() const { return nullable_; }

  Field WithName(std::string name) const { return Field(std::move(name), type_, nullable_); }
  Field WithType(DataType type) const { return Field(name_, type, nullable_); }
  Field WithNullable(bool nullable) const { return Field(name_, type_, nullable); }

  bool Equals(const Field& other) const {
    return name_ == other.name_ && type_ == other.type_ && nullable_ == other.nullable_;
  }

  std::string ToString() const;

 private:
  std::string name_;
  DataType type_;
  bool nullable_ = true;
};

/// \brief Ordered collection of Fields describing a RecordBatch / table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or -1 if absent.
  int GetFieldIndex(const std::string& name) const;

  Result<Field> GetFieldByName(const std::string& name) const;

  bool Equals(const Schema& other) const;

  /// Schema with only the given column indices, in order.
  std::shared_ptr<Schema> Project(const std::vector<int>& indices) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> name_to_index_;
};

using SchemaPtr = std::shared_ptr<Schema>;

inline SchemaPtr schema(std::vector<Field> fields) {
  return std::make_shared<Schema>(std::move(fields));
}

}  // namespace fusion

#endif  // FUSION_ARROW_TYPE_H_
