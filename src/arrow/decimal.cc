#include "arrow/decimal.h"

#include <array>
#include <cctype>

namespace fusion {

namespace {

std::array<__int128, kDecimalMaxPrecision + 1> BuildPowers() {
  std::array<__int128, kDecimalMaxPrecision + 1> p{};
  p[0] = 1;
  for (int i = 1; i <= kDecimalMaxPrecision; ++i) p[i] = p[i - 1] * 10;
  return p;
}

const std::array<__int128, kDecimalMaxPrecision + 1>& Powers() {
  static const auto kPowers = BuildPowers();
  return kPowers;
}

}  // namespace

Decimal128 DecimalPowerOfTen(int k) {
  if (k < 0) k = 0;
  if (k > kDecimalMaxPrecision) k = kDecimalMaxPrecision;
  return Decimal128::FromInt128(Powers()[k]);
}

int DecimalDigitCount(const Decimal128& v) {
  __int128 x = v.ToInt128();
  unsigned __int128 mag =
      x < 0 ? -static_cast<unsigned __int128>(x) : static_cast<unsigned __int128>(x);
  int digits = 1;
  while (digits <= kDecimalMaxPrecision &&
         mag >= static_cast<unsigned __int128>(Powers()[digits])) {
    ++digits;
  }
  return digits;
}

bool DecimalFitsPrecision(const Decimal128& v, int precision) {
  if (precision >= kDecimalMaxPrecision + 1) return true;
  if (precision < 1) return false;
  __int128 x = v.ToInt128();
  unsigned __int128 mag =
      x < 0 ? -static_cast<unsigned __int128>(x) : static_cast<unsigned __int128>(x);
  return mag < static_cast<unsigned __int128>(Powers()[precision]);
}

bool DecimalRescale(const Decimal128& v, int from_scale, int to_scale,
                    Decimal128* out) {
  if (from_scale == to_scale) {
    *out = v;
    return true;
  }
  __int128 x = v.ToInt128();
  if (to_scale > from_scale) {
    int shift = to_scale - from_scale;
    if (shift > kDecimalMaxPrecision) return false;
    __int128 r;
    if (__builtin_mul_overflow(x, Powers()[shift], &r)) return false;
    *out = Decimal128::FromInt128(r);
    return true;
  }
  int shift = from_scale - to_scale;
  if (shift > kDecimalMaxPrecision) {
    *out = Decimal128(0);
    return true;
  }
  __int128 divisor = Powers()[shift];
  __int128 q = x / divisor;
  __int128 r = x % divisor;
  // Round half away from zero (SQL semantics).
  if (r >= (divisor + 1) / 2) q += 1;
  if (-r >= (divisor + 1) / 2) q -= 1;
  *out = Decimal128::FromInt128(q);
  return true;
}

std::string DecimalToString(const Decimal128& v, int scale) {
  __int128 x = v.ToInt128();
  bool negative = x < 0;
  unsigned __int128 mag =
      negative ? -static_cast<unsigned __int128>(x) : static_cast<unsigned __int128>(x);
  std::string digits;
  do {
    digits.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  } while (mag != 0);
  if (scale < 0) scale = 0;
  while (static_cast<int>(digits.size()) <= scale) digits.push_back('0');
  std::string out;
  if (negative) out.push_back('-');
  for (int i = static_cast<int>(digits.size()) - 1; i >= 0; --i) {
    out.push_back(digits[static_cast<size_t>(i)]);
    if (i == scale && scale > 0) out.push_back('.');
  }
  return out;
}

bool DecimalFromString(std::string_view s, Decimal128* out, int* precision,
                       int* scale) {
  size_t i = 0;
  bool negative = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    negative = s[i] == '-';
    ++i;
  }
  unsigned __int128 mag = 0;
  int digits = 0;  // significant digits (integer-part leading zeros skipped)
  int frac_digits = 0;
  bool seen_dot = false;
  bool seen_digit = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '.') {
      if (seen_dot) return false;
      seen_dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    seen_digit = true;
    if (seen_dot) {
      ++frac_digits;
    } else if (digits == 0 && c == '0') {
      continue;  // integer-part leading zero: no digit, no value
    }
    ++digits;
    if (digits > kDecimalMaxPrecision || frac_digits > kDecimalMaxPrecision) {
      return false;
    }
    mag = mag * 10 + static_cast<unsigned>(c - '0');
  }
  if (!seen_digit) return false;
  __int128 value = static_cast<__int128>(mag);
  if (negative) value = -value;
  *out = Decimal128::FromInt128(value);
  // Precision covers at least the scale ("0.005" is decimal(3,3)).
  if (digits < frac_digits) digits = frac_digits;
  if (digits == 0) digits = 1;
  *precision = digits;
  *scale = frac_digits;
  return true;
}

bool DecimalFromString(std::string_view s, int precision, int scale,
                       Decimal128* out) {
  Decimal128 raw;
  int p = 0;
  int sc = 0;
  if (!DecimalFromString(s, &raw, &p, &sc)) return false;
  Decimal128 rescaled;
  if (!DecimalRescale(raw, sc, scale, &rescaled)) return false;
  if (!DecimalFitsPrecision(rescaled, precision)) return false;
  *out = rescaled;
  return true;
}

}  // namespace fusion
