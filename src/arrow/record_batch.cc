#include "arrow/record_batch.h"

#include <sstream>

namespace fusion {

Result<RecordBatchPtr> RecordBatch::Make(SchemaPtr schema,
                                         std::vector<ArrayPtr> columns) {
  if (static_cast<int>(columns.size()) != schema->num_fields()) {
    return Status::Invalid("RecordBatch: column count does not match schema");
  }
  int64_t rows = columns.empty() ? 0 : columns[0]->length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i]->length() != rows) {
      return Status::Invalid("RecordBatch: columns have differing lengths");
    }
    // A dictionary-encoded column satisfies a utf8 schema field: the
    // schema describes the logical type, the array the physical one.
    if (columns[i]->type() != schema->field(static_cast<int>(i)).type() &&
        !columns[i]->type().is_null() &&
        !(columns[i]->type().is_dictionary() &&
          schema->field(static_cast<int>(i)).type().is_string())) {
      return Status::TypeError(
          "RecordBatch: column '" + schema->field(static_cast<int>(i)).name() +
          "' type " + columns[i]->type().ToString() + " does not match schema type " +
          schema->field(static_cast<int>(i)).type().ToString());
    }
  }
  return std::make_shared<RecordBatch>(std::move(schema), rows, std::move(columns));
}

Result<ArrayPtr> RecordBatch::GetColumnByName(const std::string& name) const {
  int idx = schema_->GetFieldIndex(name);
  if (idx < 0) return Status::KeyError("no column named '" + name + "'");
  return columns_[idx];
}

Result<RecordBatchPtr> RecordBatch::Project(const std::vector<int>& indices) const {
  std::vector<ArrayPtr> cols;
  cols.reserve(indices.size());
  for (int i : indices) {
    if (i < 0 || i >= num_columns()) {
      return Status::Invalid("Project: column index out of range");
    }
    cols.push_back(columns_[i]);
  }
  return std::make_shared<RecordBatch>(schema_->Project(indices), num_rows_,
                                       std::move(cols));
}

RecordBatchPtr RecordBatch::Slice(int64_t offset, int64_t length) const {
  std::vector<ArrayPtr> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    cols.push_back(c->Slice(offset, length));
  }
  return std::make_shared<RecordBatch>(schema_, length, std::move(cols));
}

bool RecordBatch::Equals(const RecordBatch& other) const {
  if (num_rows_ != other.num_rows_ || num_columns() != other.num_columns()) {
    return false;
  }
  for (int i = 0; i < num_columns(); ++i) {
    if (!ArraysEqual(*columns_[i], *other.columns_[i])) return false;
  }
  return true;
}

int64_t RecordBatch::TotalBufferSize() const {
  int64_t total = 0;
  for (const auto& c : columns_) {
    if (c->validity()) total += c->validity()->size();
    switch (c->type().id()) {
      case TypeId::kString: {
        const auto& sa = checked_cast<StringArray>(*c);
        total += sa.offsets()->size() + sa.data()->size();
        break;
      }
      case TypeId::kDictionary: {
        const auto& da = checked_cast<DictionaryArray>(*c);
        total += da.codes()->size() + da.dictionary()->offsets()->size() +
                 da.dictionary()->data()->size();
        break;
      }
      case TypeId::kBool:
        total += checked_cast<BooleanArray>(*c).values()->size();
        break;
      case TypeId::kNull:
        break;
      default:
        total += c->length() * c->type().byte_width();
    }
  }
  return total;
}

std::string RecordBatch::ToString() const {
  std::ostringstream out;
  for (int c = 0; c < num_columns(); ++c) {
    if (c > 0) out << "\t";
    out << schema_->field(c).name();
  }
  out << "\n";
  for (int64_t r = 0; r < num_rows_; ++r) {
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) out << "\t";
      out << columns_[c]->ValueToString(r);
    }
    out << "\n";
  }
  return out.str();
}

Result<RecordBatchPtr> ConcatenateBatches(const SchemaPtr& schema,
                                          const std::vector<RecordBatchPtr>& batches) {
  if (batches.empty()) {
    std::vector<ArrayPtr> cols;
    for (const auto& f : schema->fields()) {
      FUSION_ASSIGN_OR_RAISE(auto arr, MakeArrayOfNulls(f.type(), 0));
      cols.push_back(std::move(arr));
    }
    return RecordBatch::Make(schema, std::move(cols));
  }
  if (batches.size() == 1) return batches[0];
  std::vector<ArrayPtr> cols;
  int64_t rows = 0;
  for (const auto& b : batches) rows += b->num_rows();
  for (int c = 0; c < schema->num_fields(); ++c) {
    std::vector<ArrayPtr> chunks;
    chunks.reserve(batches.size());
    for (const auto& b : batches) {
      chunks.push_back(b->column(c));
    }
    FUSION_ASSIGN_OR_RAISE(auto merged, Concatenate(chunks));
    cols.push_back(std::move(merged));
  }
  return std::make_shared<RecordBatch>(schema, rows, std::move(cols));
}

std::vector<RecordBatchPtr> SliceBatch(const RecordBatchPtr& batch, int64_t max_rows) {
  std::vector<RecordBatchPtr> out;
  if (batch->num_rows() <= max_rows) {
    out.push_back(batch);
    return out;
  }
  int64_t offset = 0;
  while (offset < batch->num_rows()) {
    int64_t len = std::min(max_rows, batch->num_rows() - offset);
    out.push_back(batch->Slice(offset, len));
    offset += len;
  }
  return out;
}

}  // namespace fusion
