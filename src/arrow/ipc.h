#ifndef FUSION_ARROW_IPC_H_
#define FUSION_ARROW_IPC_H_

#include <cstdio>
#include <string>
#include <vector>

#include "arrow/record_batch.h"
#include "common/result.h"

namespace fusion {
namespace ipc {

/// \brief Serialize a RecordBatch into a self-describing byte blob
/// (schema + buffers). The engine's stand-in for Arrow IPC: used for
/// spill files, the Arrow-file TableProvider and shuffle-style transport.
std::vector<uint8_t> SerializeBatch(const RecordBatch& batch);

/// Deserialize a batch produced by SerializeBatch.
Result<RecordBatchPtr> DeserializeBatch(const uint8_t* data, size_t size);

/// \brief Append-style writer for a stream of batches to a file.
class FileWriter {
 public:
  explicit FileWriter(std::string path) : path_(std::move(path)) {}
  ~FileWriter();

  Status Open();
  Status WriteBatch(const RecordBatch& batch);
  Status Close();

  /// Serialized bytes written so far (length prefixes included); spill
  /// sites charge this against the DiskManager budget.
  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int64_t bytes_written_ = 0;
};

/// \brief Reader for files produced by FileWriter; batches are read
/// incrementally.
class FileReader {
 public:
  explicit FileReader(std::string path) : path_(std::move(path)) {}
  ~FileReader();

  Status Open();
  /// Next batch, or nullptr at end of file.
  Result<RecordBatchPtr> Next();
  Status Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Read every batch in an IPC file.
Result<std::vector<RecordBatchPtr>> ReadFile(const std::string& path);

/// Write all batches to an IPC file.
Status WriteFile(const std::string& path, const std::vector<RecordBatchPtr>& batches);

}  // namespace ipc
}  // namespace fusion

#endif  // FUSION_ARROW_IPC_H_
