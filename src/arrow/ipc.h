#ifndef FUSION_ARROW_IPC_H_
#define FUSION_ARROW_IPC_H_

#include <cstdio>
#include <string>
#include <vector>

#include "arrow/record_batch.h"
#include "common/result.h"

namespace fusion {
namespace ipc {

/// \brief Hard cap on a single serialized batch (and on any length
/// prefix read back from a file or socket). Every deserialization path
/// validates untrusted lengths against this bound *before* allocating,
/// so a corrupt or hostile stream can never drive an unbounded
/// allocation: the worst case is one frame of this size.
///
/// FUSION_IPC_MAX_FRAME_BYTES overrides (bytes); default 64 MiB. The
/// flight server shares this limit for its wire frames.
int64_t MaxFrameBytes();

/// Options controlling batch serialization.
struct SerializeOptions {
  /// Keep dictionary-encoded string columns in code form (codes +
  /// dictionary are written instead of the densified strings). Used by
  /// the network wire path, where repeated values dominate; spill files
  /// keep the densified default so every reader sees plain arrays.
  bool preserve_dictionary = false;
};

/// \brief Serialize a RecordBatch into a self-describing byte blob
/// (schema + buffers). The engine's stand-in for Arrow IPC: used for
/// spill files, the Arrow-file TableProvider, shuffle-style transport
/// and the flight wire protocol. Blob format v2 ("FIP2"): column
/// buffers carry an explicit encoding tag (plain vs dictionary).
std::vector<uint8_t> SerializeBatch(const RecordBatch& batch,
                                    const SerializeOptions& options = {});

/// Deserialize a batch produced by SerializeBatch.
///
/// Treats `data` as untrusted: every length is validated against the
/// bytes actually present before any allocation, string offsets must be
/// monotonically increasing and in-bounds, dictionary codes must index
/// the transmitted dictionary, and trailing garbage is rejected. Any
/// malformed input yields Status::IOError — never UB or an allocation
/// larger than `size`.
Result<RecordBatchPtr> DeserializeBatch(const uint8_t* data, size_t size);

/// \brief Append-style writer for a stream of batches to a file.
class FileWriter {
 public:
  explicit FileWriter(std::string path) : path_(std::move(path)) {}
  ~FileWriter();

  Status Open();
  Status WriteBatch(const RecordBatch& batch);
  /// Flush and close. A failed flush (ENOSPC, I/O error) surfaces as
  /// Status::IOError — spill and IPC writes must not silently lose
  /// buffered bytes. Idempotent.
  Status Close();

  /// Serialized bytes written so far (length prefixes included); spill
  /// sites charge this against the DiskManager budget.
  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int64_t bytes_written_ = 0;
};

/// \brief Reader for files produced by FileWriter; batches are read
/// incrementally. Length prefixes are validated against MaxFrameBytes()
/// before the frame buffer is allocated.
class FileReader {
 public:
  explicit FileReader(std::string path) : path_(std::move(path)) {}
  ~FileReader();

  Status Open();
  /// Next batch, or nullptr at end of file.
  Result<RecordBatchPtr> Next();
  /// Close; propagates fclose failure as Status::IOError. Idempotent.
  Status Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Read every batch in an IPC file.
Result<std::vector<RecordBatchPtr>> ReadFile(const std::string& path);

/// Write all batches to an IPC file.
Status WriteFile(const std::string& path, const std::vector<RecordBatchPtr>& batches);

}  // namespace ipc
}  // namespace fusion

#endif  // FUSION_ARROW_IPC_H_
