#include "arrow/array.h"

#include <sstream>

namespace fusion {

BufferPtr Array::SliceValidity(const BufferPtr& validity, int64_t offset,
                               int64_t length) {
  if (validity == nullptr) return nullptr;
  auto out = std::make_shared<Buffer>(bit_util::BytesForBits(length));
  // Byte-aligned fast path is not worth it here; slices are rare and cold.
  for (int64_t i = 0; i < length; ++i) {
    bit_util::SetBitTo(out->mutable_data(), i,
                       bit_util::GetBit(validity->data(), offset + i));
  }
  return out;
}

template <typename CType>
std::string NumericArray<CType>::ValueToString(int64_t i) const {
  if (this->IsNull(i)) return "null";
  if constexpr (std::is_floating_point_v<CType>) {
    std::ostringstream out;
    out << Value(i);
    return out.str();
  } else if constexpr (std::is_same_v<CType, Decimal128>) {
    return DecimalToString(Value(i), type_.scale());
  } else {
    return std::to_string(Value(i));
  }
}

template class NumericArray<int32_t>;
template class NumericArray<int64_t>;
template class NumericArray<double>;
template class NumericArray<Decimal128>;

int64_t BooleanArray::TrueCount() const {
  if (validity_ == nullptr) return bit_util::CountSetBits(values_->data(), length_);
  int64_t count = 0;
  for (int64_t i = 0; i < length_; ++i) {
    if (IsValid(i) && Value(i)) ++count;
  }
  return count;
}

ArrayPtr BooleanArray::Slice(int64_t offset, int64_t length) const {
  auto values = std::make_shared<Buffer>(bit_util::BytesForBits(length));
  for (int64_t i = 0; i < length; ++i) {
    bit_util::SetBitTo(values->mutable_data(), i,
                       bit_util::GetBit(values_->data(), offset + i));
  }
  BufferPtr validity = SliceValidity(validity_, offset, length);
  int64_t nulls =
      validity ? length - bit_util::CountSetBits(validity->data(), length) : 0;
  return std::make_shared<BooleanArray>(length, std::move(values), std::move(validity),
                                        nulls);
}

std::string BooleanArray::ValueToString(int64_t i) const {
  if (IsNull(i)) return "null";
  return Value(i) ? "true" : "false";
}

ArrayPtr StringArray::Slice(int64_t offset, int64_t length) const {
  const int32_t* offs = raw_offsets();
  auto new_offsets = std::make_shared<Buffer>((length + 1) * sizeof(int32_t));
  int32_t* no = new_offsets->mutable_data_as<int32_t>();
  int32_t base = offs[offset];
  for (int64_t i = 0; i <= length; ++i) {
    no[i] = offs[offset + i] - base;
  }
  auto new_data = Buffer::CopyOf(data_->data() + base, offs[offset + length] - base);
  BufferPtr validity = SliceValidity(validity_, offset, length);
  int64_t nulls =
      validity ? length - bit_util::CountSetBits(validity->data(), length) : 0;
  return std::make_shared<StringArray>(length, std::move(new_offsets),
                                       std::move(new_data), std::move(validity), nulls);
}

std::string StringArray::ValueToString(int64_t i) const {
  if (IsNull(i)) return "null";
  return std::string(Value(i));
}

ArrayPtr DictionaryArray::Densify() const {
  const int32_t* codes = raw_codes();
  int64_t total_bytes = 0;
  for (int64_t i = 0; i < length_; ++i) {
    if (IsValid(i)) total_bytes += static_cast<int64_t>(Value(i).size());
  }
  auto offsets = std::make_shared<Buffer>((length_ + 1) * sizeof(int32_t));
  auto data = std::make_shared<Buffer>(total_bytes);
  int32_t* offs = offsets->mutable_data_as<int32_t>();
  uint8_t* out = data->mutable_data();
  int32_t pos = 0;
  offs[0] = 0;
  for (int64_t i = 0; i < length_; ++i) {
    if (IsValid(i)) {
      std::string_view v = dictionary_->Value(codes[i]);
      std::memcpy(out + pos, v.data(), v.size());
      pos += static_cast<int32_t>(v.size());
    }
    offs[i + 1] = pos;
  }
  BufferPtr validity =
      validity_ ? Buffer::CopyOf(validity_->data(), validity_->size()) : nullptr;
  return std::make_shared<StringArray>(length_, std::move(offsets), std::move(data),
                                       std::move(validity), null_count_);
}

ArrayPtr DictionaryArray::Slice(int64_t offset, int64_t length) const {
  auto codes = Buffer::CopyOf(raw_codes() + offset, length * sizeof(int32_t));
  BufferPtr validity = SliceValidity(validity_, offset, length);
  int64_t nulls =
      validity ? length - bit_util::CountSetBits(validity->data(), length) : 0;
  return std::make_shared<DictionaryArray>(length, std::move(codes), dictionary_,
                                           std::move(validity), nulls);
}

std::string DictionaryArray::ValueToString(int64_t i) const {
  if (IsNull(i)) return "null";
  return std::string(Value(i));
}

NullArray::NullArray(int64_t length)
    : Array(null_type(), length, nullptr, length) {
  // A NullArray's validity is implicit: every slot is null. We keep a
  // bitmap of zeros so IsNull() works uniformly.
  auto validity = std::make_shared<Buffer>(bit_util::BytesForBits(length));
  validity_ = std::move(validity);
}

ArrayPtr NullArray::Slice(int64_t, int64_t length) const {
  return std::make_shared<NullArray>(length);
}

std::string NullArray::ValueToString(int64_t) const { return "null"; }

Result<ArrayPtr> MakeArrayOfNulls(DataType type, int64_t length) {
  auto validity = std::make_shared<Buffer>(bit_util::BytesForBits(length));
  switch (type.id()) {
    case TypeId::kNull:
      return ArrayPtr(std::make_shared<NullArray>(length));
    case TypeId::kBool: {
      auto values = std::make_shared<Buffer>(bit_util::BytesForBits(length));
      return ArrayPtr(std::make_shared<BooleanArray>(length, std::move(values),
                                                     std::move(validity), length));
    }
    case TypeId::kInt32:
    case TypeId::kDate32: {
      auto values = std::make_shared<Buffer>(length * 4);
      return ArrayPtr(std::make_shared<Int32Array>(type, length, std::move(values),
                                                   std::move(validity), length));
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      auto values = std::make_shared<Buffer>(length * 8);
      return ArrayPtr(std::make_shared<Int64Array>(type, length, std::move(values),
                                                   std::move(validity), length));
    }
    case TypeId::kFloat64: {
      auto values = std::make_shared<Buffer>(length * 8);
      return ArrayPtr(std::make_shared<Float64Array>(type, length, std::move(values),
                                                     std::move(validity), length));
    }
    case TypeId::kDecimal128: {
      auto values = std::make_shared<Buffer>(length * 16);
      return ArrayPtr(std::make_shared<Decimal128Array>(
          type, length, std::move(values), std::move(validity), length));
    }
    // An all-null string-like array has no values to encode; the dense
    // representation is the canonical choice.
    case TypeId::kString:
    case TypeId::kDictionary: {
      auto offsets = std::make_shared<Buffer>((length + 1) * sizeof(int32_t));
      auto data = std::make_shared<Buffer>(0);
      return ArrayPtr(std::make_shared<StringArray>(length, std::move(offsets),
                                                    std::move(data),
                                                    std::move(validity), length));
    }
  }
  return Status::TypeError("MakeArrayOfNulls: unsupported type " + type.ToString());
}

bool ArrayElementsEqual(const Array& a, int64_t ai, const Array& b, int64_t bi) {
  const bool a_null = a.IsNull(ai);
  const bool b_null = b.IsNull(bi);
  if (a_null || b_null) return a_null == b_null;
  // Strings compare by logical value across physical encodings (a
  // dictionary array from one FPQ row group vs a dense array from
  // another must still test equal).
  if (a.type().is_string_like() || b.type().is_string_like()) {
    return a.type().is_string_like() && b.type().is_string_like() &&
           StringLikeValue(a, ai) == StringLikeValue(b, bi);
  }
  switch (a.type().id()) {
    case TypeId::kNull:
      return true;
    case TypeId::kBool:
      return checked_cast<BooleanArray>(a).Value(ai) ==
             checked_cast<BooleanArray>(b).Value(bi);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return checked_cast<Int32Array>(a).Value(ai) ==
             checked_cast<Int32Array>(b).Value(bi);
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return checked_cast<Int64Array>(a).Value(ai) ==
             checked_cast<Int64Array>(b).Value(bi);
    case TypeId::kFloat64:
      return checked_cast<Float64Array>(a).Value(ai) ==
             checked_cast<Float64Array>(b).Value(bi);
    case TypeId::kDecimal128:
      return checked_cast<Decimal128Array>(a).Value(ai) ==
             checked_cast<Decimal128Array>(b).Value(bi);
    case TypeId::kString:
    case TypeId::kDictionary:
      return false;  // string-like pairs handled above
  }
  return false;
}

bool ArraysEqual(const Array& a, const Array& b) {
  if (a.length() != b.length()) return false;
  if (a.type() != b.type() &&
      !(a.type().is_string_like() && b.type().is_string_like())) {
    return false;
  }
  for (int64_t i = 0; i < a.length(); ++i) {
    if (!ArrayElementsEqual(a, i, b, i)) return false;
  }
  return true;
}

namespace {

template <typename CType>
Result<ArrayPtr> ConcatenateNumeric(DataType type,
                                    const std::vector<ArrayPtr>& arrays,
                                    int64_t total, int64_t nulls) {
  auto values = std::make_shared<Buffer>(total * static_cast<int64_t>(sizeof(CType)));
  BufferPtr validity;
  if (nulls > 0) {
    validity = std::make_shared<Buffer>(bit_util::BytesForBits(total));
    std::memset(validity->mutable_data(), 0xff,
                static_cast<size_t>(validity->size()));
  }
  int64_t pos = 0;
  for (const auto& arr : arrays) {
    const auto& na = checked_cast<NumericArray<CType>>(*arr);
    if (arr->length() > 0) {
      std::memcpy(values->mutable_data_as<CType>() + pos, na.raw_values(),
                  static_cast<size_t>(arr->length()) * sizeof(CType));
    }
    if (nulls > 0) {
      for (int64_t i = 0; i < arr->length(); ++i) {
        if (arr->IsNull(i)) bit_util::ClearBit(validity->mutable_data(), pos + i);
      }
    }
    pos += arr->length();
  }
  return ArrayPtr(std::make_shared<NumericArray<CType>>(
      type, total, std::move(values), std::move(validity), nulls));
}

}  // namespace

Result<ArrayPtr> Concatenate(const std::vector<ArrayPtr>& arrays) {
  if (arrays.empty()) return Status::Invalid("Concatenate: no input arrays");
  if (arrays.size() == 1) return arrays[0];
  DataType type = arrays[0]->type();
  int64_t total = 0;
  int64_t nulls = 0;
  for (const auto& a : arrays) {
    if (a->type() != type &&
        !(a->type().is_string_like() && type.is_string_like())) {
      return Status::TypeError("Concatenate: mixed types");
    }
    total += a->length();
    nulls += a->null_count();
  }
  if (type.is_dictionary()) {
    // When every input shares one dictionary instance, only the 4-byte
    // codes are copied and the result stays encoded. Mixed encodings or
    // distinct dictionaries (e.g. different FPQ chunks) fall back to
    // the dense representation below.
    const auto& first = checked_cast<DictionaryArray>(*arrays[0]);
    bool same_dict = true;
    for (const auto& a : arrays) {
      if (!a->type().is_dictionary() ||
          checked_cast<DictionaryArray>(*a).dictionary() != first.dictionary()) {
        same_dict = false;
        break;
      }
    }
    if (same_dict) {
      auto codes = std::make_shared<Buffer>(total * sizeof(int32_t));
      BufferPtr validity;
      if (nulls > 0) {
        validity = std::make_shared<Buffer>(bit_util::BytesForBits(total));
        std::memset(validity->mutable_data(), 0xff,
                    static_cast<size_t>(validity->size()));
      }
      int64_t pos = 0;
      for (const auto& arr : arrays) {
        const auto& da = checked_cast<DictionaryArray>(*arr);
        if (arr->length() > 0) {
          std::memcpy(codes->mutable_data_as<int32_t>() + pos, da.raw_codes(),
                      static_cast<size_t>(arr->length()) * sizeof(int32_t));
        }
        if (nulls > 0) {
          for (int64_t i = 0; i < arr->length(); ++i) {
            if (arr->IsNull(i)) {
              bit_util::ClearBit(validity->mutable_data(), pos + i);
            }
          }
        }
        pos += arr->length();
      }
      return ArrayPtr(std::make_shared<DictionaryArray>(
          total, std::move(codes), first.dictionary(), std::move(validity), nulls));
    }
  }
  if (type.is_string_like()) {
    bool any_dict = false;
    for (const auto& a : arrays) any_dict |= a->type().is_dictionary();
    if (any_dict) {
      std::vector<ArrayPtr> dense;
      dense.reserve(arrays.size());
      for (const auto& a : arrays) {
        dense.push_back(a->type().is_dictionary()
                            ? checked_cast<DictionaryArray>(*a).Densify()
                            : a);
      }
      return Concatenate(dense);
    }
  }
  switch (type.id()) {
    case TypeId::kNull:
      return ArrayPtr(std::make_shared<NullArray>(total));
    case TypeId::kInt32:
    case TypeId::kDate32:
      return ConcatenateNumeric<int32_t>(type, arrays, total, nulls);
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return ConcatenateNumeric<int64_t>(type, arrays, total, nulls);
    case TypeId::kFloat64:
      return ConcatenateNumeric<double>(type, arrays, total, nulls);
    case TypeId::kDecimal128:
      return ConcatenateNumeric<Decimal128>(type, arrays, total, nulls);
    case TypeId::kBool: {
      auto values = std::make_shared<Buffer>(bit_util::BytesForBits(total));
      BufferPtr validity;
      if (nulls > 0) {
        validity = std::make_shared<Buffer>(bit_util::BytesForBits(total));
        std::memset(validity->mutable_data(), 0xff,
                    static_cast<size_t>(validity->size()));
      }
      int64_t pos = 0;
      for (const auto& arr : arrays) {
        const auto& ba = checked_cast<BooleanArray>(*arr);
        for (int64_t i = 0; i < arr->length(); ++i) {
          bit_util::SetBitTo(values->mutable_data(), pos + i, ba.Value(i));
          if (nulls > 0 && arr->IsNull(i)) {
            bit_util::ClearBit(validity->mutable_data(), pos + i);
          }
        }
        pos += arr->length();
      }
      return ArrayPtr(std::make_shared<BooleanArray>(total, std::move(values),
                                                     std::move(validity), nulls));
    }
    case TypeId::kString: {
      int64_t total_bytes = 0;
      for (const auto& arr : arrays) {
        const auto& sa = checked_cast<StringArray>(*arr);
        total_bytes += sa.raw_offsets()[arr->length()];
      }
      auto offsets = std::make_shared<Buffer>((total + 1) * sizeof(int32_t));
      auto data = std::make_shared<Buffer>(total_bytes);
      BufferPtr validity;
      if (nulls > 0) {
        validity = std::make_shared<Buffer>(bit_util::BytesForBits(total));
        std::memset(validity->mutable_data(), 0xff,
                    static_cast<size_t>(validity->size()));
      }
      int32_t* off_out = offsets->mutable_data_as<int32_t>();
      int64_t pos = 0;
      int32_t byte_pos = 0;
      off_out[0] = 0;
      for (const auto& arr : arrays) {
        const auto& sa = checked_cast<StringArray>(*arr);
        const int32_t* offs = sa.raw_offsets();
        int32_t len_bytes = offs[arr->length()];
        if (len_bytes > 0) {
          std::memcpy(data->mutable_data() + byte_pos, sa.data()->data(),
                      static_cast<size_t>(len_bytes));
        }
        for (int64_t i = 0; i < arr->length(); ++i) {
          off_out[pos + i + 1] = byte_pos + offs[i + 1];
          if (nulls > 0 && arr->IsNull(i)) {
            bit_util::ClearBit(validity->mutable_data(), pos + i);
          }
        }
        pos += arr->length();
        byte_pos += len_bytes;
      }
      return ArrayPtr(std::make_shared<StringArray>(total, std::move(offsets),
                                                    std::move(data),
                                                    std::move(validity), nulls));
    }
    case TypeId::kDictionary:
      break;  // fully handled by the encoding-aware paths above
  }
  return Status::TypeError("Concatenate: unsupported type " + type.ToString());
}

}  // namespace fusion
