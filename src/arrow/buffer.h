#ifndef FUSION_ARROW_BUFFER_H_
#define FUSION_ARROW_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/macros.h"

namespace fusion {

/// \brief Contiguous, owned byte buffer backing array data.
///
/// Buffers are immutable once wrapped in an Array; builders own a
/// Buffer while growing it and transfer ownership on Finish().
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(int64_t size) : data_(static_cast<size_t>(size)) {}
  explicit Buffer(std::vector<uint8_t> data) : data_(std::move(data)) {}

  static std::shared_ptr<Buffer> CopyOf(const void* src, int64_t size) {
    auto buf = std::make_shared<Buffer>(size);
    if (size > 0) std::memcpy(buf->mutable_data(), src, static_cast<size_t>(size));
    return buf;
  }

  const uint8_t* data() const { return data_.data(); }
  uint8_t* mutable_data() { return data_.data(); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  void Resize(int64_t new_size, uint8_t fill = 0) {
    data_.resize(static_cast<size_t>(new_size), fill);
  }
  void Reserve(int64_t capacity) { data_.reserve(static_cast<size_t>(capacity)); }

  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_.data());
  }
  template <typename T>
  T* mutable_data_as() {
    return reinterpret_cast<T*>(data_.data());
  }

  void Append(const void* src, int64_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(src);
    data_.insert(data_.end(), p, p + size);
  }

 private:
  std::vector<uint8_t> data_;
};

using BufferPtr = std::shared_ptr<Buffer>;

}  // namespace fusion

#endif  // FUSION_ARROW_BUFFER_H_
