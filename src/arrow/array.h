#ifndef FUSION_ARROW_ARRAY_H_
#define FUSION_ARROW_ARRAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arrow/buffer.h"
#include "arrow/decimal.h"
#include "arrow/type.h"
#include "common/bit_util.h"
#include "common/macros.h"
#include "common/result.h"

namespace fusion {

class Array;
using ArrayPtr = std::shared_ptr<Array>;

/// \brief Immutable columnar array: a type, a length, an optional
/// validity bitmap and type-specific value buffers.
class Array {
 public:
  virtual ~Array() = default;

  DataType type() const { return type_; }
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }
  const BufferPtr& validity() const { return validity_; }

  /// True if value `i` is null.
  bool IsNull(int64_t i) const {
    return validity_ != nullptr && !bit_util::GetBit(validity_->data(), i);
  }
  bool IsValid(int64_t i) const { return !IsNull(i); }

  /// Raw validity bits, or nullptr when all values are valid.
  const uint8_t* validity_bits() const {
    return validity_ ? validity_->data() : nullptr;
  }

  /// Zero-copy-ish slice [offset, offset+length). Implemented as a copy
  /// of buffer ranges for string arrays and a wrapper for primitives.
  virtual ArrayPtr Slice(int64_t offset, int64_t length) const = 0;

  /// Render value `i` for debugging / CSV output ("" for null handled by
  /// callers).
  virtual std::string ValueToString(int64_t i) const = 0;

 protected:
  Array(DataType type, int64_t length, BufferPtr validity, int64_t null_count)
      : type_(type), length_(length), validity_(std::move(validity)),
        null_count_(null_count) {}

  static BufferPtr SliceValidity(const BufferPtr& validity, int64_t offset,
                                 int64_t length);

  DataType type_;
  int64_t length_ = 0;
  BufferPtr validity_;  // null means "no nulls"
  int64_t null_count_ = 0;
};

/// \brief Fixed-width primitive array (int32/int64/float64/date32/timestamp).
template <typename CType>
class NumericArray : public Array {
 public:
  NumericArray(DataType type, int64_t length, BufferPtr values, BufferPtr validity,
               int64_t null_count)
      : Array(type, length, std::move(validity), null_count),
        values_(std::move(values)) {
    FUSION_DCHECK(values_ != nullptr);
    FUSION_DCHECK(values_->size() >= length * static_cast<int64_t>(sizeof(CType)));
  }

  CType Value(int64_t i) const { return values_->template data_as<CType>()[i]; }
  const CType* raw_values() const { return values_->template data_as<CType>(); }
  const BufferPtr& values() const { return values_; }

  ArrayPtr Slice(int64_t offset, int64_t length) const override {
    auto values = Buffer::CopyOf(raw_values() + offset, length * sizeof(CType));
    BufferPtr validity = SliceValidity(validity_, offset, length);
    int64_t nulls =
        validity ? length - bit_util::CountSetBits(validity->data(), length) : 0;
    return std::make_shared<NumericArray<CType>>(type_, length, std::move(values),
                                                 std::move(validity), nulls);
  }

  std::string ValueToString(int64_t i) const override;

 private:
  BufferPtr values_;
};

using Int32Array = NumericArray<int32_t>;
using Int64Array = NumericArray<int64_t>;
using Float64Array = NumericArray<double>;
/// 16 bytes per value (two little-endian 64-bit limbs); the column's
/// (precision, scale) ride in the DataType.
using Decimal128Array = NumericArray<Decimal128>;

/// \brief Boolean array with bitmap-packed values.
class BooleanArray : public Array {
 public:
  BooleanArray(int64_t length, BufferPtr values, BufferPtr validity,
               int64_t null_count)
      : Array(boolean(), length, std::move(validity), null_count),
        values_(std::move(values)) {}

  bool Value(int64_t i) const { return bit_util::GetBit(values_->data(), i); }
  const BufferPtr& values() const { return values_; }

  /// Number of true values among valid slots.
  int64_t TrueCount() const;

  ArrayPtr Slice(int64_t offset, int64_t length) const override;
  std::string ValueToString(int64_t i) const override;

 private:
  BufferPtr values_;
};

/// \brief Variable-length UTF-8 string array: int32 offsets + byte data.
class StringArray : public Array {
 public:
  StringArray(int64_t length, BufferPtr offsets, BufferPtr data, BufferPtr validity,
              int64_t null_count)
      : Array(utf8(), length, std::move(validity), null_count),
        offsets_(std::move(offsets)), data_(std::move(data)) {}

  std::string_view Value(int64_t i) const {
    const int32_t* offs = offsets_->data_as<int32_t>();
    return std::string_view(reinterpret_cast<const char*>(data_->data()) + offs[i],
                            static_cast<size_t>(offs[i + 1] - offs[i]));
  }
  const int32_t* raw_offsets() const { return offsets_->data_as<int32_t>(); }
  const BufferPtr& offsets() const { return offsets_; }
  const BufferPtr& data() const { return data_; }

  ArrayPtr Slice(int64_t offset, int64_t length) const override;
  std::string ValueToString(int64_t i) const override;

 private:
  BufferPtr offsets_;
  BufferPtr data_;
};

/// \brief Dictionary-encoded string array: int32 codes into a shared
/// dense StringArray of distinct values (paper §4.2: encodings survive
/// across operators instead of being decoded at the scan boundary).
///
/// The dictionary is shared by pointer — slicing or taking rows copies
/// only the 4-byte codes. A null row is marked in the validity bitmap
/// like every other array; its code is meaningless (readers write 0).
/// The dictionary itself contains no nulls and need not be sorted or
/// deduplicated for correctness, only for compactness.
class DictionaryArray : public Array {
 public:
  DictionaryArray(int64_t length, BufferPtr codes,
                  std::shared_ptr<StringArray> dictionary, BufferPtr validity,
                  int64_t null_count)
      : Array(fusion::dictionary(), length, std::move(validity), null_count),
        codes_(std::move(codes)), dictionary_(std::move(dictionary)) {
    FUSION_DCHECK(codes_ != nullptr);
    FUSION_DCHECK(dictionary_ != nullptr);
  }

  /// The string a (valid) row refers to.
  std::string_view Value(int64_t i) const {
    return dictionary_->Value(raw_codes()[i]);
  }
  int32_t Code(int64_t i) const { return raw_codes()[i]; }
  const int32_t* raw_codes() const { return codes_->data_as<int32_t>(); }
  const BufferPtr& codes() const { return codes_; }
  const std::shared_ptr<StringArray>& dictionary() const { return dictionary_; }
  int64_t dict_size() const { return dictionary_->length(); }

  /// Decode into a dense StringArray (the universal fallback for
  /// operators without a dictionary fast path). Total control stays
  /// with compute::EnsureDense; this lives in the arrow layer so
  /// Status-free paths (IPC serialization) can also densify.
  ArrayPtr Densify() const;

  ArrayPtr Slice(int64_t offset, int64_t length) const override;
  std::string ValueToString(int64_t i) const override;

 private:
  BufferPtr codes_;
  std::shared_ptr<StringArray> dictionary_;
};

/// \brief All-null array used for untyped NULL literals.
class NullArray : public Array {
 public:
  explicit NullArray(int64_t length);
  ArrayPtr Slice(int64_t offset, int64_t length) const override;
  std::string ValueToString(int64_t i) const override;
};

/// Dispatch helpers ------------------------------------------------------

/// C type corresponding to a fixed-width TypeId.
template <TypeId kId>
struct CTypeOf;
template <>
struct CTypeOf<TypeId::kInt32> { using type = int32_t; };
template <>
struct CTypeOf<TypeId::kInt64> { using type = int64_t; };
template <>
struct CTypeOf<TypeId::kFloat64> { using type = double; };
template <>
struct CTypeOf<TypeId::kDate32> { using type = int32_t; };
template <>
struct CTypeOf<TypeId::kTimestamp> { using type = int64_t; };
template <>
struct CTypeOf<TypeId::kDecimal128> { using type = Decimal128; };

/// Downcast helpers (debug-checked).
template <typename ArrayType>
const ArrayType& checked_cast(const Array& arr) {
  return static_cast<const ArrayType&>(arr);
}

/// String accessor spanning both physical encodings (dense UTF-8 and
/// dictionary codes). The array must be string-like and row `i` valid.
inline std::string_view StringLikeValue(const Array& arr, int64_t i) {
  return arr.type().is_dictionary()
             ? checked_cast<DictionaryArray>(arr).Value(i)
             : checked_cast<StringArray>(arr).Value(i);
}

/// Make an all-valid / all-null primitive array of the given type.
Result<ArrayPtr> MakeArrayOfNulls(DataType type, int64_t length);

/// Compare two arrays for logical equality (same type, length, values,
/// null positions).
bool ArraysEqual(const Array& a, const Array& b);

/// Compare one element across two arrays (null == null).
bool ArrayElementsEqual(const Array& a, int64_t ai, const Array& b, int64_t bi);

/// Concatenate arrays of identical type into one.
Result<ArrayPtr> Concatenate(const std::vector<ArrayPtr>& arrays);

}  // namespace fusion

#endif  // FUSION_ARROW_ARRAY_H_
