#include "arrow/builder.h"

#include <cstring>

namespace fusion {

void ArrayBuilder::AppendValidity(bool valid) {
  int64_t byte = length_ >> 3;
  if (static_cast<int64_t>(validity_.size()) <= byte) validity_.resize(byte + 1, 0);
  if (valid) {
    validity_[byte] |= uint8_t(1) << (length_ & 7);
  } else {
    ++null_count_;
  }
  ++length_;
}

BufferPtr ArrayBuilder::FinishValidity() {
  BufferPtr out;
  if (null_count_ > 0) {
    out = std::make_shared<Buffer>(std::vector<uint8_t>(validity_));
  }
  validity_.clear();
  length_ = 0;
  null_count_ = 0;
  return out;
}

Result<ArrayPtr> BooleanBuilder::Finish() {
  auto values = std::make_shared<Buffer>(bit_util::BytesForBits(length_));
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i]) bit_util::SetBit(values->mutable_data(), static_cast<int64_t>(i));
  }
  int64_t len = length_;
  int64_t nulls = null_count_;
  BufferPtr validity = FinishValidity();
  values_.clear();
  return ArrayPtr(std::make_shared<BooleanArray>(len, std::move(values),
                                                 std::move(validity), nulls));
}

Result<ArrayPtr> StringBuilder::Finish() {
  auto offsets = std::make_shared<Buffer>((length_ + 1) * sizeof(int32_t));
  int32_t* off = offsets->mutable_data_as<int32_t>();
  off[0] = 0;
  if (!offsets_.empty()) {
    std::memcpy(off + 1, offsets_.data(), offsets_.size() * sizeof(int32_t));
  }
  auto data = Buffer::CopyOf(data_.data(), static_cast<int64_t>(data_.size()));
  int64_t len = length_;
  int64_t nulls = null_count_;
  BufferPtr validity = FinishValidity();
  offsets_.clear();
  data_.clear();
  return ArrayPtr(std::make_shared<StringArray>(len, std::move(offsets),
                                                std::move(data), std::move(validity),
                                                nulls));
}

int32_t DictionaryBuilder::InternValue(std::string_view value) {
  auto it = dict_index_.find(std::string(value));
  if (it != dict_index_.end()) return it->second;
  int32_t code = static_cast<int32_t>(dict_values_.size());
  dict_values_.emplace_back(value);
  dict_index_.emplace(dict_values_.back(), code);
  return code;
}

void DictionaryBuilder::Append(std::string_view value) {
  codes_.push_back(InternValue(value));
  AppendValidity(true);
}

void DictionaryBuilder::AppendFrom(const Array& src, int64_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  if (src.type().is_dictionary()) {
    const auto& da = checked_cast<DictionaryArray>(src);
    const StringArray* src_dict = da.dictionary().get();
    if (remap_src_ != src_dict) {
      // Intern the source dictionary once; subsequent rows from any
      // array sharing it are a single table lookup.
      remap_src_ = src_dict;
      remap_.resize(static_cast<size_t>(src_dict->length()));
      for (int64_t c = 0; c < src_dict->length(); ++c) {
        remap_[static_cast<size_t>(c)] = InternValue(src_dict->Value(c));
      }
    }
    codes_.push_back(remap_[static_cast<size_t>(da.Code(i))]);
    AppendValidity(true);
    return;
  }
  Append(checked_cast<StringArray>(src).Value(i));
}

Result<ArrayPtr> DictionaryBuilder::Finish() {
  auto codes = Buffer::CopyOf(codes_.data(), codes_.size() * sizeof(int32_t));
  StringBuilder dict_builder;
  for (const auto& v : dict_values_) dict_builder.Append(v);
  FUSION_ASSIGN_OR_RAISE(ArrayPtr dict_arr, dict_builder.Finish());
  auto dict = std::static_pointer_cast<StringArray>(dict_arr);
  int64_t len = length_;
  int64_t nulls = null_count_;
  BufferPtr validity = FinishValidity();
  codes_.clear();
  dict_values_.clear();
  dict_index_.clear();
  remap_src_ = nullptr;
  remap_.clear();
  return ArrayPtr(std::make_shared<DictionaryArray>(
      len, std::move(codes), std::move(dict), std::move(validity), nulls));
}

Result<std::unique_ptr<ArrayBuilder>> MakeBuilder(DataType type) {
  switch (type.id()) {
    case TypeId::kBool:
      return std::unique_ptr<ArrayBuilder>(new BooleanBuilder());
    case TypeId::kInt32:
    case TypeId::kDate32:
      return std::unique_ptr<ArrayBuilder>(new NumericBuilder<int32_t>(type));
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return std::unique_ptr<ArrayBuilder>(new NumericBuilder<int64_t>(type));
    case TypeId::kFloat64:
      return std::unique_ptr<ArrayBuilder>(new Float64Builder());
    case TypeId::kDecimal128:
      return std::unique_ptr<ArrayBuilder>(new Decimal128Builder(type));
    case TypeId::kString:
      return std::unique_ptr<ArrayBuilder>(new StringBuilder());
    case TypeId::kDictionary:
      return std::unique_ptr<ArrayBuilder>(new DictionaryBuilder());
    default:
      return Status::TypeError("MakeBuilder: unsupported type " + type.ToString());
  }
}

namespace {
template <typename Builder, typename T>
ArrayPtr MakeTyped(Builder&& builder, const std::vector<T>& values,
                   const std::vector<bool>& valid) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return std::move(builder).Finish().ValueOrDie();
}
}  // namespace

ArrayPtr MakeInt32Array(const std::vector<int32_t>& values,
                        const std::vector<bool>& valid) {
  return MakeTyped(Int32Builder(), values, valid);
}
ArrayPtr MakeInt64Array(const std::vector<int64_t>& values,
                        const std::vector<bool>& valid) {
  return MakeTyped(Int64Builder(), values, valid);
}
ArrayPtr MakeFloat64Array(const std::vector<double>& values,
                          const std::vector<bool>& valid) {
  return MakeTyped(Float64Builder(), values, valid);
}
ArrayPtr MakeBooleanArray(const std::vector<bool>& values,
                          const std::vector<bool>& valid) {
  BooleanBuilder builder;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return builder.Finish().ValueOrDie();
}
ArrayPtr MakeStringArray(const std::vector<std::string>& values,
                         const std::vector<bool>& valid) {
  StringBuilder builder;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return builder.Finish().ValueOrDie();
}
ArrayPtr MakeDate32Array(const std::vector<int32_t>& values,
                         const std::vector<bool>& valid) {
  return MakeTyped(Date32Builder(), values, valid);
}
ArrayPtr MakeTimestampArray(const std::vector<int64_t>& values,
                            const std::vector<bool>& valid) {
  return MakeTyped(TimestampBuilder(), values, valid);
}
ArrayPtr MakeDecimal128Array(int precision, int scale,
                             const std::vector<Decimal128>& values,
                             const std::vector<bool>& valid) {
  return MakeTyped(Decimal128Builder(precision, scale), values, valid);
}

}  // namespace fusion
