#include "arrow/builder.h"

#include <cstring>

namespace fusion {

void ArrayBuilder::AppendValidity(bool valid) {
  int64_t byte = length_ >> 3;
  if (static_cast<int64_t>(validity_.size()) <= byte) validity_.resize(byte + 1, 0);
  if (valid) {
    validity_[byte] |= uint8_t(1) << (length_ & 7);
  } else {
    ++null_count_;
  }
  ++length_;
}

BufferPtr ArrayBuilder::FinishValidity() {
  BufferPtr out;
  if (null_count_ > 0) {
    out = std::make_shared<Buffer>(std::vector<uint8_t>(validity_));
  }
  validity_.clear();
  length_ = 0;
  null_count_ = 0;
  return out;
}

Result<ArrayPtr> BooleanBuilder::Finish() {
  auto values = std::make_shared<Buffer>(bit_util::BytesForBits(length_));
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i]) bit_util::SetBit(values->mutable_data(), static_cast<int64_t>(i));
  }
  int64_t len = length_;
  int64_t nulls = null_count_;
  BufferPtr validity = FinishValidity();
  values_.clear();
  return ArrayPtr(std::make_shared<BooleanArray>(len, std::move(values),
                                                 std::move(validity), nulls));
}

Result<ArrayPtr> StringBuilder::Finish() {
  auto offsets = std::make_shared<Buffer>((length_ + 1) * sizeof(int32_t));
  int32_t* off = offsets->mutable_data_as<int32_t>();
  off[0] = 0;
  if (!offsets_.empty()) {
    std::memcpy(off + 1, offsets_.data(), offsets_.size() * sizeof(int32_t));
  }
  auto data = Buffer::CopyOf(data_.data(), static_cast<int64_t>(data_.size()));
  int64_t len = length_;
  int64_t nulls = null_count_;
  BufferPtr validity = FinishValidity();
  offsets_.clear();
  data_.clear();
  return ArrayPtr(std::make_shared<StringArray>(len, std::move(offsets),
                                                std::move(data), std::move(validity),
                                                nulls));
}

Result<std::unique_ptr<ArrayBuilder>> MakeBuilder(DataType type) {
  switch (type.id()) {
    case TypeId::kBool:
      return std::unique_ptr<ArrayBuilder>(new BooleanBuilder());
    case TypeId::kInt32:
    case TypeId::kDate32:
      return std::unique_ptr<ArrayBuilder>(new NumericBuilder<int32_t>(type));
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return std::unique_ptr<ArrayBuilder>(new NumericBuilder<int64_t>(type));
    case TypeId::kFloat64:
      return std::unique_ptr<ArrayBuilder>(new Float64Builder());
    case TypeId::kString:
      return std::unique_ptr<ArrayBuilder>(new StringBuilder());
    default:
      return Status::TypeError("MakeBuilder: unsupported type " + type.ToString());
  }
}

namespace {
template <typename Builder, typename T>
ArrayPtr MakeTyped(Builder&& builder, const std::vector<T>& values,
                   const std::vector<bool>& valid) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return std::move(builder).Finish().ValueOrDie();
}
}  // namespace

ArrayPtr MakeInt32Array(const std::vector<int32_t>& values,
                        const std::vector<bool>& valid) {
  return MakeTyped(Int32Builder(), values, valid);
}
ArrayPtr MakeInt64Array(const std::vector<int64_t>& values,
                        const std::vector<bool>& valid) {
  return MakeTyped(Int64Builder(), values, valid);
}
ArrayPtr MakeFloat64Array(const std::vector<double>& values,
                          const std::vector<bool>& valid) {
  return MakeTyped(Float64Builder(), values, valid);
}
ArrayPtr MakeBooleanArray(const std::vector<bool>& values,
                          const std::vector<bool>& valid) {
  BooleanBuilder builder;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return builder.Finish().ValueOrDie();
}
ArrayPtr MakeStringArray(const std::vector<std::string>& values,
                         const std::vector<bool>& valid) {
  StringBuilder builder;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid.empty() && !valid[i]) {
      builder.AppendNull();
    } else {
      builder.Append(values[i]);
    }
  }
  return builder.Finish().ValueOrDie();
}
ArrayPtr MakeDate32Array(const std::vector<int32_t>& values,
                         const std::vector<bool>& valid) {
  return MakeTyped(Date32Builder(), values, valid);
}
ArrayPtr MakeTimestampArray(const std::vector<int64_t>& values,
                            const std::vector<bool>& valid) {
  return MakeTyped(TimestampBuilder(), values, valid);
}

}  // namespace fusion
