#ifndef FUSION_ARROW_DECIMAL_H_
#define FUSION_ARROW_DECIMAL_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace fusion {

/// \brief 128-bit signed fixed-point value, stored as two 64-bit limbs.
///
/// The limb layout (lo then hi, little-endian within each limb) keeps the
/// struct 8-byte aligned so values can live in ordinary primitive buffers
/// without the 16-byte alignment `__int128` would demand; arithmetic
/// converts to `__int128` internally. A Decimal128 is the *unscaled*
/// integer; the scale lives in the column's DataType. Max precision is 38
/// digits (the largest power of ten representable in 128 bits).
struct Decimal128 {
  uint64_t lo = 0;
  int64_t hi = 0;

  constexpr Decimal128() = default;
  constexpr Decimal128(int64_t high, uint64_t low) : lo(low), hi(high) {}
  // NOLINTNEXTLINE(google-explicit-constructor): int literals are handy
  constexpr Decimal128(int64_t v)
      : lo(static_cast<uint64_t>(v)), hi(v < 0 ? -1 : 0) {}

  static Decimal128 FromInt128(__int128 v) {
    return Decimal128(static_cast<int64_t>(v >> 64),
                      static_cast<uint64_t>(v));
  }
  __int128 ToInt128() const {
    return (static_cast<__int128>(hi) << 64) |
           static_cast<unsigned __int128>(lo);
  }

  double ToDouble() const { return static_cast<double>(ToInt128()); }
  explicit operator double() const { return ToDouble(); }
  explicit operator float() const { return static_cast<float>(ToDouble()); }
  explicit operator int64_t() const { return static_cast<int64_t>(ToInt128()); }
  explicit operator int32_t() const { return static_cast<int32_t>(ToInt128()); }

  bool IsNegative() const { return hi < 0; }

  /// True iff the value fits in a signed 64-bit integer.
  bool FitsInInt64() const {
    __int128 v = ToInt128();
    return v >= static_cast<__int128>(INT64_MIN) &&
           v <= static_cast<__int128>(INT64_MAX);
  }

  friend bool operator==(const Decimal128& a, const Decimal128& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const Decimal128& a, const Decimal128& b) {
    return !(a == b);
  }
  friend bool operator<(const Decimal128& a, const Decimal128& b) {
    return a.ToInt128() < b.ToInt128();
  }
  friend bool operator<=(const Decimal128& a, const Decimal128& b) {
    return a.ToInt128() <= b.ToInt128();
  }
  friend bool operator>(const Decimal128& a, const Decimal128& b) {
    return a.ToInt128() > b.ToInt128();
  }
  friend bool operator>=(const Decimal128& a, const Decimal128& b) {
    return a.ToInt128() >= b.ToInt128();
  }

  // Wrapping arithmetic; kernels that need overflow detection use the
  // *WithOverflow helpers below.
  friend Decimal128 operator+(const Decimal128& a, const Decimal128& b) {
    return FromInt128(a.ToInt128() + b.ToInt128());
  }
  friend Decimal128 operator-(const Decimal128& a, const Decimal128& b) {
    return FromInt128(a.ToInt128() - b.ToInt128());
  }
  friend Decimal128 operator*(const Decimal128& a, const Decimal128& b) {
    return FromInt128(a.ToInt128() * b.ToInt128());
  }
  friend Decimal128 operator/(const Decimal128& a, const Decimal128& b) {
    return FromInt128(a.ToInt128() / b.ToInt128());
  }
  friend Decimal128 operator%(const Decimal128& a, const Decimal128& b) {
    return FromInt128(a.ToInt128() % b.ToInt128());
  }
  friend Decimal128 operator-(const Decimal128& a) {
    return FromInt128(-a.ToInt128());
  }
  Decimal128& operator+=(const Decimal128& b) {
    *this = *this + b;
    return *this;
  }
  Decimal128& operator-=(const Decimal128& b) {
    *this = *this - b;
    return *this;
  }

  static bool AddWithOverflow(const Decimal128& a, const Decimal128& b,
                              Decimal128* out) {
    __int128 r;
    bool overflow = __builtin_add_overflow(a.ToInt128(), b.ToInt128(), &r);
    *out = FromInt128(r);
    return overflow;
  }
  static bool SubtractWithOverflow(const Decimal128& a, const Decimal128& b,
                                   Decimal128* out) {
    __int128 r;
    bool overflow = __builtin_sub_overflow(a.ToInt128(), b.ToInt128(), &r);
    *out = FromInt128(r);
    return overflow;
  }
  static bool MultiplyWithOverflow(const Decimal128& a, const Decimal128& b,
                                   Decimal128* out) {
    __int128 r;
    bool overflow = __builtin_mul_overflow(a.ToInt128(), b.ToInt128(), &r);
    *out = FromInt128(r);
    return overflow;
  }

  uint64_t Hash() const {
    // Mix the limbs the same way two independent int64 columns would be.
    uint64_t h = lo * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    h += static_cast<uint64_t>(hi) * 0xc2b2ae3d27d4eb4fULL;
    h ^= h >> 29;
    return h;
  }
};

static_assert(sizeof(Decimal128) == 16, "Decimal128 must be 16 bytes");
static_assert(alignof(Decimal128) == 8, "Decimal128 must be 8-byte aligned");

/// Largest supported precision: 10^38 < 2^127 < 10^39.
inline constexpr int kDecimalMaxPrecision = 38;

/// 10^k for k in [0, 38].
Decimal128 DecimalPowerOfTen(int k);

/// Number of decimal digits needed to represent |v| (>= 1).
int DecimalDigitCount(const Decimal128& v);

/// True iff |v| < 10^precision (the value fits in `precision` digits).
bool DecimalFitsPrecision(const Decimal128& v, int precision);

/// Scale `v` from `from_scale` to `to_scale`. Scaling up multiplies by a
/// power of ten (can overflow); scaling down divides with round-half-up
/// away from zero (SQL rounding). Returns false on 128-bit overflow.
bool DecimalRescale(const Decimal128& v, int from_scale, int to_scale,
                    Decimal128* out);

/// Render the unscaled value `v` with a decimal point at `scale` digits,
/// e.g. {12345, scale=2} -> "123.45".
std::string DecimalToString(const Decimal128& v, int scale);

/// Parse a decimal literal ("-12.340", "+7", "1e2" is rejected). On
/// success `*out` holds the unscaled value, `*precision`/`*scale` the
/// inferred parameters (precision >= 1, scale >= 0). Returns false on
/// malformed input or > 38 digits.
bool DecimalFromString(std::string_view s, Decimal128* out, int* precision,
                       int* scale);

/// Parse into a *given* (precision, scale): rounds half-up to `scale`
/// fractional digits and fails if the result exceeds `precision` digits.
bool DecimalFromString(std::string_view s, int precision, int scale,
                       Decimal128* out);

}  // namespace fusion

namespace std {
template <>
struct hash<fusion::Decimal128> {
  size_t operator()(const fusion::Decimal128& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // FUSION_ARROW_DECIMAL_H_
