#ifndef FUSION_BASELINE_TIE_ENGINE_H_
#define FUSION_BASELINE_TIE_ENGINE_H_

#include <string>
#include <vector>

#include "logical/plan.h"
#include "physical/physical_expr.h"

namespace fusion {
namespace baseline {

/// \brief TIE — the "Tightly Integrated Engine" used as the DuckDB
/// stand-in in the paper's evaluation (DESIGN.md §5.1).
///
/// TIE shares the SQL front end and expression kernels with Fusion
/// (exactly the architecture the paper describes for Spark+Photon/
/// Comet: swap only the execution engine) but executes with a different
/// design philosophy:
///
///  - operator-at-a-time, full materialization between operators
///    (MonetDB-style) instead of pull-based streaming;
///  - scans always decode whole row groups: no zone-map pruning, no
///    Bloom filters, no late materialization (filters run after
///    decode) — the behaviour the paper attributes to DuckDB's weaker
///    Parquet predicate pushdown;
///  - its own line-by-line CSV parser (simpler and slower than the
///    vectorized one, matching the paper's H2O-G analysis);
///  - a high-cardinality-optimized aggregation: open-addressing group
///    table keyed on 64-bit hashes with row-index collision checks and
///    no group-key materialization (the design the paper credits for
///    DuckDB's wins on 10M-group ClickBench queries).
class TieEngine {
 public:
  struct Options {
    int64_t batch_rows = 128 * 1024;  // materialized chunk size
  };

  TieEngine() : options_(Options()) {}
  explicit TieEngine(Options options) : options_(options) {}

  /// Execute an (optimizer-lite) logical plan. The caller should run
  /// only expression simplification, not scan pushdown rules — TIE
  /// evaluates filters itself after materializing scans.
  Result<std::vector<RecordBatchPtr>> Execute(const logical::PlanPtr& plan);

  /// TIE's own CSV scan (paths + explicit schema).
  Result<std::vector<RecordBatchPtr>> ScanCsvFile(const std::string& path,
                                                  const SchemaPtr& schema);

 private:
  struct Table {
    SchemaPtr schema;
    std::vector<RecordBatchPtr> batches;
    int64_t num_rows = 0;
  };

  Result<Table> Run(const logical::PlanPtr& plan);

  /// Execute uncorrelated scalar subqueries with TIE and inline the
  /// resulting literals.
  Result<logical::ExprPtr> ResolveSubqueries(const logical::ExprPtr& expr);

  Result<Table> Scan(const logical::PlanPtr& plan);
  Result<Table> Filter(const logical::PlanPtr& plan, Table input);
  Result<Table> Project(const logical::PlanPtr& plan, Table input);
  Result<Table> Aggregate(const logical::PlanPtr& plan, Table input);
  Result<Table> Sort(const logical::PlanPtr& plan, Table input);
  Result<Table> Limit(const logical::PlanPtr& plan, Table input);
  Result<Table> Join(const logical::PlanPtr& plan, Table left, Table right);
  Result<Table> Distinct(Table input);

  Options options_;
};

}  // namespace baseline
}  // namespace fusion

#endif  // FUSION_BASELINE_TIE_ENGINE_H_
