#include "baseline/tie_engine.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_map>
#include <numeric>

#include "arrow/builder.h"
#include "catalog/file_tables.h"
#include "common/bit_util.h"
#include "compute/cast.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "logical/expr_eval.h"
#include "optimizer/optimizer.h"
#include "row/row_format.h"

namespace fusion {
namespace baseline {

using logical::Expr;
using logical::ExprPtr;
using logical::JoinKind;
using logical::PlanKind;
using logical::PlanPtr;
using physical::CreatePhysicalExpr;
using physical::EvaluateToArrays;
using physical::PhysicalExprPtr;

namespace {

/// Open-addressing group table keyed on 64-bit hashes; collisions are
/// resolved by comparing key values at the group's first row — no group
/// key bytes are ever materialized (the high-cardinality design).
class GroupTable {
 public:
  explicit GroupTable(int64_t expected) {
    capacity_ = static_cast<int64_t>(
        bit_util::NextPowerOfTwo(static_cast<uint64_t>(std::max<int64_t>(
            16, expected * 2))));
    mask_ = capacity_ - 1;
    slots_.assign(static_cast<size_t>(capacity_), Slot{});
  }

  /// Find-or-insert the group of `row`; returns its dense id.
  uint32_t Lookup(uint64_t hash, int64_t row, const std::vector<ArrayPtr>& keys) {
    if (num_groups_ * 2 >= capacity_) Grow(keys);
    int64_t idx = static_cast<int64_t>(hash) & mask_;
    for (;;) {
      Slot& slot = slots_[static_cast<size_t>(idx)];
      if (slot.first_row < 0) {
        slot.hash = hash;
        slot.first_row = row;
        slot.group_id = num_groups_++;
        first_rows_.push_back(row);
        return slot.group_id;
      }
      if (slot.hash == hash && RowsEqual(keys, slot.first_row, row)) {
        return slot.group_id;
      }
      idx = (idx + 1) & mask_;
    }
  }

  int64_t num_groups() const { return num_groups_; }
  const std::vector<int64_t>& first_rows() const { return first_rows_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    int64_t first_row = -1;
    uint32_t group_id = 0;
  };

  static bool RowsEqual(const std::vector<ArrayPtr>& keys, int64_t a, int64_t b) {
    for (const auto& k : keys) {
      // Grouping treats NULL as its own group value (null == null).
      if (!ArrayElementsEqual(*k, a, *k, b)) return false;
    }
    return true;
  }

  void Grow(const std::vector<ArrayPtr>& keys) {
    (void)keys;
    int64_t new_capacity = capacity_ * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(static_cast<size_t>(new_capacity), Slot{});
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    for (const Slot& s : old) {
      if (s.first_row < 0) continue;
      int64_t idx = static_cast<int64_t>(s.hash) & mask_;
      while (slots_[static_cast<size_t>(idx)].first_row >= 0) {
        idx = (idx + 1) & mask_;
      }
      slots_[static_cast<size_t>(idx)] = s;
    }
  }

  int64_t capacity_;
  int64_t mask_;
  int64_t num_groups_ = 0;
  std::vector<Slot> slots_;
  std::vector<int64_t> first_rows_;
};

}  // namespace

Result<std::vector<RecordBatchPtr>> TieEngine::Execute(const PlanPtr& plan) {
  FUSION_ASSIGN_OR_RAISE(Table result, Run(plan));
  return result.batches;
}

Result<ExprPtr> TieEngine::ResolveSubqueries(const ExprPtr& expr) {
  return logical::TransformExpr(expr, [this](const ExprPtr& e) -> Result<ExprPtr> {
    if (e->kind != Expr::Kind::kScalarSubquery) return e;
    auto subplan =
        std::static_pointer_cast<logical::LogicalPlan>(e->subquery_plan);
    // Subquery plans are stored unoptimized; run the shared logical
    // optimizer (scan pushdown stays off because TIE's providers refuse
    // it) so comma joins become equi joins.
    FUSION_ASSIGN_OR_RAISE(auto optimized,
                           optimizer::Optimizer::Default().Optimize(subplan));
    FUSION_ASSIGN_OR_RAISE(auto batches, Execute(optimized));
    int64_t rows = 0;
    Scalar value = Scalar::Null(e->cast_type);
    for (const auto& b : batches) {
      for (int64_t r = 0; r < b->num_rows(); ++r) {
        if (++rows > 1) {
          return Status::ExecutionError(
              "TIE: scalar subquery produced more than one row");
        }
        value = Scalar::FromArray(*b->column(0), r);
      }
    }
    return logical::Lit(std::move(value));
  });
}

Result<TieEngine::Table> TieEngine::Run(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kTableScan:
      return Scan(plan);
    case PlanKind::kFilter: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Filter(plan, std::move(input));
    }
    case PlanKind::kProjection: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Project(plan, std::move(input));
    }
    case PlanKind::kAggregate: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Aggregate(plan, std::move(input));
    }
    case PlanKind::kSort: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Sort(plan, std::move(input));
    }
    case PlanKind::kLimit: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Limit(plan, std::move(input));
    }
    case PlanKind::kJoin: {
      FUSION_ASSIGN_OR_RAISE(Table left, Run(plan->child(0)));
      FUSION_ASSIGN_OR_RAISE(Table right, Run(plan->child(1)));
      return Join(plan, std::move(left), std::move(right));
    }
    case PlanKind::kDistinct: {
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      return Distinct(std::move(input));
    }
    case PlanKind::kSubqueryAlias:
      return Run(plan->child(0));
    case PlanKind::kUnion: {
      Table out;
      out.schema = plan->schema().schema();
      for (const auto& c : plan->children) {
        FUSION_ASSIGN_OR_RAISE(Table part, Run(c));
        for (auto& b : part.batches) {
          out.num_rows += b->num_rows();
          out.batches.push_back(std::move(b));
        }
      }
      return out;
    }
    case PlanKind::kEmptyRelation: {
      Table out;
      out.schema = plan->schema().schema();
      if (plan->produce_one_row) {
        out.batches.push_back(RecordBatch::MakeEmpty(out.schema, 1));
        out.num_rows = 1;
      }
      return out;
    }
    case PlanKind::kWindow: {
      // Window evaluation delegates to the shared window-function
      // library over TIE-materialized, TIE-sorted partitions.
      FUSION_ASSIGN_OR_RAISE(Table input, Run(plan->child(0)));
      FUSION_ASSIGN_OR_RAISE(auto merged,
                             ConcatenateBatches(input.schema, input.batches));
      const logical::PlanSchema& in_schema = plan->child(0)->schema();
      std::vector<ArrayPtr> extra;
      for (const auto& e : plan->exprs) {
        const ExprPtr& w = logical::Unalias(e);
        std::vector<ArrayPtr> part_cols;
        std::vector<row::SortOptions> opts;
        size_t part_keys = 0;
        if (w->window_spec != nullptr) {
          for (const auto& p : w->window_spec->partition_by) {
            FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(p, in_schema));
            FUSION_ASSIGN_OR_RAISE(auto v, pe->Evaluate(*merged));
            FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(merged->num_rows()));
            part_cols.push_back(std::move(arr));
            opts.push_back({});
          }
          part_keys = part_cols.size();
          for (const auto& o : w->window_spec->order_by) {
            FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(o.expr, in_schema));
            FUSION_ASSIGN_OR_RAISE(auto v, pe->Evaluate(*merged));
            FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(merged->num_rows()));
            part_cols.push_back(std::move(arr));
            opts.push_back(o.options);
          }
        }
        std::vector<int64_t> order(static_cast<size_t>(merged->num_rows()));
        std::iota(order.begin(), order.end(), 0);
        if (!part_cols.empty()) {
          FUSION_ASSIGN_OR_RAISE(order, row::SortIndices(part_cols, opts));
        }
        std::vector<PhysicalExprPtr> arg_exprs;
        for (const auto& arg : w->children) {
          FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(arg, in_schema));
          arg_exprs.push_back(std::move(pe));
        }
        FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(arg_exprs, *merged));
        FUSION_ASSIGN_OR_RAISE(DataType out_type, w->GetType(in_schema));
        FUSION_ASSIGN_OR_RAISE(auto builder, MakeBuilder(out_type));
        builder->Reserve(merged->num_rows());
        std::vector<ArrayPtr> outputs;
        std::vector<std::pair<int64_t, std::pair<int, int64_t>>> scatter;
        // Partition boundaries compare only the PARTITION BY columns.
        std::vector<ArrayPtr> part_key_cols(part_cols.begin(),
                                            part_cols.begin() + part_keys);
        std::vector<row::SortOptions> part_only(part_keys);
        int64_t start = 0;
        const int64_t n = merged->num_rows();
        while (start < n) {
          int64_t end = start + 1;
          while (end < n &&
                 (part_keys == 0 ||
                  row::CompareRows(part_key_cols, order[start], part_key_cols,
                                   order[end], part_only) == 0)) {
            ++end;
          }
          logical::WindowPartition wp;
          wp.num_rows = end - start;
          std::vector<int64_t> rows(order.begin() + start, order.begin() + end);
          for (const auto& a : args) {
            FUSION_ASSIGN_OR_RAISE(auto g, compute::Take(*a, rows));
            wp.args.push_back(std::move(g));
          }
          wp.peer_group.resize(wp.num_rows);
          int64_t group = 0;
          for (int64_t i = 0; i < wp.num_rows; ++i) {
            if (i > 0 && row::CompareRows(part_cols, order[start + i - 1], part_cols,
                                          order[start + i], opts) != 0) {
              ++group;
            }
            wp.peer_group[i] = group;
          }
          if (w->window_function->uses_frame) {
            // TIE only needs running (prefix) frames for the benchmarks.
            wp.frame_start.assign(wp.num_rows, 0);
            wp.frame_end.resize(wp.num_rows);
            for (int64_t i = 0; i < wp.num_rows; ++i) wp.frame_end[i] = i + 1;
          }
          FUSION_ASSIGN_OR_RAISE(auto result, w->window_function->eval(wp));
          int pi = static_cast<int>(outputs.size());
          outputs.push_back(std::move(result));
          for (int64_t i = 0; i < wp.num_rows; ++i) {
            scatter.emplace_back(order[start + i], std::make_pair(pi, i));
          }
          start = end;
        }
        std::sort(scatter.begin(), scatter.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [row, loc] : scatter) {
          (void)row;
          builder->AppendFrom(*outputs[loc.first], loc.second);
        }
        FUSION_ASSIGN_OR_RAISE(auto col, builder->Finish());
        extra.push_back(std::move(col));
      }
      std::vector<ArrayPtr> columns = merged->columns();
      for (auto& c : extra) columns.push_back(std::move(c));
      Table out;
      out.schema = plan->schema().schema();
      out.num_rows = merged->num_rows();
      out.batches.push_back(std::make_shared<RecordBatch>(out.schema, out.num_rows,
                                                          std::move(columns)));
      return out;
    }
    default:
      return Status::NotImplemented(std::string("TIE: unsupported plan node ") +
                                    logical::PlanKindName(plan->kind));
  }
}

Result<TieEngine::Table> TieEngine::Scan(const PlanPtr& plan) {
  Table out;
  out.schema = plan->schema().schema();
  // TIE's CSV path: its own parser (paper §8.1's H2O-G discussion).
  if (auto* csv = dynamic_cast<catalog::CsvTable*>(plan->provider.get())) {
    std::vector<int> projection =
        catalog::ResolveProjection(*csv->schema(), plan->scan_projection);
    for (const auto& path : csv->paths()) {
      FUSION_ASSIGN_OR_RAISE(auto batches, ScanCsvFile(path, csv->schema()));
      for (auto& b : batches) {
        FUSION_ASSIGN_OR_RAISE(b, b->Project(projection));
        out.num_rows += b->num_rows();
        out.batches.push_back(std::move(b));
      }
    }
    return out;
  }
  // Columnar scans: request WITHOUT predicates — whole row groups are
  // decoded and filters run afterwards (no pruning, no late
  // materialization).
  catalog::ScanRequest request;
  request.projection = plan->scan_projection;
  request.target_partitions = 1;
  FUSION_ASSIGN_OR_RAISE(auto iterators, plan->provider->Scan(request));
  for (auto& it : iterators) {
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(auto batch, it->Next());
      if (batch == nullptr) break;
      if (batch->num_rows() == 0) continue;
      // TIE is the decode-eagerly baseline: densify at the handoff so the
      // tuple-at-a-time interpreter never sees encoded columns.
      batch = compute::EnsureDenseBatch(batch);
      out.num_rows += batch->num_rows();
      out.batches.push_back(std::move(batch));
    }
  }
  return out;
}

Result<std::vector<RecordBatchPtr>> TieEngine::ScanCsvFile(
    const std::string& path, const SchemaPtr& schema) {
  // Deliberately simple: read the whole file, split lines with find(),
  // copy fields into std::string, parse with stoll/stod. Correct but
  // slower than the vectorized reader — TIE's CSV profile.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("TIE csv: cannot open " + path);
  std::string content;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    content.append(chunk, n);
  }
  std::fclose(f);

  std::vector<RecordBatchPtr> out;
  std::vector<std::unique_ptr<ArrayBuilder>> builders;
  auto reset_builders = [&]() -> Status {
    builders.clear();
    for (const Field& field : schema->fields()) {
      FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(field.type()));
      builders.push_back(std::move(b));
    }
    return Status::OK();
  };
  FUSION_RETURN_NOT_OK(reset_builders());
  int64_t rows = 0;

  size_t pos = 0;
  bool header = true;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    // Field-by-field split with copies (the slow part, intentionally).
    std::vector<std::string> fields;
    size_t fpos = 0;
    for (;;) {
      size_t comma = line.find(',', fpos);
      if (comma == std::string::npos) {
        fields.push_back(line.substr(fpos));
        break;
      }
      fields.push_back(line.substr(fpos, comma - fpos));
      fpos = comma + 1;
    }
    for (int c = 0; c < schema->num_fields(); ++c) {
      const std::string& v =
          c < static_cast<int>(fields.size()) ? fields[c] : std::string();
      if (v.empty()) {
        builders[c]->AppendNull();
        continue;
      }
      switch (schema->field(c).type().id()) {
        case TypeId::kInt64:
          static_cast<NumericBuilder<int64_t>*>(builders[c].get())
              ->Append(std::stoll(v));
          break;
        case TypeId::kInt32:
          static_cast<NumericBuilder<int32_t>*>(builders[c].get())
              ->Append(static_cast<int32_t>(std::stol(v)));
          break;
        case TypeId::kFloat64:
          static_cast<Float64Builder*>(builders[c].get())->Append(std::stod(v));
          break;
        case TypeId::kBool:
          static_cast<BooleanBuilder*>(builders[c].get())
              ->Append(v == "true" || v == "TRUE" || v == "1");
          break;
        case TypeId::kDecimal128: {
          const DataType& dt = schema->field(c).type();
          Decimal128 dv;
          if (DecimalFromString(v, dt.precision(), dt.scale(), &dv)) {
            static_cast<Decimal128Builder*>(builders[c].get())->Append(dv);
          } else {
            // Same convention as the cast kernel: unparseable -> null.
            builders[c]->AppendNull();
          }
          break;
        }
        default:
          static_cast<StringBuilder*>(builders[c].get())->Append(v);
      }
    }
    if (++rows >= options_.batch_rows) {
      std::vector<ArrayPtr> columns;
      for (auto& b : builders) {
        FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
        columns.push_back(std::move(arr));
      }
      out.push_back(std::make_shared<RecordBatch>(schema, rows, std::move(columns)));
      FUSION_RETURN_NOT_OK(reset_builders());
      rows = 0;
    }
  }
  if (rows > 0) {
    std::vector<ArrayPtr> columns;
    for (auto& b : builders) {
      FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
      columns.push_back(std::move(arr));
    }
    out.push_back(std::make_shared<RecordBatch>(schema, rows, std::move(columns)));
  }
  return out;
}

Result<TieEngine::Table> TieEngine::Filter(const PlanPtr& plan, Table input) {
  FUSION_ASSIGN_OR_RAISE(auto resolved, ResolveSubqueries(plan->predicate));
  FUSION_ASSIGN_OR_RAISE(auto predicate,
                         CreatePhysicalExpr(resolved,
                                            plan->child(0)->schema()));
  Table out;
  out.schema = input.schema;
  for (const auto& batch : input.batches) {
    FUSION_ASSIGN_OR_RAISE(auto mask,
                           physical::EvaluatePredicateMask(*predicate, *batch));
    const auto& bm = checked_cast<BooleanArray>(*mask);
    if (bm.TrueCount() == 0) continue;
    FUSION_ASSIGN_OR_RAISE(auto filtered, compute::FilterBatch(*batch, bm));
    out.num_rows += filtered->num_rows();
    out.batches.push_back(std::move(filtered));
  }
  return out;
}

Result<TieEngine::Table> TieEngine::Project(const PlanPtr& plan, Table input) {
  std::vector<PhysicalExprPtr> exprs;
  for (const auto& e : plan->exprs) {
    FUSION_ASSIGN_OR_RAISE(auto resolved, ResolveSubqueries(e));
    FUSION_ASSIGN_OR_RAISE(auto pe,
                           CreatePhysicalExpr(resolved, plan->child(0)->schema()));
    exprs.push_back(std::move(pe));
  }
  Table out;
  out.schema = plan->schema().schema();
  for (const auto& batch : input.batches) {
    FUSION_ASSIGN_OR_RAISE(auto columns, EvaluateToArrays(exprs, *batch));
    out.num_rows += batch->num_rows();
    out.batches.push_back(std::make_shared<RecordBatch>(out.schema,
                                                        batch->num_rows(),
                                                        std::move(columns)));
  }
  return out;
}

Result<TieEngine::Table> TieEngine::Aggregate(const PlanPtr& plan, Table input) {
  const logical::PlanSchema& in_schema = plan->child(0)->schema();
  FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(input.schema, input.batches));
  const int64_t n = merged->num_rows();

  // Group keys.
  std::vector<PhysicalExprPtr> group_exprs;
  for (const auto& g : plan->group_exprs) {
    FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(g, in_schema));
    group_exprs.push_back(std::move(pe));
  }
  FUSION_ASSIGN_OR_RAISE(auto keys, EvaluateToArrays(group_exprs, *merged));

  std::vector<uint32_t> group_ids(static_cast<size_t>(n));
  GroupTable table(std::min<int64_t>(n, 1 << 20));
  if (keys.empty()) {
    std::fill(group_ids.begin(), group_ids.end(), 0);
  } else {
    std::vector<uint64_t> hashes;
    FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
    for (int64_t r = 0; r < n; ++r) {
      group_ids[r] = table.Lookup(hashes[r], r, keys);
    }
  }
  int64_t num_groups = keys.empty() ? 1 : table.num_groups();
  if (n == 0 && keys.empty()) num_groups = 1;

  // Accumulators (shared function library, TIE-owned grouping).
  std::vector<ArrayPtr> agg_columns;
  for (const auto& a : plan->aggr_exprs) {
    const ExprPtr& agg = logical::Unalias(a);
    std::vector<PhysicalExprPtr> arg_exprs;
    std::vector<DataType> arg_types;
    for (const auto& arg : agg->children) {
      FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(arg, in_schema));
      arg_types.push_back(pe->type());
      arg_exprs.push_back(std::move(pe));
    }
    FUSION_ASSIGN_OR_RAISE(auto acc, agg->aggregate_function->create(arg_types));
    acc->Resize(num_groups);
    FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(arg_exprs, *merged));
    std::vector<uint8_t> filter_mask;
    if (agg->filter != nullptr) {
      FUSION_ASSIGN_OR_RAISE(auto fe, CreatePhysicalExpr(agg->filter, in_schema));
      FUSION_ASSIGN_OR_RAISE(auto mask, physical::EvaluatePredicateMask(*fe, *merged));
      const auto& bm = checked_cast<BooleanArray>(*mask);
      filter_mask.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        filter_mask[i] = bm.IsValid(i) && bm.Value(i) ? 1 : 0;
      }
    }
    FUSION_RETURN_NOT_OK(acc->Update(args, group_ids,
                                     filter_mask.empty() ? nullptr
                                                         : filter_mask.data()));
    FUSION_ASSIGN_OR_RAISE(auto col, acc->Finish());
    agg_columns.push_back(std::move(col));
  }

  // Group key output columns: gather the first row of each group.
  std::vector<ArrayPtr> columns;
  if (!keys.empty()) {
    for (const auto& k : keys) {
      FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*k, table.first_rows()));
      columns.push_back(std::move(col));
    }
  }
  for (auto& c : agg_columns) columns.push_back(std::move(c));

  Table out;
  out.schema = plan->schema().schema();
  out.num_rows = num_groups;
  auto big = std::make_shared<RecordBatch>(out.schema, num_groups,
                                           std::move(columns));
  out.batches = SliceBatch(big, options_.batch_rows);
  return out;
}

Result<TieEngine::Table> TieEngine::Sort(const PlanPtr& plan, Table input) {
  FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(input.schema, input.batches));
  const logical::PlanSchema& in_schema = plan->child(0)->schema();
  std::vector<ArrayPtr> key_cols;
  std::vector<row::SortOptions> opts;
  for (const auto& se : plan->sort_exprs) {
    FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(se.expr, in_schema));
    FUSION_ASSIGN_OR_RAISE(auto v, pe->Evaluate(*merged));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(merged->num_rows()));
    key_cols.push_back(std::move(arr));
    opts.push_back(se.options);
  }
  std::vector<int64_t> indices(static_cast<size_t>(merged->num_rows()));
  std::iota(indices.begin(), indices.end(), 0);
  // Direct comparator sort (no normalized keys) — TIE's sort profile.
  std::stable_sort(indices.begin(), indices.end(), [&](int64_t a, int64_t b) {
    return row::CompareRows(key_cols, a, key_cols, b, opts) < 0;
  });
  if (plan->fetch >= 0 && static_cast<int64_t>(indices.size()) > plan->fetch) {
    indices.resize(static_cast<size_t>(plan->fetch));
  }
  FUSION_ASSIGN_OR_RAISE(auto sorted, compute::TakeBatch(*merged, indices));
  Table out;
  out.schema = input.schema;
  out.num_rows = sorted->num_rows();
  out.batches = SliceBatch(sorted, options_.batch_rows);
  return out;
}

Result<TieEngine::Table> TieEngine::Limit(const PlanPtr& plan, Table input) {
  Table out;
  out.schema = input.schema;
  int64_t skip = plan->skip;
  int64_t fetch = plan->fetch < 0 ? INT64_MAX : plan->fetch;
  for (auto& batch : input.batches) {
    if (fetch <= 0) break;
    RecordBatchPtr b = batch;
    if (skip > 0) {
      if (b->num_rows() <= skip) {
        skip -= b->num_rows();
        continue;
      }
      b = b->Slice(skip, b->num_rows() - skip);
      skip = 0;
    }
    if (b->num_rows() > fetch) b = b->Slice(0, fetch);
    fetch -= b->num_rows();
    out.num_rows += b->num_rows();
    out.batches.push_back(std::move(b));
  }
  return out;
}

Result<TieEngine::Table> TieEngine::Join(const PlanPtr& plan, Table left,
                                         Table right) {
  FUSION_ASSIGN_OR_RAISE(auto lbatch, ConcatenateBatches(left.schema, left.batches));
  FUSION_ASSIGN_OR_RAISE(auto rbatch,
                         ConcatenateBatches(right.schema, right.batches));
  const logical::PlanSchema& lschema = plan->child(0)->schema();
  const logical::PlanSchema& rschema = plan->child(1)->schema();

  if (plan->join_on.empty()) {
    if (plan->join_kind != JoinKind::kCross || plan->join_filter != nullptr) {
      return Status::NotImplemented("TIE: non-equi joins are not supported");
    }
    // Cross product.
    std::vector<int64_t> li, ri;
    for (int64_t i = 0; i < lbatch->num_rows(); ++i) {
      for (int64_t j = 0; j < rbatch->num_rows(); ++j) {
        li.push_back(i);
        ri.push_back(j);
      }
    }
    std::vector<ArrayPtr> columns;
    for (int c = 0; c < lbatch->num_columns(); ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*lbatch->column(c), li));
      columns.push_back(std::move(col));
    }
    for (int c = 0; c < rbatch->num_columns(); ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*rbatch->column(c), ri));
      columns.push_back(std::move(col));
    }
    Table out;
    out.schema = plan->schema().schema();
    out.num_rows = static_cast<int64_t>(li.size());
    out.batches.push_back(std::make_shared<RecordBatch>(out.schema, out.num_rows,
                                                        std::move(columns)));
    return out;
  }

  // Hash join; build on the smaller side (known exactly).
  const bool build_left = lbatch->num_rows() <= rbatch->num_rows();
  const RecordBatchPtr& build = build_left ? lbatch : rbatch;
  const RecordBatchPtr& probe = build_left ? rbatch : lbatch;

  std::vector<PhysicalExprPtr> build_keys_e, probe_keys_e;
  for (const auto& [l, r] : plan->join_on) {
    FUSION_ASSIGN_OR_RAISE(auto lk, CreatePhysicalExpr(l, lschema));
    FUSION_ASSIGN_OR_RAISE(auto rk, CreatePhysicalExpr(r, rschema));
    if (build_left) {
      build_keys_e.push_back(std::move(lk));
      probe_keys_e.push_back(std::move(rk));
    } else {
      build_keys_e.push_back(std::move(rk));
      probe_keys_e.push_back(std::move(lk));
    }
  }
  FUSION_ASSIGN_OR_RAISE(auto build_keys, EvaluateToArrays(build_keys_e, *build));
  FUSION_ASSIGN_OR_RAISE(auto probe_keys, EvaluateToArrays(probe_keys_e, *probe));

  std::vector<uint64_t> bh, ph;
  FUSION_RETURN_NOT_OK(compute::HashColumns(build_keys, &bh));
  FUSION_RETURN_NOT_OK(compute::HashColumns(probe_keys, &ph));
  std::unordered_multimap<uint64_t, int64_t> ht;
  ht.reserve(static_cast<size_t>(build->num_rows()));
  for (int64_t r = 0; r < build->num_rows(); ++r) {
    bool null_key = false;
    for (const auto& k : build_keys) {
      if (k->IsNull(r)) {
        null_key = true;
        break;
      }
    }
    if (!null_key) ht.emplace(bh[r], r);
  }
  std::vector<int64_t> bi, pi;
  std::vector<uint8_t> build_matched(static_cast<size_t>(build->num_rows()), 0);
  std::vector<uint8_t> probe_matched(static_cast<size_t>(probe->num_rows()), 0);
  for (int64_t r = 0; r < probe->num_rows(); ++r) {
    bool null_key = false;
    for (const auto& k : probe_keys) {
      if (k->IsNull(r)) {
        null_key = true;
        break;
      }
    }
    if (null_key) continue;
    auto range = ht.equal_range(ph[r]);
    for (auto it = range.first; it != range.second; ++it) {
      bool equal = true;
      for (size_t k = 0; k < build_keys.size(); ++k) {
        if (!ArrayElementsEqual(*build_keys[k], it->second, *probe_keys[k], r)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        bi.push_back(it->second);
        pi.push_back(r);
        build_matched[it->second] = 1;
        probe_matched[r] = 1;
      }
    }
  }

  // Residual filter.
  JoinKind kind = plan->join_kind;
  auto assemble = [&](const std::vector<int64_t>& left_idx,
                      const std::vector<int64_t>& right_idx,
                      const SchemaPtr& schema) -> Result<RecordBatchPtr> {
    std::vector<ArrayPtr> columns;
    for (int c = 0; c < lbatch->num_columns(); ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*lbatch->column(c), left_idx));
      columns.push_back(std::move(col));
    }
    for (int c = 0; c < rbatch->num_columns(); ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*rbatch->column(c), right_idx));
      columns.push_back(std::move(col));
    }
    return std::make_shared<RecordBatch>(schema,
                                         static_cast<int64_t>(left_idx.size()),
                                         std::move(columns));
  };
  // Orient pairs back to (left, right).
  std::vector<int64_t> li, ri;
  if (build_left) {
    li = std::move(bi);
    ri = std::move(pi);
  } else {
    li = std::move(pi);
    ri = std::move(bi);
  }
  std::vector<uint8_t>& left_matched = build_left ? build_matched : probe_matched;
  std::vector<uint8_t>& right_matched = build_left ? probe_matched : build_matched;

  if (plan->join_filter != nullptr) {
    logical::PlanSchema combined = lschema.Concat(rschema);
    FUSION_ASSIGN_OR_RAISE(auto fe, CreatePhysicalExpr(plan->join_filter, combined));
    std::vector<Field> fields = lbatch->schema()->fields();
    for (const auto& f : rbatch->schema()->fields()) fields.push_back(f);
    auto scratch_schema = std::make_shared<Schema>(std::move(fields));
    FUSION_ASSIGN_OR_RAISE(auto candidates, assemble(li, ri, scratch_schema));
    FUSION_ASSIGN_OR_RAISE(auto mask,
                           physical::EvaluatePredicateMask(*fe, *candidates));
    const auto& bm = checked_cast<BooleanArray>(*mask);
    std::vector<int64_t> kl, kr;
    std::fill(left_matched.begin(), left_matched.end(), 0);
    std::fill(right_matched.begin(), right_matched.end(), 0);
    for (int64_t i = 0; i < bm.length(); ++i) {
      if (bm.IsValid(i) && bm.Value(i)) {
        kl.push_back(li[i]);
        kr.push_back(ri[i]);
        left_matched[li[i]] = 1;
        right_matched[ri[i]] = 1;
      }
    }
    li = std::move(kl);
    ri = std::move(kr);
  }

  Table out;
  out.schema = plan->schema().schema();
  switch (kind) {
    case JoinKind::kInner:
      break;
    case JoinKind::kLeft:
      for (int64_t i = 0; i < lbatch->num_rows(); ++i) {
        if (!left_matched[i]) {
          li.push_back(i);
          ri.push_back(-1);
        }
      }
      break;
    case JoinKind::kRight:
      for (int64_t j = 0; j < rbatch->num_rows(); ++j) {
        if (!right_matched[j]) {
          li.push_back(-1);
          ri.push_back(j);
        }
      }
      break;
    case JoinKind::kFull:
      for (int64_t i = 0; i < lbatch->num_rows(); ++i) {
        if (!left_matched[i]) {
          li.push_back(i);
          ri.push_back(-1);
        }
      }
      for (int64_t j = 0; j < rbatch->num_rows(); ++j) {
        if (!right_matched[j]) {
          li.push_back(-1);
          ri.push_back(j);
        }
      }
      break;
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti: {
      const bool want = kind == JoinKind::kLeftSemi;
      std::vector<int64_t> keep;
      for (int64_t i = 0; i < lbatch->num_rows(); ++i) {
        if ((left_matched[i] != 0) == want) keep.push_back(i);
      }
      FUSION_ASSIGN_OR_RAISE(auto batch, compute::TakeBatch(*lbatch, keep));
      out.num_rows = batch->num_rows();
      out.batches.push_back(std::make_shared<RecordBatch>(out.schema, out.num_rows,
                                                          batch->columns()));
      return out;
    }
    default:
      return Status::NotImplemented("TIE: unsupported join kind");
  }
  FUSION_ASSIGN_OR_RAISE(auto joined, assemble(li, ri, out.schema));
  out.num_rows = joined->num_rows();
  out.batches = SliceBatch(joined, options_.batch_rows);
  return out;
}

Result<TieEngine::Table> TieEngine::Distinct(Table input) {
  FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(input.schema, input.batches));
  const int64_t n = merged->num_rows();
  std::vector<ArrayPtr> keys = merged->columns();
  GroupTable table(std::min<int64_t>(n, 1 << 20));
  if (!keys.empty()) {
    std::vector<uint64_t> hashes;
    FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
    for (int64_t r = 0; r < n; ++r) {
      table.Lookup(hashes[r], r, keys);
    }
  }
  FUSION_ASSIGN_OR_RAISE(auto dedup, compute::TakeBatch(*merged, table.first_rows()));
  Table out;
  out.schema = input.schema;
  out.num_rows = dedup->num_rows();
  out.batches = SliceBatch(dedup, options_.batch_rows);
  return out;
}

}  // namespace baseline
}  // namespace fusion
