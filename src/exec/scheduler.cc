#include "exec/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace fusion {
namespace exec {

namespace internal {

/// Per-task control block. The state machine is what makes Waker safe
/// from any thread at any time:
///
///   kQueued   in a group's ready deque, waiting for a thread
///   kRunning  being polled
///   kParked   returned kParked; waiting for a Wake()
///   kNotified Wake() arrived while kRunning; re-enqueue instead of park
///   kDone     finished; all further wakes are no-ops
struct TaskCtl {
  enum State { kQueued, kRunning, kParked, kNotified, kDone };

  std::atomic<int> state{kQueued};
  std::function<TaskStatus(const Waker&)> poll;
  std::shared_ptr<TaskGroup> group;
};

}  // namespace internal

using internal::TaskCtl;
using internal::TaskCtlPtr;

// ---------------------------------------------------------------------------
// Waker

void Waker::Wake() const {
  if (ctl_ == nullptr) return;
  int state = ctl_->state.load(std::memory_order_acquire);
  for (;;) {
    switch (state) {
      case TaskCtl::kParked:
        // Parked -> ready. The acquire CAS pairs with the parker's
        // release CAS so the next runner sees the task's state.
        if (ctl_->state.compare_exchange_weak(state, TaskCtl::kQueued,
                                              std::memory_order_acq_rel)) {
          ctl_->group->scheduler()->EnqueueReady(ctl_);
          return;
        }
        break;  // re-examine `state`
      case TaskCtl::kRunning:
        // The task is mid-poll; flag the wake so the runner re-enqueues
        // instead of parking (the edge may have fired between the
        // task's registration and its kParked return).
        if (ctl_->state.compare_exchange_weak(state, TaskCtl::kNotified,
                                              std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        // kQueued / kNotified: a wake is already pending. kDone: no-op.
        return;
    }
  }
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::~TaskGroup() {
  Status st = Finish();
  (void)st;  // errors were already delivered through the query's streams
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  auto self = shared_from_this();
  SpawnResumable([self, fn = std::move(fn)](const Waker&) {
    self->RecordStatus(fn());
    return TaskStatus::kDone;
  });
}

void TaskGroup::SpawnResumable(std::function<TaskStatus(const Waker&)> fn) {
  auto ctl = std::make_shared<TaskCtl>();
  ctl->poll = std::move(fn);
  ctl->group = shared_from_this();
  tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  scheduler_->total_tasks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    ++outstanding_;
  }
  scheduler_->EnqueueReady(ctl);
}

namespace {
/// Shared completion state for one RunAll call.
struct RunAllState {
  std::atomic<int64_t> remaining;
  std::mutex mu;
  Status first_error;

  explicit RunAllState(int64_t n) : remaining(n) {}

  void Record(const Status& st) {
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  }
};
}  // namespace

Status TaskGroup::RunAll(std::vector<std::function<Status()>> tasks) {
  if (tasks.empty()) return Status::OK();
  auto state = std::make_shared<RunAllState>(static_cast<int64_t>(tasks.size()));
  auto self = shared_from_this();
  for (auto& task : tasks) {
    SpawnResumable([self, state, fn = std::move(task)](const Waker&) {
      Status st = fn();
      self->RecordStatus(st);
      state->Record(st);
      // release: the caller's acquire load of `remaining` below must see
      // everything the task wrote (e.g. its slot of a results vector).
      state->remaining.fetch_sub(1, std::memory_order_release);
      return TaskStatus::kDone;
    });
  }
  // Lend this thread to the group until all tasks settle. Even on error
  // we wait for every task: callers pass closures that reference stack
  // storage.
  for (;;) {
    uint64_t epoch = progress_epoch();
    if (state->remaining.load(std::memory_order_acquire) == 0) break;
    {
      std::lock_guard<std::mutex> lock(scheduler_->mu_);
      // Scheduler teardown discards queued tasks without running them,
      // so their `remaining` decrements never come. Once none of this
      // group's tasks is left running either, stop waiting. Dropped
      // tasks never ran, so the stack storage callers' closures
      // reference was never handed out.
      if (scheduler_->shutdown_ && outstanding_ == 0) {
        return Status::Cancelled("scheduler shut down");
      }
    }
    HelpOrWait(epoch, nullptr);
  }
  std::lock_guard<std::mutex> lock(state->mu);
  return state->first_error;
}

void TaskGroup::AddUnwindHook(std::function<void()> hook) {
  bool run_now = false;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    if (unwound_) {
      run_now = true;  // group already unwinding; fire immediately
    } else {
      unwind_hooks_.push_back(std::move(hook));
    }
  }
  if (run_now) hook();
}

Status TaskGroup::Finish() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    unwound_ = true;
    hooks.swap(unwind_hooks_);
  }
  for (auto& hook : hooks) hook();
  for (;;) {
    uint64_t epoch = progress_epoch();
    {
      std::lock_guard<std::mutex> lock(scheduler_->mu_);
      if (outstanding_ == 0) return first_error_;
    }
    HelpOrWait(epoch, nullptr);
  }
}

bool TaskGroup::RunOneReadyTask() {
  TaskCtlPtr ctl;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    if (ready_.empty()) return false;
    ctl = std::move(ready_.front());
    ready_.pop_front();
    --scheduler_->ready_count_;
  }
  scheduler_->RunTask(std::move(ctl));
  return true;
}

uint64_t TaskGroup::progress_epoch() const {
  return scheduler_->epoch_.load(std::memory_order_acquire);
}

bool TaskGroup::HelpOrWait(uint64_t epoch, const CancellationToken* token) {
  if (RunOneReadyTask()) return true;
  scheduler_->WaitEpoch(epoch, token);
  return false;
}

void TaskGroup::NotifyProgress() { scheduler_->BumpEpoch(); }

void TaskGroup::RecordStatus(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(scheduler_->mu_);
  if (first_error_.ok()) first_error_ = st;
}

void TaskGroup::TaskFinished() {
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    --outstanding_;
  }
  scheduler_->BumpEpoch();
}

// ---------------------------------------------------------------------------
// QueryScheduler

QueryScheduler::QueryScheduler(int num_workers) {
  num_workers = std::max(1, num_workers);
  peak_threads_.store(num_workers, std::memory_order_relaxed);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Drop queued-but-never-run closures so task->queue->waker->task
    // reference cycles cannot outlive the scheduler. Each discarded
    // task must also settle its group's accounting: a collector blocked
    // in Finish()/RunAll waits for outstanding_ to reach zero and would
    // otherwise hang forever.
    for (auto& weak : run_queue_) {
      if (auto group = weak.lock()) {
        if (!group->ready_.empty() && group->first_error_.ok()) {
          group->first_error_ = Status::Cancelled("scheduler shut down");
        }
        for (auto& ctl : group->ready_) {
          ctl->state.store(TaskCtl::kDone, std::memory_order_release);
          ctl->poll = nullptr;
          --group->outstanding_;
        }
        group->ready_.clear();
        group->in_run_queue_ = false;
      }
    }
    run_queue_.clear();
    ready_count_ = 0;
  }
  cv_work_.notify_all();
  BumpEpoch();  // wake Finish()/RunAll helpers sleeping in WaitEpoch
  for (auto& worker : workers_) worker.join();
}

TaskGroupPtr QueryScheduler::MakeGroup() {
  // make_shared needs a public ctor; use new with the private one.
  return TaskGroupPtr(new TaskGroup(this));
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    TaskCtlPtr ctl;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return shutdown_ || ready_count_ > 0; });
      if (shutdown_) return;
      // Round-robin across groups: take the front group's next ready
      // task, then rotate the group to the back if it has more. One
      // group with a deep backlog interleaves with everyone else.
      while (!run_queue_.empty()) {
        auto group = run_queue_.front().lock();
        run_queue_.pop_front();
        if (group == nullptr) continue;  // query finished; stale entry
        if (group->ready_.empty()) {
          group->in_run_queue_ = false;
          continue;
        }
        ctl = std::move(group->ready_.front());
        group->ready_.pop_front();
        --ready_count_;
        if (!group->ready_.empty()) {
          run_queue_.push_back(group);
        } else {
          group->in_run_queue_ = false;
        }
        break;
      }
    }
    if (ctl != nullptr) RunTask(std::move(ctl));
  }
}

void QueryScheduler::RunTask(TaskCtlPtr ctl) {
  ctl->state.store(TaskCtl::kRunning, std::memory_order_release);
  TaskStatus result = ctl->poll(Waker(ctl));
  if (result == TaskStatus::kDone) {
    ctl->state.store(TaskCtl::kDone, std::memory_order_release);
    auto group = ctl->group;
    ctl->poll = nullptr;  // drop captures (queues, streams) promptly
    ctl->group = nullptr;
    ctl.reset();
    group->TaskFinished();
    return;
  }
  // kParked: the task registered its waker before returning. If a wake
  // already arrived (kNotified), it must not be lost — re-enqueue now.
  int expected = TaskCtl::kRunning;
  if (!ctl->state.compare_exchange_strong(expected, TaskCtl::kParked,
                                          std::memory_order_acq_rel)) {
    // expected == kNotified
    ctl->state.store(TaskCtl::kQueued, std::memory_order_release);
    EnqueueReady(ctl);
  }
}

void QueryScheduler::EnqueueReady(const TaskCtlPtr& ctl) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TaskGroup* group = ctl->group.get();
    if (shutdown_) {
      // Late wake during teardown; mark done so the cycle breaks, and
      // settle the group's accounting so a blocked Finish()/RunAll
      // caller observes completion (the epoch bump below wakes it).
      ctl->state.store(TaskCtl::kDone, std::memory_order_release);
      --group->outstanding_;
      if (group->first_error_.ok()) {
        group->first_error_ = Status::Cancelled("scheduler shut down");
      }
    } else {
      group->ready_.push_back(ctl);
      ++ready_count_;
      int64_t peak = peak_ready_tasks_.load(std::memory_order_relaxed);
      while (ready_count_ > peak &&
             !peak_ready_tasks_.compare_exchange_weak(
                 peak, ready_count_, std::memory_order_relaxed)) {
      }
      if (!group->in_run_queue_) {
        group->in_run_queue_ = true;
        run_queue_.push_back(group->weak_from_this());
      }
    }
  }
  cv_work_.notify_one();
  BumpEpoch();  // helpers waiting in WaitEpoch may claim this task
}

void QueryScheduler::BumpEpoch() {
  // Dekker pair with WaitEpoch: bump-then-read-waiters here versus
  // register-waiter-then-read-epoch there. All four accesses must be
  // seq_cst — with weaker orders the model allows the bumper to read
  // waiters==0 while the waiter reads the stale epoch (lost wakeup).
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (epoch_waiters_.load(std::memory_order_seq_cst) > 0) {
    // Taking the mutex pairs with waiters: anyone who registered before
    // the bump is either about to re-check the epoch or inside wait().
    std::lock_guard<std::mutex> lock(epoch_mu_);
    cv_epoch_.notify_all();
  }
}

void QueryScheduler::WaitEpoch(uint64_t epoch, const CancellationToken* token) {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  epoch_waiters_.fetch_add(1, std::memory_order_seq_cst);
  while (epoch_.load(std::memory_order_seq_cst) == epoch) {
    if (token != nullptr && token->has_deadline()) {
      // Non-latching probe: latching fires listeners, which call
      // NotifyProgress -> BumpEpoch -> lock(epoch_mu_) — held here.
      if (token->CancelRequested()) break;
      if (cv_epoch_.wait_until(lock, token->deadline_time()) ==
          std::cv_status::timeout) {
        break;  // caller re-checks the token
      }
    } else {
      cv_epoch_.wait(lock);
    }
  }
  epoch_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

QueryScheduler* QueryScheduler::Default() {
  static QueryScheduler* scheduler = [] {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("FUSION_SCHEDULER_THREADS")) {
      int parsed = std::atoi(env);
      if (parsed > 0) n = parsed;
    }
    return new QueryScheduler(std::max(1, n));
  }();
  return scheduler;
}

}  // namespace exec
}  // namespace fusion
