#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>

#include "exec/memory_pool.h"

namespace fusion {
namespace exec {

namespace internal {

/// Per-task control block. The state machine is what makes Waker safe
/// from any thread at any time:
///
///   kQueued   in a group's ready deque, waiting for a thread
///   kRunning  being polled
///   kParked   returned kParked; waiting for a Wake()
///   kNotified Wake() arrived while kRunning; re-enqueue instead of park
///   kDone     finished; all further wakes are no-ops
struct TaskCtl {
  enum State { kQueued, kRunning, kParked, kNotified, kDone };

  std::atomic<int> state{kQueued};
  std::function<TaskStatus(const Waker&)> poll;
  std::shared_ptr<TaskGroup> group;
  /// Help generation of the spawn batch this task belongs to
  /// (invariant 4); always non-zero once spawned.
  uint64_t help_gen = 0;
};

/// Innermost help generation active on this thread's stack: non-zero
/// while the thread is inside a task's poll. RunOneReadyTask only runs
/// tasks with a strictly larger generation, so batch siblings — which
/// may wait on each other's shared-build claims — can never end up
/// suspended beneath one another on one stack.
thread_local uint64_t tl_active_help_gen = 0;

}  // namespace internal

using internal::TaskCtl;
using internal::TaskCtlPtr;

// ---------------------------------------------------------------------------
// Waker

void Waker::Wake() const {
  if (ctl_ == nullptr) return;
  int state = ctl_->state.load(std::memory_order_acquire);
  for (;;) {
    switch (state) {
      case TaskCtl::kParked:
        // Parked -> ready. The acquire CAS pairs with the parker's
        // release CAS so the next runner sees the task's state.
        if (ctl_->state.compare_exchange_weak(state, TaskCtl::kQueued,
                                              std::memory_order_acq_rel)) {
          ctl_->group->scheduler()->EnqueueReady(ctl_);
          return;
        }
        break;  // re-examine `state`
      case TaskCtl::kRunning:
        // The task is mid-poll; flag the wake so the runner re-enqueues
        // instead of parking (the edge may have fired between the
        // task's registration and its kParked return).
        if (ctl_->state.compare_exchange_weak(state, TaskCtl::kNotified,
                                              std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        // kQueued / kNotified: a wake is already pending. kDone: no-op.
        return;
    }
  }
}

// ---------------------------------------------------------------------------
// TaskGroup

TaskGroup::~TaskGroup() {
  Status st = Finish();
  (void)st;  // errors were already delivered through the query's streams
}

void TaskGroup::Spawn(std::function<Status()> fn, uint64_t help_gen) {
  auto self = shared_from_this();
  SpawnResumable(
      [self, fn = std::move(fn)](const Waker&) {
        self->RecordStatus(fn());
        return TaskStatus::kDone;
      },
      help_gen);
}

void TaskGroup::SpawnResumable(std::function<TaskStatus(const Waker&)> fn,
                               uint64_t help_gen) {
  auto ctl = std::make_shared<TaskCtl>();
  ctl->poll = std::move(fn);
  ctl->group = shared_from_this();
  ctl->help_gen = help_gen != 0 ? help_gen : NextHelpGen();
  tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
  scheduler_->total_tasks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    ++outstanding_;
  }
  scheduler_->EnqueueReady(ctl);
}

namespace {
/// Shared completion state for one RunAll call.
struct RunAllState {
  std::atomic<int64_t> remaining;
  std::mutex mu;
  Status first_error;

  explicit RunAllState(int64_t n) : remaining(n) {}

  void Record(const Status& st) {
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error.ok()) first_error = st;
    }
  }
};
}  // namespace

Status TaskGroup::RunAll(std::vector<std::function<Status()>> tasks) {
  if (tasks.empty()) return Status::OK();
  auto state = std::make_shared<RunAllState>(static_cast<int64_t>(tasks.size()));
  auto self = shared_from_this();
  // One shared generation: partition drivers claim shared build work
  // (partitioned aggregation inputs, join build mutexes) and wait on
  // each other's claims, so they must never nest on one stack.
  const uint64_t help_gen = NextHelpGen();
  for (auto& task : tasks) {
    SpawnResumable(
        [self, state, fn = std::move(task)](const Waker&) {
          Status st = fn();
          self->RecordStatus(st);
          state->Record(st);
          // release: the caller's acquire load of `remaining` below must
          // see everything the task wrote (e.g. its slot of a results
          // vector).
          state->remaining.fetch_sub(1, std::memory_order_release);
          return TaskStatus::kDone;
        },
        help_gen);
  }
  // Lend this thread to the group until all tasks settle. Even on error
  // we wait for every task: callers pass closures that reference stack
  // storage.
  for (;;) {
    uint64_t epoch = progress_epoch();
    if (state->remaining.load(std::memory_order_acquire) == 0) break;
    {
      std::lock_guard<std::mutex> lock(scheduler_->mu_);
      // Scheduler teardown discards queued tasks without running them,
      // so their `remaining` decrements never come. Once none of this
      // group's tasks is left running either, stop waiting. Dropped
      // tasks never ran, so the stack storage callers' closures
      // reference was never handed out.
      if (scheduler_->shutdown_ && outstanding_ == 0) {
        return Status::Cancelled("scheduler shut down");
      }
    }
    HelpOrWait(epoch, nullptr);
  }
  std::lock_guard<std::mutex> lock(state->mu);
  return state->first_error;
}

void TaskGroup::AddUnwindHook(std::function<void()> hook) {
  bool run_now = false;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    if (unwound_) {
      run_now = true;  // group already unwinding; fire immediately
    } else {
      unwind_hooks_.push_back(std::move(hook));
    }
  }
  if (run_now) hook();
}

Status TaskGroup::Finish() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    unwound_ = true;
    hooks.swap(unwind_hooks_);
  }
  for (auto& hook : hooks) hook();
  for (;;) {
    uint64_t epoch = progress_epoch();
    {
      std::lock_guard<std::mutex> lock(scheduler_->mu_);
      if (outstanding_ == 0) return first_error_;
    }
    HelpOrWait(epoch, nullptr);
  }
}

bool TaskGroup::RunOneReadyTask() {
  TaskCtlPtr ctl;
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    // Invariant 4: only run tasks from batches spawned after the
    // innermost batch active on this stack. Skipped siblings stay
    // queued for worker threads and untagged (client) helpers.
    const uint64_t active = internal::tl_active_help_gen;
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if (active != 0 && (*it)->help_gen <= active) continue;
      ctl = std::move(*it);
      ready_.erase(it);
      --scheduler_->ready_count_;
      break;
    }
  }
  if (ctl == nullptr) return false;
  scheduler_->RunTask(std::move(ctl));
  return true;
}

uint64_t TaskGroup::progress_epoch() const {
  return scheduler_->epoch_.load(std::memory_order_acquire);
}

bool TaskGroup::HelpOrWait(uint64_t epoch, const CancellationToken* token) {
  if (RunOneReadyTask()) return true;
  scheduler_->WaitEpoch(epoch, token);
  return false;
}

void TaskGroup::NotifyProgress() { scheduler_->BumpEpoch(); }

void TaskGroup::RecordStatus(const Status& st) {
  if (st.ok()) return;
  std::lock_guard<std::mutex> lock(scheduler_->mu_);
  if (first_error_.ok()) first_error_ = st;
}

void TaskGroup::TaskFinished() {
  {
    std::lock_guard<std::mutex> lock(scheduler_->mu_);
    --outstanding_;
  }
  scheduler_->BumpEpoch();
}

// ---------------------------------------------------------------------------
// QueryScheduler

QueryScheduler::QueryScheduler(int num_workers) {
  num_workers = std::max(1, num_workers);
  peak_threads_.store(num_workers, std::memory_order_relaxed);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryScheduler::~QueryScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Drop queued-but-never-run closures so task->queue->waker->task
    // reference cycles cannot outlive the scheduler. Each discarded
    // task must also settle its group's accounting: a collector blocked
    // in Finish()/RunAll waits for outstanding_ to reach zero and would
    // otherwise hang forever.
    for (auto& weak : run_queue_) {
      if (auto group = weak.lock()) {
        if (!group->ready_.empty() && group->first_error_.ok()) {
          group->first_error_ = Status::Cancelled("scheduler shut down");
        }
        for (auto& ctl : group->ready_) {
          ctl->state.store(TaskCtl::kDone, std::memory_order_release);
          ctl->poll = nullptr;
          --group->outstanding_;
        }
        group->ready_.clear();
        group->in_run_queue_ = false;
      }
    }
    run_queue_.clear();
    ready_count_ = 0;
  }
  cv_work_.notify_all();
  BumpEpoch();  // wake Finish()/RunAll helpers sleeping in WaitEpoch
  for (auto& worker : workers_) worker.join();
}

TaskGroupPtr QueryScheduler::MakeGroup() {
  // make_shared needs a public ctor; use new with the private one.
  return TaskGroupPtr(new TaskGroup(this));
}

uint64_t TaskGroup::NextHelpGen() {
  return scheduler_->help_gen_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void QueryScheduler::WorkerLoop() {
  for (;;) {
    TaskCtlPtr ctl;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return shutdown_ || ready_count_ > 0; });
      if (shutdown_) return;
      // Round-robin across groups: take the front group's next ready
      // task, then rotate the group to the back if it has more. One
      // group with a deep backlog interleaves with everyone else.
      while (!run_queue_.empty()) {
        auto group = run_queue_.front().lock();
        run_queue_.pop_front();
        if (group == nullptr) continue;  // query finished; stale entry
        if (group->ready_.empty()) {
          group->in_run_queue_ = false;
          continue;
        }
        ctl = std::move(group->ready_.front());
        group->ready_.pop_front();
        --ready_count_;
        if (!group->ready_.empty()) {
          run_queue_.push_back(group);
        } else {
          group->in_run_queue_ = false;
        }
        break;
      }
    }
    if (ctl != nullptr) RunTask(std::move(ctl));
  }
}

void QueryScheduler::RunTask(TaskCtlPtr ctl) {
  ctl->state.store(TaskCtl::kRunning, std::memory_order_release);
  // Track the innermost active help generation across the poll so
  // nested helping (RunOneReadyTask from inside this task) can refuse
  // batch siblings (invariant 4).
  const uint64_t prev_gen = internal::tl_active_help_gen;
  internal::tl_active_help_gen = ctl->help_gen;
  TaskStatus result = ctl->poll(Waker(ctl));
  internal::tl_active_help_gen = prev_gen;
  if (result == TaskStatus::kDone) {
    ctl->state.store(TaskCtl::kDone, std::memory_order_release);
    auto group = ctl->group;
    ctl->poll = nullptr;  // drop captures (queues, streams) promptly
    ctl->group = nullptr;
    ctl.reset();
    group->TaskFinished();
    return;
  }
  // kParked: the task registered its waker before returning. If a wake
  // already arrived (kNotified), it must not be lost — re-enqueue now.
  int expected = TaskCtl::kRunning;
  if (!ctl->state.compare_exchange_strong(expected, TaskCtl::kParked,
                                          std::memory_order_acq_rel)) {
    // expected == kNotified
    ctl->state.store(TaskCtl::kQueued, std::memory_order_release);
    EnqueueReady(ctl);
  }
}

void QueryScheduler::EnqueueReady(const TaskCtlPtr& ctl) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TaskGroup* group = ctl->group.get();
    if (shutdown_) {
      // Late wake during teardown; mark done so the cycle breaks, and
      // settle the group's accounting so a blocked Finish()/RunAll
      // caller observes completion (the epoch bump below wakes it).
      ctl->state.store(TaskCtl::kDone, std::memory_order_release);
      --group->outstanding_;
      if (group->first_error_.ok()) {
        group->first_error_ = Status::Cancelled("scheduler shut down");
      }
    } else {
      group->ready_.push_back(ctl);
      ++ready_count_;
      int64_t peak = peak_ready_tasks_.load(std::memory_order_relaxed);
      while (ready_count_ > peak &&
             !peak_ready_tasks_.compare_exchange_weak(
                 peak, ready_count_, std::memory_order_relaxed)) {
      }
      if (!group->in_run_queue_) {
        group->in_run_queue_ = true;
        run_queue_.push_back(group->weak_from_this());
      }
    }
  }
  cv_work_.notify_one();
  BumpEpoch();  // helpers waiting in WaitEpoch may claim this task
}

void QueryScheduler::BumpEpoch() {
  // Dekker pair with WaitEpoch: bump-then-read-waiters here versus
  // register-waiter-then-read-epoch there. All four accesses must be
  // seq_cst — with weaker orders the model allows the bumper to read
  // waiters==0 while the waiter reads the stale epoch (lost wakeup).
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (epoch_waiters_.load(std::memory_order_seq_cst) > 0) {
    // Taking the mutex pairs with waiters: anyone who registered before
    // the bump is either about to re-check the epoch or inside wait().
    std::lock_guard<std::mutex> lock(epoch_mu_);
    cv_epoch_.notify_all();
  }
}

void QueryScheduler::WaitEpoch(uint64_t epoch, const CancellationToken* token) {
  std::unique_lock<std::mutex> lock(epoch_mu_);
  epoch_waiters_.fetch_add(1, std::memory_order_seq_cst);
  while (epoch_.load(std::memory_order_seq_cst) == epoch) {
    if (token != nullptr && token->has_deadline()) {
      // Non-latching probe: latching fires listeners, which call
      // NotifyProgress -> BumpEpoch -> lock(epoch_mu_) — held here.
      if (token->CancelRequested()) break;
      if (cv_epoch_.wait_until(lock, token->deadline_time()) ==
          std::cv_status::timeout) {
        break;  // caller re-checks the token
      }
    } else {
      cv_epoch_.wait(lock);
    }
  }
  epoch_waiters_.fetch_sub(1, std::memory_order_seq_cst);
}

// ---------------------------------------------------------------------------
// Admission control

void AdmissionTicket::Release() {
  if (scheduler_ != nullptr) scheduler_->ReleaseAdmission();
  scheduler_ = nullptr;
}

Result<AdmissionTicket> QueryScheduler::Admit(const AdmissionLimits& limits,
                                              const MemoryPool* pool,
                                              const CancellationToken* token) {
  if (limits.max_concurrent <= 0) return AdmissionTicket();  // admission off

  std::unique_lock<std::mutex> lock(admission_mu_);
  auto can_run = [&] {
    if (admission_running_ >= limits.max_concurrent) return false;
    // Memory watermark: hold new queries while the pool is hot — but
    // never while nothing runs, or bytes held by long-lived consumers
    // (the buffer cache) could wedge admission with no one left to
    // free them.
    if (limits.memory_watermark > 0 && pool != nullptr &&
        admission_running_ > 0) {
      double limit = static_cast<double>(pool->limit());
      if (limit > 0 &&
          static_cast<double>(pool->bytes_allocated()) >=
              limits.memory_watermark * limit) {
        return false;
      }
    }
    return true;
  };

  bool queued = false;
  while (!can_run()) {
    if (!queued) {
      if (admission_queued_ >= std::max(0, limits.max_queued)) {
        admission_rejected_total_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourcesExhausted(
            "admission control: concurrency limit reached (running=" +
            std::to_string(admission_running_) +
            ", queued=" + std::to_string(admission_queued_) +
            ", max_concurrent=" + std::to_string(limits.max_concurrent) +
            ", max_queued=" + std::to_string(limits.max_queued) + ")");
      }
      queued = true;
      ++admission_queued_;
      admission_queued_total_.fetch_add(1, std::memory_order_relaxed);
    }
    // Non-latching probe under the lock; latch (and fire listeners)
    // only after releasing it.
    if (token != nullptr && token->CancelRequested()) {
      --admission_queued_;
      lock.unlock();
      return token->CheckStatus();
    }
    // Bounded slices: ticket releases notify, but deadlines and memory
    // watermark changes have no edge to signal, so re-check on a tick.
    admission_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  if (queued) --admission_queued_;
  ++admission_running_;
  admission_admitted_total_.fetch_add(1, std::memory_order_relaxed);
  return AdmissionTicket(this);
}

void QueryScheduler::ReleaseAdmission() {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    --admission_running_;
  }
  admission_cv_.notify_all();
}

int64_t QueryScheduler::admission_running() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_running_;
}

int64_t QueryScheduler::admission_queued() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_queued_;
}

QueryScheduler* QueryScheduler::Default() {
  static QueryScheduler* scheduler = [] {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("FUSION_SCHEDULER_THREADS")) {
      int parsed = std::atoi(env);
      if (parsed > 0) n = parsed;
    }
    return new QueryScheduler(std::max(1, n));
  }();
  return scheduler;
}

}  // namespace exec
}  // namespace fusion
