#ifndef FUSION_EXEC_SCHEDULER_H_
#define FUSION_EXEC_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/cancellation.h"

namespace fusion {
namespace exec {

/// \brief Shared query scheduler: one bounded worker pool per RuntimeEnv
/// onto which *all* parallel work of every query is submitted, replacing
/// the seed design's thread-per-exchange-partition model (paper §5.5's
/// shared Tokio runtime, rebuilt for blocking C++ streams).
///
/// Work is organised as tasks owned by a per-query TaskGroup. Workers
/// dispatch round-robin across groups with ready tasks, so one heavy
/// query cannot starve others of pool slots.
///
/// Invariants (the deadlock-avoidance and fairness contract):
///
///  1. No worker ever blocks on a queue edge while holding its thread
///     hostage. A *producer* that would block pushing into a full
///     exchange queue instead parks: it registers its Waker on the
///     queue's not_full edge and returns kParked, freeing the worker.
///     A *consumer* blocked popping an empty queue lends its thread to
///     its query's other ready tasks (TaskGroup::HelpOrWait) until the
///     queue has data, so the producers it waits for can run even on a
///     saturated — or single-worker — pool.
///
///  2. Every started query keeps at least one runnable task (the
///     fairness floor): the thread that called Collect drives its own
///     group's ready tasks while it waits (TaskGroup::RunAll), so a
///     query always makes progress even if every pool worker is busy
///     with other queries. Combined with (1) this makes the scheduler
///     deadlock-free regardless of pool size or concurrent query count.
///
///  3. TaskGroup::Finish() is the single unwind point: it closes the
///     query's registered exchange queues (unwind hooks), which wakes
///     parked producers and stops running ones, then joins every task.
///     Cancellation, deadline expiry, and early-LIMIT teardown all
///     funnel through it.
///
///  4. Help generations. Tasks spawned as one cooperative batch (the
///     partition drivers of a RunAll, the producers of one exchange)
///     share a help generation; a thread lending itself via
///     HelpOrWait/RunOneReadyTask only runs tasks of *strictly younger*
///     generations than the innermost generation active on its stack.
///     Batch siblings can wait on each other's shared-build claims
///     (e.g. partitioned aggregation's input claims, a join's build
///     mutex), so running a sibling nested would let a claim-holder be
///     suspended beneath the very task that waits for its claim — a
///     stack-shaped deadlock no wakeup can break. Children batches are
///     spawned later (larger generation) and never wait on their
///     ancestors' claims, so helping them keeps the single-worker
///     liveness guarantee of (1) and (2) intact.
class MemoryPool;
class QueryScheduler;
class TaskGroup;
using TaskGroupPtr = std::shared_ptr<TaskGroup>;
using QuerySchedulerPtr = std::shared_ptr<QueryScheduler>;

/// Admission-control bounds, derived from SessionConfig by the caller.
struct AdmissionLimits {
  /// Queries allowed to run concurrently; <= 0 turns admission off.
  int max_concurrent = 0;
  /// Queries allowed to wait behind the running set; arrivals beyond
  /// this fail immediately with ResourcesExhausted.
  int max_queued = 0;
  /// Fraction of the pool limit above which arrivals queue even when a
  /// concurrency slot is free (<= 0 disables the memory check).
  double memory_watermark = 0;
};

/// RAII admission slot returned by QueryScheduler::Admit; releasing it
/// (destruction) frees the slot and wakes one queued query. An
/// admission-off ticket is empty and releases nothing.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket() { Release(); }
  AdmissionTicket(AdmissionTicket&& other) noexcept : scheduler_(other.scheduler_) {
    other.scheduler_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      scheduler_ = other.scheduler_;
      other.scheduler_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return scheduler_ != nullptr; }
  void Release();

 private:
  friend class QueryScheduler;
  explicit AdmissionTicket(QueryScheduler* scheduler) : scheduler_(scheduler) {}
  QueryScheduler* scheduler_ = nullptr;
};

/// Outcome of polling a resumable task.
enum class TaskStatus {
  kDone,    ///< finished; the task is never polled again
  kParked,  ///< waiting on an edge; re-polled after its Waker fires
};

namespace internal {
struct TaskCtl;
using TaskCtlPtr = std::shared_ptr<TaskCtl>;
}  // namespace internal

/// \brief Handle that re-enqueues a parked task. A resumable task that
/// returns kParked must first have registered its Waker on the edge it
/// waits for (e.g. a BatchQueue's not_full edge). Wake() is safe from
/// any thread, any number of times: wakes coalesce, a wake racing the
/// task's own park lands as an immediate re-enqueue, and wakes after
/// completion are no-ops.
class Waker {
 public:
  Waker() = default;

  void Wake() const;
  bool valid() const { return ctl_ != nullptr; }

 private:
  friend class QueryScheduler;
  explicit Waker(internal::TaskCtlPtr ctl) : ctl_(std::move(ctl)) {}

  internal::TaskCtlPtr ctl_;
};

/// \brief All tasks of one query. Created per execution context
/// (SessionContext::MakeExecContext); exchange producers, top-level
/// partition drivers, and nested collects all spawn here.
class TaskGroup : public std::enable_shared_from_this<TaskGroup> {
 public:
  ~TaskGroup();

  FUSION_DISALLOW_COPY_AND_ASSIGN(TaskGroup);

  /// Spawn a run-to-completion task. It may block pulling from exchange
  /// queues (the queue lends the thread to this group meanwhile); its
  /// status is folded into Finish()'s result. Tasks spawned with the
  /// same `help_gen` (from NextHelpGen) are batch siblings and are
  /// never help-run nested inside one another (invariant 4);
  /// `help_gen == 0` allocates a fresh singleton generation.
  void Spawn(std::function<Status()> fn, uint64_t help_gen = 0);

  /// Spawn a resumable task. `fn` is polled with a Waker; it returns
  /// kParked after registering the waker on the edge it waits for, and
  /// kDone when finished (errors travel through the queues it feeds).
  /// `help_gen` as in Spawn.
  void SpawnResumable(std::function<TaskStatus(const Waker&)> fn,
                      uint64_t help_gen = 0);

  /// Allocate a help generation for one batch of sibling tasks; see
  /// invariant 4 above. Spawners whose tasks can wait on each other
  /// (shared-build claims, a common mutex) must share one generation.
  uint64_t NextHelpGen();

  /// Run `tasks` as group tasks and wait for all of them, lending the
  /// calling thread to this group's ready tasks meanwhile (the fairness
  /// floor: every query's collector drives its own work). Returns the
  /// first error; always waits for every task to settle.
  Status RunAll(std::vector<std::function<Status()>> tasks);

  /// Register a hook run when the group unwinds (first Finish call).
  /// Exchange queues register their Close() here so parked producers
  /// wake and running ones stop.
  void AddUnwindHook(std::function<void()> hook);

  /// Unwind and join: run the unwind hooks, then help/wait until every
  /// task of the group has finished. Idempotent. Returns the first
  /// error reported by a Spawn/RunAll task.
  Status Finish();

  /// Run one of this group's ready tasks on the calling thread.
  /// Returns false if none was ready.
  bool RunOneReadyTask();

  /// Scheduler progress epoch; read it *before* checking the condition
  /// you wait on, then pass it to HelpOrWait.
  uint64_t progress_epoch() const;

  /// Either run one of this group's ready tasks, or sleep until the
  /// progress epoch advances past `epoch` (bounded by `token`'s
  /// deadline when one is armed). Used by scheduler-aware blocking
  /// waits (BatchQueue::Pop) to lend the thread instead of holding it.
  /// Returns true if it ran a task (the time was spent helping, not
  /// blocked) — lets callers keep wait metrics honest.
  bool HelpOrWait(uint64_t epoch, const CancellationToken* token);

  /// Bump the progress epoch and wake helpers/waiters; called by queue
  /// edges (push/finish/close/cancel) attached to this group.
  void NotifyProgress();

  /// Tasks spawned into this group over its lifetime.
  int64_t tasks_spawned() const {
    return tasks_spawned_.load(std::memory_order_relaxed);
  }

  QueryScheduler* scheduler() const { return scheduler_; }

 private:
  friend class QueryScheduler;

  explicit TaskGroup(QueryScheduler* scheduler) : scheduler_(scheduler) {}

  void Enqueue(internal::TaskCtlPtr ctl);
  void RecordStatus(const Status& st);
  void TaskFinished();

  QueryScheduler* scheduler_;
  std::atomic<int64_t> tasks_spawned_{0};

  // The fields below are guarded by the scheduler's run-queue mutex.
  std::deque<internal::TaskCtlPtr> ready_;
  bool in_run_queue_ = false;
  int64_t outstanding_ = 0;
  Status first_error_;
  bool unwound_ = false;
  std::vector<std::function<void()>> unwind_hooks_;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(int num_workers);
  ~QueryScheduler();

  FUSION_DISALLOW_COPY_AND_ASSIGN(QueryScheduler);

  /// Create a task group (one per query execution).
  TaskGroupPtr MakeGroup();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Gauge: worker threads this scheduler ever created. The pool is
  /// fixed, so this equals num_workers() — the point of the gauge is
  /// that tests and CI can assert it stays <= pool_size + 1 no matter
  /// how many queries run concurrently.
  int64_t peak_threads() const {
    return peak_threads_.load(std::memory_order_relaxed);
  }
  /// Gauge: high-watermark of ready (runnable but not running) tasks.
  int64_t peak_ready_tasks() const {
    return peak_ready_tasks_.load(std::memory_order_relaxed);
  }
  /// Tasks spawned across all groups over the scheduler's lifetime.
  int64_t total_tasks() const {
    return total_tasks_.load(std::memory_order_relaxed);
  }

  /// Admission control (serving layer): block until the query may run —
  /// or fail fast with Status::ResourcesExhausted once `max_queued`
  /// queries are already waiting. A query is admitted when a
  /// concurrency slot is free and, if a watermark is set, `pool` is
  /// below `memory_watermark * limit`. To guarantee progress, the
  /// memory check is waived while nothing is running (cached/leaked
  /// bytes can otherwise hold the pool above the watermark forever).
  /// Queued queries honor `token` cancellation and deadlines. The
  /// returned ticket frees the slot on destruction; with
  /// `limits.max_concurrent <= 0` admission is off and the ticket is
  /// an inert empty one.
  Result<AdmissionTicket> Admit(const AdmissionLimits& limits,
                                const MemoryPool* pool,
                                const CancellationToken* token);

  /// Admission gauges/counters (for the EXPLAIN ANALYZE footer and
  /// bench --json).
  int64_t admission_running() const;
  int64_t admission_queued() const;
  int64_t admission_admitted_total() const {
    return admission_admitted_total_.load(std::memory_order_relaxed);
  }
  int64_t admission_queued_total() const {
    return admission_queued_total_.load(std::memory_order_relaxed);
  }
  int64_t admission_rejected_total() const {
    return admission_rejected_total_.load(std::memory_order_relaxed);
  }

  /// Process-wide scheduler sized to the hardware concurrency
  /// (FUSION_SCHEDULER_THREADS overrides, for tests and benchmarks).
  static QueryScheduler* Default();

 private:
  friend class TaskGroup;
  friend class Waker;
  friend class AdmissionTicket;

  void ReleaseAdmission();

  void WorkerLoop();
  /// Run one task to completion or park; never called with locks held.
  void RunTask(internal::TaskCtlPtr ctl);
  /// Re-enqueue path shared by Spawn and Waker::Wake.
  void EnqueueReady(const internal::TaskCtlPtr& ctl);
  void BumpEpoch();
  void WaitEpoch(uint64_t epoch, const CancellationToken* token);

  std::mutex mu_;  ///< guards run_queue_, group task state, shutdown_
  std::condition_variable cv_work_;
  std::deque<std::weak_ptr<TaskGroup>> run_queue_;
  bool shutdown_ = false;
  int64_t ready_count_ = 0;

  /// Progress epoch: bumped on every enqueue, task completion, and
  /// queue edge; epoch sleepers (helping waiters) wake on any change.
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int> epoch_waiters_{0};
  std::mutex epoch_mu_;
  std::condition_variable cv_epoch_;

  std::atomic<int64_t> peak_threads_{0};
  std::atomic<int64_t> peak_ready_tasks_{0};
  std::atomic<int64_t> total_tasks_{0};

  /// Monotonic help-generation counter (invariant 4). Global across
  /// groups, so a query nested inside another query's task always gets
  /// younger (helpable) generations.
  std::atomic<uint64_t> help_gen_{0};

  /// Admission state, guarded by its own mutex (never held together
  /// with mu_ or epoch_mu_).
  mutable std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  int64_t admission_running_ = 0;
  int64_t admission_queued_ = 0;
  std::atomic<int64_t> admission_admitted_total_{0};
  std::atomic<int64_t> admission_queued_total_{0};
  std::atomic<int64_t> admission_rejected_total_{0};

  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_SCHEDULER_H_
