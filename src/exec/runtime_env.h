#ifndef FUSION_EXEC_RUNTIME_ENV_H_
#define FUSION_EXEC_RUNTIME_ENV_H_

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injector.h"
#include "common/thread_pool.h"
#include "exec/buffer_cache.h"
#include "exec/cache_manager.h"
#include "exec/disk_manager.h"
#include "exec/memory_pool.h"
#include "exec/scheduler.h"

namespace fusion {
namespace exec {

/// Hit/miss counters for the session's logical-plan cache. The cache
/// itself lives in core (it stores logical plans); the counters live
/// here so the exec-layer EXPLAIN ANALYZE footer can render them
/// without a dependency on the logical layer.
struct PlanCacheStats {
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> evictions{0};
  /// Catalog/config-epoch flushes of the whole cache.
  std::atomic<int64_t> invalidations{0};
  std::atomic<int64_t> entries{0};
};

using PlanCacheStatsPtr = std::shared_ptr<PlanCacheStats>;

/// \brief The execution environment bundle (paper §7.4): memory, disk,
/// cache and CPU resources shared by queries of a session. Each member
/// is independently replaceable.
struct RuntimeEnv {
  MemoryPoolPtr memory_pool = std::make_shared<UnboundedMemoryPool>();
  DiskManagerPtr disk_manager = std::make_shared<DiskManager>();
  CacheManagerPtr cache_manager = std::make_shared<CacheManager>();
  /// Decoded-batch cache consulted by file scans; null disables caching
  /// (FUSION_BUFFER_CACHE_BYTES=0). Process-global by default so
  /// concurrent sessions share decoded data; sessions wanting memory
  /// accounting or isolation install their own instance.
  BufferCachePtr buffer_cache = BufferCache::Default();
  /// Counters bumped by the session's plan cache (see PlanCacheStats).
  PlanCacheStatsPtr plan_cache_stats = std::make_shared<PlanCacheStats>();
  /// Worker pool for partitioned execution; null = process default.
  ThreadPool* thread_pool = nullptr;
  /// The shared query scheduler all parallel work (top-level partition
  /// drivers and exchange producers) runs on; null = process default.
  /// Swap in a dedicated QueryScheduler to bound or isolate a session.
  QuerySchedulerPtr query_scheduler = nullptr;
  /// The active fault injector (nullptr outside fault-injection runs).
  /// Injection sites live below this layer and consult the process
  /// global; this member surfaces it for introspection and tests.
  FaultInjectorPtr fault_injector = FaultInjector::Current();

  ThreadPool* pool() const {
    return thread_pool != nullptr ? thread_pool : ThreadPool::Default();
  }
  QueryScheduler* scheduler() const {
    return query_scheduler != nullptr ? query_scheduler.get()
                                      : QueryScheduler::Default();
  }
};

using RuntimeEnvPtr = std::shared_ptr<RuntimeEnv>;

/// Default `target_partitions`: one per hardware thread, like
/// DataFusion. Overridable via FUSION_TARGET_PARTITIONS (tests and
/// benchmarks that need deterministic parallelism without plumbing a
/// config everywhere).
inline int DefaultTargetPartitions() {
  static const int value = [] {
    if (const char* env = std::getenv("FUSION_TARGET_PARTITIONS")) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<int>(hc);
  }();
  return value;
}

/// Default plan-cache capacity; FUSION_PLAN_CACHE_ENTRIES overrides
/// (0 disables the cache).
inline int DefaultPlanCacheEntries() {
  static const int value = [] {
    if (const char* env = std::getenv("FUSION_PLAN_CACHE_ENTRIES")) {
      int v = std::atoi(env);
      if (v >= 0) return v;
    }
    return 64;
  }();
  return value;
}

/// Default admission-control concurrency bound; 0 (the default) turns
/// admission off. FUSION_ADMISSION_MAX_CONCURRENT overrides.
inline int DefaultAdmissionMaxConcurrent() {
  static const int value = [] {
    if (const char* env = std::getenv("FUSION_ADMISSION_MAX_CONCURRENT")) {
      int v = std::atoi(env);
      if (v >= 0) return v;
    }
    return 0;
  }();
  return value;
}

/// Default runtime-filter mode; FUSION_RUNTIME_FILTERS=off|force|auto
/// overrides per process (tests sweep all three without replumbing).
inline std::string DefaultRuntimeFilterMode() {
  static const std::string value = [] {
    if (const char* env = std::getenv("FUSION_RUNTIME_FILTERS")) {
      std::string v = env;
      if (v == "off" || v == "force" || v == "auto") return v;
    }
    return std::string("auto");
  }();
  return value;
}

/// Per-session tunables (paper §5.5: batch size, partitioning).
struct SessionConfig {
  /// Target rows per batch flowing between Streams.
  int64_t batch_size = 8192;
  /// Parallelism: number of partitions planned for repartitioning
  /// operators (DataFusion's `target_partitions`). Parallel by default;
  /// the TIE baseline stays pinned at one partition so the paper's
  /// single-threaded architectural comparison is preserved.
  int target_partitions = DefaultTargetPartitions();
  /// Memory budget for pipeline breakers before spilling (0 = unbounded).
  int64_t memory_limit = 0;
  /// Rows a hash join's build side may hold before spilling is refused
  /// (safety valve; 0 = unlimited).
  int64_t max_build_rows = 0;
  /// Per-query deadline applied at execution start (0 = none). Queries
  /// exceeding it fail with Status::Cancelled("query deadline
  /// exceeded"). Explicit tokens passed to ExecuteSql get the same
  /// deadline armed on top of client-driven Cancel().
  int64_t timeout_ms = 0;
  /// Enable/disable specific optimizations (ablation switches).
  bool enable_predicate_pushdown = true;
  bool enable_late_materialization = true;
  bool enable_topk = true;
  bool enable_partial_aggregation = true;
  /// Use the streaming symmetric hash join for inner equi joins
  /// (both inputs stream; paper §6.4).
  bool enable_symmetric_hash_join = false;
  /// Grouped two-phase aggregations merge thread-local GroupTable state
  /// through a radix partition of the stored key hashes instead of a
  /// row-level hash repartition exchange (ablation switch; off falls
  /// back to partial -> RepartitionExec -> final).
  bool enable_partitioned_aggregation = true;
  /// Multi-partition scans hand out row-group/batch morsels from a
  /// shared queue instead of static per-partition splits, so skewed
  /// splits stop serializing the pipeline.
  bool enable_morsel_scan = true;
  /// Adaptive pre-aggregation bypass: after `agg_bypass_probe_rows`
  /// input rows, a build task whose observed groups/rows ratio is at
  /// least `agg_bypass_ratio` stops pre-aggregating and passes rows
  /// through as per-row partial state (DataFusion's skip-partial
  /// optimization). FUSION_AGG_BYPASS=off|force overrides per process.
  double agg_bypass_ratio = 0.8;
  int64_t agg_bypass_probe_rows = 100000;
  /// Logical-plan cache capacity (entries); 0 disables. Repeated query
  /// templates skip parse-independent optimize+normalize work.
  int plan_cache_entries = DefaultPlanCacheEntries();
  /// Admission control (serving layer): maximum queries allowed to
  /// execute concurrently per scheduler; 0 disables admission entirely.
  int admission_max_concurrent = DefaultAdmissionMaxConcurrent();
  /// Queries allowed to queue behind the running set before new
  /// arrivals are rejected with ResourcesExhausted.
  int admission_max_queued = 64;
  /// Fraction of the memory pool's limit above which new queries queue
  /// even when a concurrency slot is free (<= 0 disables the check).
  double admission_memory_watermark = 0.9;
  /// Runtime Bloom-filter pushdown (sideways information passing):
  /// "off" never installs filters (plans and results match a build
  /// without the feature), "force" installs one wherever structurally
  /// possible, "auto" (default) only when the build side is estimated
  /// both small and selective against the probe side.
  std::string runtime_filter_mode = DefaultRuntimeFilterMode();
  /// auto mode: skip the filter when the build side is estimated above
  /// this many rows (the filter itself would be large and late).
  int64_t rf_max_build_rows = 4 * 1000 * 1000;
  /// auto mode: require probe estimate >= ratio * build estimate.
  double rf_min_probe_ratio = 2.0;
};

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_RUNTIME_ENV_H_
