#include "exec/memory_pool.h"

namespace fusion {
namespace exec {

Status GreedyMemoryPool::Grow(const std::string& consumer, int64_t bytes) {
  int64_t now = used_.fetch_add(bytes) + bytes;
  if (now > limit_) {
    used_.fetch_sub(bytes);
    return Status::OutOfMemory("memory pool exhausted: consumer '" + consumer +
                               "' requested " + std::to_string(bytes) + " bytes, " +
                               std::to_string(now - bytes) + "/" +
                               std::to_string(limit_) + " in use");
  }
  return Status::OK();
}

void GreedyMemoryPool::Shrink(const std::string&, int64_t bytes) {
  used_.fetch_sub(bytes);
}

void FairMemoryPool::RegisterConsumer(const std::string& consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  used_.emplace(consumer, 0);
  num_consumers_ = static_cast<int64_t>(used_.size());
}

void FairMemoryPool::DeregisterConsumer(const std::string& consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  used_.erase(consumer);
  num_consumers_ = static_cast<int64_t>(used_.size());
}

Status FairMemoryPool::Grow(const std::string& consumer, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = used_.find(consumer);
  if (it == used_.end()) {
    it = used_.emplace(consumer, 0).first;
    num_consumers_ = static_cast<int64_t>(used_.size());
  }
  int64_t share = limit_ / std::max<int64_t>(1, num_consumers_);
  if (it->second + bytes > share) {
    return Status::OutOfMemory("fair pool: consumer '" + consumer +
                               "' exceeded its share of " + std::to_string(share) +
                               " bytes");
  }
  it->second += bytes;
  return Status::OK();
}

void FairMemoryPool::Shrink(const std::string& consumer, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = used_.find(consumer);
  if (it != used_.end()) {
    it->second -= bytes;
    if (it->second < 0) it->second = 0;
  }
}

int64_t FairMemoryPool::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [consumer, used] : used_) total += used;
  return total;
}

}  // namespace exec
}  // namespace fusion
