#include "exec/memory_pool.h"

#include <algorithm>

namespace fusion {
namespace exec {

Status GreedyMemoryPool::Grow(const std::string& consumer, int64_t bytes) {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("pool.grow"));
  int64_t now = used_.fetch_add(bytes) + bytes;
  if (now > limit_) {
    used_.fetch_sub(bytes);
    return Status::OutOfMemory("memory pool exhausted: consumer '" + consumer +
                               "' requested " + std::to_string(bytes) + " bytes, " +
                               std::to_string(now - bytes) + "/" +
                               std::to_string(limit_) + " in use");
  }
  return Status::OK();
}

void GreedyMemoryPool::Shrink(const std::string&, int64_t bytes) {
  used_.fetch_sub(bytes);
}

void FairMemoryPool::RegisterConsumer(const std::string& consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_[consumer].registrations += 1;
}

void FairMemoryPool::DeregisterConsumer(const std::string& consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer);
  if (it == consumers_.end()) return;
  if (--it->second.registrations <= 0) consumers_.erase(it);
}

Status FairMemoryPool::Grow(const std::string& consumer, int64_t bytes) {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("pool.grow"));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer);
  if (it == consumers_.end()) {
    // Growing without a registration (no MemoryReservation) still works,
    // but the implicit registration lives until a matching Deregister.
    it = consumers_.emplace(consumer, ConsumerState{0, 1}).first;
  }
  int64_t share =
      limit_ / std::max<int64_t>(1, static_cast<int64_t>(consumers_.size()));
  if (it->second.used + bytes > share) {
    return Status::OutOfMemory("fair pool: consumer '" + consumer +
                               "' exceeded its share of " + std::to_string(share) +
                               " bytes");
  }
  it->second.used += bytes;
  return Status::OK();
}

void FairMemoryPool::Shrink(const std::string& consumer, int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = consumers_.find(consumer);
  if (it != consumers_.end()) {
    it->second.used -= bytes;
    if (it->second.used < 0) it->second.used = 0;
  }
}

int64_t FairMemoryPool::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [consumer, state] : consumers_) total += state.used;
  return total;
}

int64_t FairMemoryPool::num_consumers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(consumers_.size());
}

}  // namespace exec
}  // namespace fusion
