#ifndef FUSION_EXEC_METRICS_H_
#define FUSION_EXEC_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/stream.h"

namespace fusion {
namespace exec {

/// \brief Runtime observability for physical operators (the analogue of
/// DataFusion's `MetricsSet`, paper §5.5/§8): every ExecutionPlan node
/// owns a MetricsSet, operators record into it with cheap relaxed
/// atomics, and EXPLAIN ANALYZE / CollectMetrics aggregate the
/// per-partition values after (or during) execution.

/// How a metric's per-partition values combine into one number.
enum class MetricKind {
  kCounter,  ///< monotonic count; aggregates by sum (rows, batches, spills)
  kGauge,    ///< level measurement; aggregates by max (memory reserved)
  kTime,     ///< accumulated nanoseconds; aggregates by sum
};

/// A single lock-free metric cell. Updates are relaxed atomics: metrics
/// must never contend with the work they measure.
class MetricValue {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise to `v` if higher (gauge high-watermark).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

using MetricValuePtr = std::shared_ptr<MetricValue>;

/// A named metric cell tagged with the partition that records into it
/// (-1 = not partition-specific).
struct Metric {
  std::string name;
  MetricKind kind;
  int partition = -1;
  MetricValuePtr value;
};

/// Standard metric names shared by all operators. Free-form names are
/// also allowed for operator-specific metrics.
namespace metric {
inline constexpr const char kOutputRows[] = "output_rows";
inline constexpr const char kOutputBatches[] = "output_batches";
/// Wall time spent inside this operator's stream, including time spent
/// pulling from its children (exclusive time is derived at reporting
/// time by subtracting the children's totals).
inline constexpr const char kElapsedNs[] = "elapsed_ns";
inline constexpr const char kMemReservedBytes[] = "mem_reserved_bytes";
inline constexpr const char kSpillCount[] = "spill_count";
inline constexpr const char kSpillBytes[] = "spill_bytes";
/// Rows emitted with at least one column still dictionary-encoded.
/// output_rows - dict_rows is how many rows went out fully dense, so
/// EXPLAIN ANALYZE shows exactly where encodings survive or get decoded.
inline constexpr const char kDictRows[] = "dict_rows";
/// Nanoseconds a consumer spent blocked on an exchange queue with no
/// batch available (scheduler pressure / producer-consumer imbalance).
/// Time the consumer lent its thread to run other tasks of its query
/// (TaskGroup::HelpOrWait) is productive work and is not counted.
inline constexpr const char kQueueWaitNs[] = "queue_wait_ns";
/// Tasks this operator submitted to the query scheduler.
inline constexpr const char kTasksSpawned[] = "tasks_spawned";
/// Groups produced by the pre-aggregation phase of a partitioned
/// aggregate, summed over build tasks (before the radix merge dedups
/// them across partitions).
inline constexpr const char kPartialGroups[] = "partial_groups";
/// Rows the adaptive pre-aggregation passed through as per-row partial
/// state after observing group cardinality ~ input cardinality.
inline constexpr const char kBypassRows[] = "bypass_rows";
/// Morsels a scan consumer claimed outside its nominal round-robin
/// share (work stealing across scan partitions).
inline constexpr const char kMorselsStolen[] = "morsels_stolen";
/// Nanoseconds a hash join spent constructing/merging its runtime Bloom
/// filters (sideways information passing), on top of the table build.
inline constexpr const char kRfBuildNs[] = "rf_build_ns";
/// Rows a scan tested against ready runtime filters.
inline constexpr const char kRfCheckedRows[] = "rf_checked_rows";
/// Rows a scan dropped because a runtime filter proved they cannot have
/// a join partner; rf_pruned_rows / rf_checked_rows is the filter's
/// observed selectivity.
inline constexpr const char kRfPrunedRows[] = "rf_pruned_rows";
}  // namespace metric

/// \brief The set of metrics recorded by one plan node across all of its
/// partitions. Registration takes a mutex (once per partition per
/// stream-open); updates through the returned MetricValue are lock-free.
class MetricsSet {
 public:
  static std::shared_ptr<MetricsSet> Make() {
    return std::make_shared<MetricsSet>();
  }

  /// Get or create the named cell for `partition`. Re-opening a
  /// partition returns the same cell, so repeated executions accumulate.
  MetricValuePtr Counter(const std::string& name, int partition = -1) {
    return GetOrCreate(name, MetricKind::kCounter, partition);
  }
  MetricValuePtr Gauge(const std::string& name, int partition = -1) {
    return GetOrCreate(name, MetricKind::kGauge, partition);
  }
  MetricValuePtr Time(const std::string& name, int partition = -1) {
    return GetOrCreate(name, MetricKind::kTime, partition);
  }

  /// Point-in-time copy of all registered metrics.
  std::vector<Metric> Snapshot() const;

  /// Aggregate the named metric across partitions: counters and times
  /// sum, gauges take the max. Returns 0 if never recorded.
  int64_t AggregatedValue(const std::string& name) const;

  /// Convenience: sum across partitions regardless of kind.
  int64_t Sum(const std::string& name) const;
  /// Convenience: max across partitions regardless of kind.
  int64_t Max(const std::string& name) const;

  /// All distinct metric names, sorted.
  std::vector<std::string> Names() const;

  /// "output_rows=8192, elapsed=1.2ms, ..." — aggregated, sorted by
  /// name, times rendered as human durations.
  std::string Summary() const;

 private:
  MetricValuePtr GetOrCreate(const std::string& name, MetricKind kind,
                             int partition);

  mutable std::mutex mu_;
  std::vector<Metric> metrics_;
};

using MetricsSetPtr = std::shared_ptr<MetricsSet>;

/// RAII timer accumulating elapsed nanoseconds into a kTime cell.
/// Keeps a shared_ptr so the cell outlives the stream that records it.
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricValuePtr target)
      : target_(std::move(target)), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Accumulate now and disarm (safe to call more than once).
  void Stop() {
    if (target_ == nullptr) return;
    target_->Add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
    target_ = nullptr;
  }

 private:
  MetricValuePtr target_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Stream wrapper recording output rows/batches and time spent in
/// Next() for one partition of an operator. Installed transparently by
/// ExecutionPlan::Execute around every operator's stream.
class InstrumentedStream : public RecordBatchStream {
 public:
  InstrumentedStream(StreamPtr inner, MetricValuePtr output_rows,
                     MetricValuePtr output_batches, MetricValuePtr elapsed_ns,
                     MetricValuePtr dict_rows = nullptr)
      : inner_(std::move(inner)), output_rows_(std::move(output_rows)),
        output_batches_(std::move(output_batches)),
        elapsed_ns_(std::move(elapsed_ns)), dict_rows_(std::move(dict_rows)) {}

  const SchemaPtr& schema() const override { return inner_->schema(); }

  Result<RecordBatchPtr> Next() override {
    ScopedTimer timer(elapsed_ns_);
    FUSION_ASSIGN_OR_RAISE(auto batch, inner_->Next());
    if (batch != nullptr) {
      output_rows_->Add(batch->num_rows());
      output_batches_->Add(1);
      if (dict_rows_ != nullptr) {
        for (int c = 0; c < batch->num_columns(); ++c) {
          if (batch->column(c)->type().is_dictionary()) {
            dict_rows_->Add(batch->num_rows());
            break;
          }
        }
      }
    }
    return batch;
  }

 private:
  StreamPtr inner_;
  MetricValuePtr output_rows_;
  MetricValuePtr output_batches_;
  MetricValuePtr elapsed_ns_;
  MetricValuePtr dict_rows_;
};

/// "823ns" / "12.3µs" / "4.56ms" / "1.23s".
std::string FormatDuration(int64_t nanos);

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_METRICS_H_
