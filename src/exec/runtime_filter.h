#ifndef FUSION_EXEC_RUNTIME_FILTER_H_
#define FUSION_EXEC_RUNTIME_FILTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "arrow/scalar.h"
#include "format/bloom.h"

namespace fusion {
namespace exec {

/// \brief One sideways-information-passing channel: a hash join's build
/// side publishes a Bloom filter (plus min/max of the build keys) here,
/// and the probe-side scan consults it per batch.
///
/// The protocol is strictly non-blocking for the consumer: a scan that
/// finds the filter still kPending simply passes rows through, so a slow
/// (or failed, or never-started) build can never stall a probe. The
/// producer moves the state exactly once, either to kReady via Publish()
/// or to kBypass via Bypass(); payload fields are written before the
/// release-store on state_, so a consumer that observes kReady via the
/// acquire-load may read them without further synchronization.
class RuntimeFilter {
 public:
  enum class State : int { kPending = 0, kReady = 1, kBypass = 2 };

  RuntimeFilter(int64_t id, std::string column)
      : id_(id), column_(std::move(column)) {}

  int64_t id() const { return id_; }
  /// Probe-side scan column this filter applies to.
  const std::string& column() const { return column_; }

  State state() const { return state_.load(std::memory_order_acquire); }
  bool ready() const { return state() == State::kReady; }

  /// Producer side: install the filter payload and latch kReady.
  /// First transition wins; later calls are ignored.
  void Publish(format::BloomFilter bloom, Scalar min_key, Scalar max_key,
               int64_t build_rows) {
    std::lock_guard<std::mutex> lock(publish_mu_);
    if (state_.load(std::memory_order_relaxed) != State::kPending) return;
    bloom_ = std::make_shared<format::BloomFilter>(std::move(bloom));
    min_key_ = std::move(min_key);
    max_key_ = std::move(max_key);
    build_rows_ = build_rows;
    state_.store(State::kReady, std::memory_order_release);
  }

  /// Producer side: give up (build error, oversized build, plan path
  /// that never builds). Consumers fall back to pass-through forever.
  void Bypass() {
    std::lock_guard<std::mutex> lock(publish_mu_);
    if (state_.load(std::memory_order_relaxed) != State::kPending) return;
    state_.store(State::kBypass, std::memory_order_release);
  }

  /// Valid only after state() returned kReady.
  const format::BloomFilter& bloom() const { return *bloom_; }
  const Scalar& min_key() const { return min_key_; }
  const Scalar& max_key() const { return max_key_; }
  int64_t build_rows() const { return build_rows_; }

 private:
  const int64_t id_;
  const std::string column_;
  std::mutex publish_mu_;
  std::atomic<State> state_{State::kPending};
  std::shared_ptr<format::BloomFilter> bloom_;
  Scalar min_key_;
  Scalar max_key_;
  int64_t build_rows_ = 0;
};

using RuntimeFilterPtr = std::shared_ptr<RuntimeFilter>;

/// \brief Per-query registry of runtime filters, carried on the
/// ExecContext. The physical planner creates filters here when it marks
/// a selective hash join; plan nodes keep shared_ptrs, so the registry
/// mainly provides stable ids and an EXPLAIN-able inventory.
class RuntimeFilterRegistry {
 public:
  RuntimeFilterPtr Create(const std::string& column) {
    std::lock_guard<std::mutex> lock(mu_);
    auto rf = std::make_shared<RuntimeFilter>(next_id_++, column);
    filters_.push_back(rf);
    return rf;
  }

  std::vector<RuntimeFilterPtr> filters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return filters_;
  }

 private:
  mutable std::mutex mu_;
  int64_t next_id_ = 0;
  std::vector<RuntimeFilterPtr> filters_;
};

using RuntimeFilterRegistryPtr = std::shared_ptr<RuntimeFilterRegistry>;

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_RUNTIME_FILTER_H_
