#include "exec/cache_manager.h"

namespace fusion {
namespace exec {

std::optional<std::vector<std::string>> CacheManager::GetListing(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  auto v = listings_.Get(dir);
  v.has_value() ? ++hits_ : ++misses_;
  return v;
}

void CacheManager::PutListing(const std::string& dir,
                              std::vector<std::string> files) {
  std::lock_guard<std::mutex> lock(mu_);
  listings_.Put(dir, std::move(files), capacity_);
}

std::optional<catalog::TableStatistics> CacheManager::GetFileStats(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto v = stats_.Get(path);
  v.has_value() ? ++hits_ : ++misses_;
  return v;
}

void CacheManager::PutFileStats(const std::string& path,
                                catalog::TableStatistics stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Put(path, std::move(stats), capacity_);
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  listings_ = {};
  stats_ = {};
}

size_t CacheManager::listing_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listings_.entries.size();
}

size_t CacheManager::stats_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.entries.size();
}

}  // namespace exec
}  // namespace fusion
