#include "exec/cache_manager.h"

namespace fusion {
namespace exec {

std::optional<std::vector<std::string>> CacheManager::GetListing(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  return listings_.Get(dir);
}

void CacheManager::PutListing(const std::string& dir,
                              std::vector<std::string> files) {
  std::lock_guard<std::mutex> lock(mu_);
  listings_.Put(dir, std::move(files), capacity_);
}

std::optional<format::TableStatistics> CacheManager::GetFileStats(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.Get(path);
}

void CacheManager::PutFileStats(const std::string& path,
                                format::TableStatistics stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.Put(path, std::move(stats), capacity_);
}

void CacheManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  listings_ = {};
  stats_ = {};
}

size_t CacheManager::listing_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listings_.entries.size();
}

size_t CacheManager::stats_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.entries.size();
}

int64_t CacheManager::listing_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listings_.hits;
}

int64_t CacheManager::listing_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listings_.misses;
}

int64_t CacheManager::stats_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.hits;
}

int64_t CacheManager::stats_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.misses;
}

}  // namespace exec
}  // namespace fusion
