#include "exec/buffer_cache.h"

#include <chrono>
#include <cstdlib>

namespace fusion {
namespace exec {

namespace {
constexpr const char* kPoolConsumer = "buffer-cache";
constexpr int64_t kDefaultCapacityBytes = 256LL << 20;  // 256 MiB
}  // namespace

/// One cache slot. `ready == false` means a leader is decoding; waiters
/// re-check after parking. `cached == false` after publish means the
/// batch was too large (or the pool refused it): the entry serves the
/// pins that exist and is erased when the last one drops.
struct BufferCache::Pin::Entry {
  std::string key;
  RecordBatchPtr batch;
  int64_t bytes = 0;
  int64_t pin_count = 0;
  bool ready = false;
  bool cached = false;
  /// Scheduler the leader's query runs on; followers on the same
  /// scheduler park via the progress-epoch protocol (the leader's
  /// NotifyProgress wakes them), others poll the cache condvar.
  QueryScheduler* leader_scheduler = nullptr;
  std::list<std::string>::iterator lru_it;
};

const RecordBatchPtr& BufferCache::Pin::batch() const {
  static const RecordBatchPtr kNull;
  return entry_ != nullptr ? entry_->batch : kNull;
}

void BufferCache::Pin::Release() {
  if (entry_ != nullptr && cache_ != nullptr) {
    cache_->UnpinEntry(entry_);
  }
  entry_ = nullptr;
  cache_ = nullptr;
}

BufferCache::BufferCache(int64_t capacity_bytes, MemoryPoolPtr pool)
    : capacity_bytes_(capacity_bytes), pool_(std::move(pool)) {
  if (pool_ != nullptr) pool_->RegisterConsumer(kPoolConsumer);
}

BufferCache::~BufferCache() {
  if (pool_ != nullptr) {
    if (stats_.cached_bytes > 0) pool_->Shrink(kPoolConsumer, stats_.cached_bytes);
    pool_->DeregisterConsumer(kPoolConsumer);
  }
}

void BufferCache::PinLocked(const std::shared_ptr<Pin::Entry>& entry) {
  if (entry->pin_count++ == 0) stats_.pinned_bytes += entry->bytes;
}

void BufferCache::UnpinEntry(const std::shared_ptr<Pin::Entry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (--entry->pin_count > 0) return;
  stats_.pinned_bytes -= entry->bytes;
  if (!entry->cached && entry->ready) {
    // Transient (uncacheable) entry: dies with its last pin. Guard
    // against the slot having been re-claimed after a Clear().
    auto it = entries_.find(entry->key);
    if (it != entries_.end() && it->second == entry) entries_.erase(it);
  }
}

void BufferCache::EvictLocked(int64_t needed) {
  // Walk from the LRU end, skipping pinned entries — eviction must
  // never free batches an active scan still reads.
  auto it = lru_.end();
  while (stats_.cached_bytes + needed > capacity_bytes_ && it != lru_.begin()) {
    --it;
    auto entry_it = entries_.find(*it);
    if (entry_it == entries_.end()) {  // stale key; drop it
      it = lru_.erase(it);
      continue;
    }
    auto& entry = entry_it->second;
    if (entry->pin_count > 0) continue;
    stats_.cached_bytes -= entry->bytes;
    ++stats_.evictions;
    if (pool_ != nullptr) pool_->Shrink(kPoolConsumer, entry->bytes);
    entry->cached = false;
    entries_.erase(entry_it);
    it = lru_.erase(it);
  }
}

BufferCache::Pin BufferCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second->ready) {
    ++stats_.misses;
    return Pin();
  }
  auto entry = it->second;
  ++stats_.hits;
  if (entry->cached) {
    lru_.erase(entry->lru_it);
    lru_.push_front(key);
    entry->lru_it = lru_.begin();
  }
  PinLocked(entry);
  return Pin(shared_from_this(), entry);
}

Result<BufferCache::Pin> BufferCache::GetOrDecode(
    const std::string& key,
    const std::function<Result<RecordBatchPtr>()>& decode, TaskGroup* group,
    const CancellationToken* token) {
  bool counted_coalesced = false;
  for (;;) {
    if (token != nullptr && token->CancelRequested()) {
      return token->CheckStatus();  // latch outside the cache lock
    }
    std::shared_ptr<Pin::Entry> entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        entry = it->second;
        if (entry->ready) {
          ++stats_.hits;
          if (entry->cached) {
            lru_.erase(entry->lru_it);
            lru_.push_front(key);
            entry->lru_it = lru_.begin();
          }
          PinLocked(entry);
          return Pin(shared_from_this(), entry);
        }
        // A leader is decoding this unit: coalesce instead of issuing a
        // redundant decode.
        if (!counted_coalesced) {
          ++stats_.coalesced;
          counted_coalesced = true;
        }
        if (group != nullptr && entry->leader_scheduler != nullptr &&
            group->scheduler() == entry->leader_scheduler) {
          // Progress-epoch wait. The epoch is read while the entry is
          // still !ready *under the cache lock*; the leader publishes
          // under the lock and bumps after releasing it, so the bump we
          // wait for is always in our future — no lost wakeup.
          uint64_t epoch = group->progress_epoch();
          lock.unlock();
          group->HelpOrWait(epoch, token);
        } else {
          // Cross-scheduler (or group-less) follower: bounded condvar
          // wait; the loop re-checks readiness and cancellation.
          cv_.wait_for(lock, std::chrono::milliseconds(5));
        }
        continue;
      }
      // Cold: become the leader. Leaders decode inline on their own
      // thread (never park), so coalescing cannot deadlock.
      entry = std::make_shared<Pin::Entry>();
      entry->key = key;
      entry->leader_scheduler = group != nullptr ? group->scheduler() : nullptr;
      entries_.emplace(key, entry);
      ++stats_.misses;
    }

    auto decoded = decode();
    if (!decoded.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == entry) entries_.erase(it);
      }
      // Wake followers; they retry as new leaders, so transient faults
      // (fpq.read injection) surface exactly as they would uncached.
      cv_.notify_all();
      if (group != nullptr) group->NotifyProgress();
      return decoded.status();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->batch = std::move(*decoded);
      entry->bytes = entry->batch != nullptr ? entry->batch->TotalBufferSize() : 0;
      entry->ready = true;
      // Best-effort admission: budget eviction first, then the pool.
      bool admit = entry->bytes <= capacity_bytes_;
      if (admit) {
        EvictLocked(entry->bytes);
        admit = stats_.cached_bytes + entry->bytes <= capacity_bytes_;
      }
      while (admit && pool_ != nullptr &&
             !pool_->Grow(kPoolConsumer, entry->bytes).ok()) {
        // The pool is tighter than our budget: give back LRU space and
        // retry; stop once nothing evictable remains.
        size_t before = entries_.size();
        EvictLocked(capacity_bytes_);  // force-evict everything unpinned
        if (entries_.size() == before) admit = false;
      }
      if (admit) {
        lru_.push_front(key);
        entry->lru_it = lru_.begin();
        entry->cached = true;
        stats_.cached_bytes += entry->bytes;
      } else {
        ++stats_.uncacheable;
      }
      PinLocked(entry);
    }
    cv_.notify_all();
    if (group != nullptr) group->NotifyProgress();
    return Pin(shared_from_this(), entry);
  }
}

void BufferCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto& entry = it->second;
    if (!entry->ready) {  // leader in flight; leave it
      ++it;
      continue;
    }
    if (entry->cached) {
      stats_.cached_bytes -= entry->bytes;
      if (pool_ != nullptr) pool_->Shrink(kPoolConsumer, entry->bytes);
      lru_.erase(entry->lru_it);
      entry->cached = false;
    }
    if (entry->pin_count > 0) {  // dies with its last pin
      ++it;
      continue;
    }
    it = entries_.erase(it);
  }
}

BufferCache::Stats BufferCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

std::string BufferCache::DebugString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "cache entries=" + std::to_string(entries_.size()) +
                    " hits=" + std::to_string(stats_.hits) +
                    " misses=" + std::to_string(stats_.misses) +
                    " coalesced=" + std::to_string(stats_.coalesced) + "\n";
  for (const auto& [key, e] : entries_) {
    out += "  " + key + " ready=" + std::to_string(e->ready) +
           " pins=" + std::to_string(e->pin_count) +
           " bytes=" + std::to_string(e->bytes) + "\n";
  }
  return out;
}

const BufferCachePtr& BufferCache::Default() {
  static const BufferCachePtr cache = [] {
    int64_t bytes = kDefaultCapacityBytes;
    if (const char* env = std::getenv("FUSION_BUFFER_CACHE_BYTES")) {
      char* end = nullptr;
      long long v = std::strtoll(env, &end, 10);
      if (end != env && v >= 0) bytes = static_cast<int64_t>(v);
    }
    return bytes == 0 ? BufferCachePtr() : std::make_shared<BufferCache>(bytes);
  }();
  return cache;
}

std::string BufferCacheKey(const std::string& file_identity, int row_group,
                           const std::vector<int>& projection,
                           const std::string& selection_fingerprint) {
  std::string key = file_identity;
  key += "|rg=";
  key += std::to_string(row_group);
  key += "|proj=";
  for (int col : projection) {
    key += std::to_string(col);
    key += ',';
  }
  key += "|sel=";
  key += selection_fingerprint;
  return key;
}

}  // namespace exec
}  // namespace fusion
