#include "exec/disk_manager.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fault_injector.h"
#include "common/macros.h"

namespace fusion {
namespace exec {

SpillFile::~SpillFile() {
  std::remove(path_.c_str());
  if (manager_ != nullptr && reserved_ > 0) {
    manager_->ReleaseSpillBytes(reserved_);
  }
}

Status SpillFile::Reserve(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  if (manager_ != nullptr) {
    FUSION_RETURN_NOT_OK(manager_->ReserveSpillBytes(bytes));
  }
  reserved_ += bytes;
  return Status::OK();
}

DiskManager::DiskManager(std::string base_dir, int64_t max_spill_bytes)
    : base_dir_(std::move(base_dir)) {
  if (base_dir_.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base_dir_ = tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp";
  }
  if (max_spill_bytes < 0) {
    max_spill_bytes = 0;
    if (const char* env = std::getenv("FUSION_MAX_SPILL_BYTES")) {
      max_spill_bytes = std::strtoll(env, nullptr, 10);
      if (max_spill_bytes < 0) max_spill_bytes = 0;
    }
  }
  max_spill_bytes_.store(max_spill_bytes);
}

Status DiskManager::EnsureBaseDir() {
  std::lock_guard<std::mutex> lock(dir_mu_);
  if (dir_checked_) return dir_status_;
  dir_checked_ = true;
  dir_status_ = [&]() -> Status {
    // mkdir -p: create each missing component so a nested spill dir
    // (e.g. TMPDIR=/tmp/fusion/spill) works out of the box.
    for (size_t pos = 1; pos <= base_dir_.size(); ++pos) {
      if (pos != base_dir_.size() && base_dir_[pos] != '/') continue;
      std::string prefix = base_dir_.substr(0, pos);
      if (prefix.empty()) continue;
      if (::mkdir(prefix.c_str(), 0700) != 0 && errno != EEXIST) {
        return Status::IOError("disk manager: cannot create spill directory '" +
                               base_dir_ + "': mkdir('" + prefix +
                               "') failed: " + std::strerror(errno));
      }
    }
    struct stat st;
    if (::stat(base_dir_.c_str(), &st) != 0) {
      return Status::IOError("disk manager: spill directory '" + base_dir_ +
                             "' is not accessible: " + std::strerror(errno));
    }
    if (!S_ISDIR(st.st_mode)) {
      return Status::IOError("disk manager: spill path '" + base_dir_ +
                             "' exists but is not a directory");
    }
    if (::access(base_dir_.c_str(), W_OK | X_OK) != 0) {
      return Status::IOError("disk manager: spill directory '" + base_dir_ +
                             "' is not writable: " + std::strerror(errno));
    }
    return Status::OK();
  }();
  return dir_status_;
}

Result<SpillFilePtr> DiskManager::CreateTempFile(const std::string& hint) {
  FUSION_RETURN_NOT_OK(FaultInjector::Maybe("disk.create"));
  FUSION_RETURN_NOT_OK(EnsureBaseDir());
  int64_t id = counter_.fetch_add(1);
  std::string path = base_dir_ + "/fusion-" + std::to_string(::getpid()) + "-" +
                     hint + "-" + std::to_string(id) + ".spill";
  // weak_from_this: a stack-allocated DiskManager (tests) simply skips
  // budget tracking rather than throwing bad_weak_ptr.
  return std::make_shared<SpillFile>(std::move(path), weak_from_this().lock());
}

Status DiskManager::ReserveSpillBytes(int64_t bytes) {
  int64_t limit = max_spill_bytes_.load();
  int64_t now = spill_bytes_.fetch_add(bytes) + bytes;
  if (limit > 0 && now > limit) {
    spill_bytes_.fetch_sub(bytes);
    return Status::ResourcesExhausted(
        "disk manager: spill limit exceeded: " + std::to_string(now - bytes) +
        " bytes in use + " + std::to_string(bytes) + " requested > limit " +
        std::to_string(limit) + " (spill dir '" + base_dir_ + "')");
  }
  return Status::OK();
}

void DiskManager::ReleaseSpillBytes(int64_t bytes) {
  spill_bytes_.fetch_sub(bytes);
}

}  // namespace exec
}  // namespace fusion
