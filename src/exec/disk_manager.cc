#include "exec/disk_manager.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace fusion {
namespace exec {

SpillFile::~SpillFile() { std::remove(path_.c_str()); }

DiskManager::DiskManager(std::string base_dir) : base_dir_(std::move(base_dir)) {
  if (base_dir_.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    base_dir_ = tmp != nullptr ? tmp : "/tmp";
  }
}

Result<SpillFilePtr> DiskManager::CreateTempFile(const std::string& hint) {
  int64_t id = counter_.fetch_add(1);
  std::string path = base_dir_ + "/fusion-" + std::to_string(::getpid()) + "-" +
                     hint + "-" + std::to_string(id) + ".spill";
  return std::make_shared<SpillFile>(std::move(path));
}

}  // namespace exec
}  // namespace fusion
