#ifndef FUSION_EXEC_MEMORY_POOL_H_
#define FUSION_EXEC_MEMORY_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/fault_injector.h"
#include "common/macros.h"
#include "common/result.h"

namespace fusion {
namespace exec {

/// \brief Cooperative memory accounting shared by concurrently running
/// queries (paper §5.5.4). Pipeline-breaking operators call Grow before
/// materializing large state and Shrink when releasing it; a failed Grow
/// signals the operator to spill.
///
/// The extension point for systems with domain-specific policies
/// (paper §7.4): subclass and install via SessionConfig.
class MemoryPool {
 public:
  virtual ~MemoryPool() = default;

  /// Try to reserve `bytes` for the named consumer. Error (OutOfMemory)
  /// means the caller should spill or fail.
  virtual Status Grow(const std::string& consumer, int64_t bytes) = 0;

  /// Release a previous reservation (never fails).
  virtual void Shrink(const std::string& consumer, int64_t bytes) = 0;

  /// Consumer lifecycle hooks, driven RAII-style by MemoryReservation:
  /// registered on construction, deregistered on destruction. Pools that
  /// divide the budget per consumer (FairMemoryPool) override these so a
  /// finished query's consumers stop diluting everyone else's share;
  /// the default pools ignore them.
  virtual void RegisterConsumer(const std::string& /*consumer*/) {}
  virtual void DeregisterConsumer(const std::string& /*consumer*/) {}

  virtual int64_t bytes_allocated() const = 0;
  virtual int64_t limit() const = 0;
};

using MemoryPoolPtr = std::shared_ptr<MemoryPool>;

/// No limit: always grants (the default for benchmarks).
class UnboundedMemoryPool : public MemoryPool {
 public:
  Status Grow(const std::string& consumer, int64_t bytes) override {
    FUSION_RETURN_NOT_OK(FaultInjector::Maybe("pool.grow"));
    (void)consumer;
    used_.fetch_add(bytes);
    return Status::OK();
  }
  void Shrink(const std::string&, int64_t bytes) override {
    used_.fetch_sub(bytes);
  }
  int64_t bytes_allocated() const override { return used_.load(); }
  int64_t limit() const override { return INT64_MAX; }

 private:
  std::atomic<int64_t> used_{0};
};

/// First-come-first-served process limit (DataFusion's GreedyPool).
class GreedyMemoryPool : public MemoryPool {
 public:
  explicit GreedyMemoryPool(int64_t limit) : limit_(limit) {}

  Status Grow(const std::string& consumer, int64_t bytes) override;
  void Shrink(const std::string& consumer, int64_t bytes) override;
  int64_t bytes_allocated() const override { return used_.load(); }
  int64_t limit() const override { return limit_; }

 private:
  int64_t limit_;
  std::atomic<int64_t> used_{0};
};

/// Evenly divides the budget among registered pipeline-breaking
/// consumers (DataFusion's FairSpillPool).
class FairMemoryPool : public MemoryPool {
 public:
  explicit FairMemoryPool(int64_t limit) : limit_(limit) {}

  /// Consumers register so the per-consumer share can be computed.
  /// MemoryReservation drives these RAII-style; a consumer's entry is
  /// removed on deregistration so per-query consumer names (e.g.
  /// "sort-<query>-<partition>") do not accumulate across queries and
  /// permanently shrink every later query's share.
  void RegisterConsumer(const std::string& consumer) override;
  void DeregisterConsumer(const std::string& consumer) override;

  Status Grow(const std::string& consumer, int64_t bytes) override;
  void Shrink(const std::string& consumer, int64_t bytes) override;
  int64_t bytes_allocated() const override;
  int64_t limit() const override { return limit_; }
  /// Currently registered consumers (for tests and introspection).
  int64_t num_consumers() const;

 private:
  int64_t limit_;
  mutable std::mutex mu_;
  /// consumer -> (bytes used, registration count). The count makes
  /// register/deregister pairs from same-named reservations nest.
  struct ConsumerState {
    int64_t used = 0;
    int64_t registrations = 0;
  };
  std::map<std::string, ConsumerState> consumers_;
};

/// RAII reservation helper.
class MemoryReservation {
 public:
  MemoryReservation(MemoryPoolPtr pool, std::string consumer)
      : pool_(std::move(pool)), consumer_(std::move(consumer)) {
    if (pool_ != nullptr) pool_->RegisterConsumer(consumer_);
  }
  ~MemoryReservation() {
    Free();
    if (pool_ != nullptr) pool_->DeregisterConsumer(consumer_);
  }

  FUSION_DISALLOW_COPY_AND_ASSIGN(MemoryReservation);

  /// Resize the reservation to `bytes` total.
  Status ResizeTo(int64_t bytes) {
    if (pool_ == nullptr) return Status::OK();
    if (bytes > held_) {
      FUSION_RETURN_NOT_OK(pool_->Grow(consumer_, bytes - held_));
    } else if (bytes < held_) {
      pool_->Shrink(consumer_, held_ - bytes);
    }
    held_ = bytes;
    return Status::OK();
  }

  void Free() {
    if (pool_ != nullptr && held_ > 0) {
      pool_->Shrink(consumer_, held_);
    }
    held_ = 0;
  }

  int64_t held() const { return held_; }

 private:
  MemoryPoolPtr pool_;
  std::string consumer_;
  int64_t held_ = 0;
};

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_MEMORY_POOL_H_
