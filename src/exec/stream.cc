#include "exec/stream.h"

namespace fusion {
namespace exec {

Result<std::vector<RecordBatchPtr>> CollectStream(RecordBatchStream* stream) {
  std::vector<RecordBatchPtr> out;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, stream->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace exec
}  // namespace fusion
