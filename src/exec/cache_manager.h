#ifndef FUSION_EXEC_CACHE_MANAGER_H_
#define FUSION_EXEC_CACHE_MANAGER_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "format/predicate.h"

namespace fusion {
namespace exec {

/// \brief Caches directory listings and per-file statistics (paper
/// §7.4). Important for disaggregated storage where LIST and footer
/// reads are expensive; here it also saves repeated FPQ footer parses.
/// LRU-bounded; eviction policy is the extension point. Hit/miss
/// counters are tracked per cache so EXPLAIN ANALYZE can attribute
/// savings to listings vs footer stats separately.
class CacheManager {
 public:
  explicit CacheManager(size_t capacity = 1024) : capacity_(capacity) {}
  virtual ~CacheManager() = default;

  /// Directory listing cache ------------------------------------------
  virtual std::optional<std::vector<std::string>> GetListing(
      const std::string& dir);
  virtual void PutListing(const std::string& dir, std::vector<std::string> files);

  /// Per-file statistics cache ---------------------------------------
  virtual std::optional<format::TableStatistics> GetFileStats(
      const std::string& path);
  virtual void PutFileStats(const std::string& path,
                            format::TableStatistics stats);

  void Clear();
  size_t listing_entries() const;
  size_t stats_entries() const;
  int64_t listing_hits() const;
  int64_t listing_misses() const;
  int64_t stats_hits() const;
  int64_t stats_misses() const;
  /// Totals across both caches (legacy API).
  int64_t hits() const { return listing_hits() + stats_hits(); }
  int64_t misses() const { return listing_misses() + stats_misses(); }

 private:
  template <typename V>
  struct LruMap {
    std::map<std::string, std::pair<V, std::list<std::string>::iterator>> entries;
    std::list<std::string> order;  // most recent at front
    int64_t hits = 0;
    int64_t misses = 0;

    std::optional<V> Get(const std::string& key) {
      auto it = entries.find(key);
      if (it == entries.end()) {
        ++misses;
        return std::nullopt;
      }
      ++hits;
      order.erase(it->second.second);
      order.push_front(key);
      it->second.second = order.begin();
      return it->second.first;
    }
    void Put(const std::string& key, V value, size_t capacity) {
      auto it = entries.find(key);
      if (it != entries.end()) {
        order.erase(it->second.second);
        entries.erase(it);
      }
      order.push_front(key);
      entries.emplace(key, std::make_pair(std::move(value), order.begin()));
      while (entries.size() > capacity) {
        entries.erase(order.back());
        order.pop_back();
      }
    }
  };

  size_t capacity_;
  mutable std::mutex mu_;
  LruMap<std::vector<std::string>> listings_;
  LruMap<format::TableStatistics> stats_;
};

using CacheManagerPtr = std::shared_ptr<CacheManager>;

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_CACHE_MANAGER_H_
