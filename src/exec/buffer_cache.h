#ifndef FUSION_EXEC_BUFFER_CACHE_H_
#define FUSION_EXEC_BUFFER_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arrow/record_batch.h"
#include "common/result.h"
#include "exec/cancellation.h"
#include "exec/memory_pool.h"
#include "exec/scheduler.h"

namespace fusion {
namespace exec {

class BufferCache;
using BufferCachePtr = std::shared_ptr<BufferCache>;

/// \brief Byte-budgeted LRU cache of *decoded* RecordBatches (paper
/// §6.8/§7.4). Decode cost dominates columnar scans, so the serving
/// layer caches the decoded Arrow representation of each (file, row
/// group, projection, selection) unit rather than raw file bytes.
///
/// Three properties make it safe under concurrent queries:
///
///  1. **Pinning.** Lookups return a Pin (RAII handle); a pinned entry
///     is never evicted, so eviction can never free batches a running
///     scan still reads. Unpinned entries are evicted in LRU order when
///     the byte budget overflows.
///
///  2. **Scan sharing.** N concurrent scans of the same cold unit
///     coalesce onto one decode: the first requester becomes the leader
///     and decodes inline (leaders never park, so there is no circular
///     wait); followers lend their thread to their query's other tasks
///     via the scheduler's progress-epoch protocol (TaskGroup::
///     HelpOrWait) until the leader publishes the batch. If the leader
///     fails — e.g. fpq.read fault injection — followers retry as new
///     leaders, so the cache stays transparent: callers see exactly the
///     errors the underlying decode would produce.
///
///  3. **Pool accounting.** Cached bytes are charged to an optional
///     MemoryPool under one long-lived consumer ("buffer-cache"), so a
///     FairMemoryPool splits its budget between the cache and query
///     state. When Grow is refused the cache evicts; if it still cannot
///     fit, the batch is handed to callers *uncached* (a transient
///     entry that dies with its last pin) — caching is best-effort,
///     never a correctness dependency.
///
/// Must be owned by shared_ptr (Pins keep the cache alive).
class BufferCache : public std::enable_shared_from_this<BufferCache> {
 public:
  /// `capacity_bytes` bounds cached (unpinned + pinned) bytes; `pool`
  /// optionally charges them to the session's memory accounting.
  explicit BufferCache(int64_t capacity_bytes, MemoryPoolPtr pool = nullptr);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// RAII pinned handle to a decoded batch. While alive, the entry
  /// cannot be evicted. Default-constructed/moved-from pins are empty.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept
        : cache_(std::move(other.cache_)), entry_(std::move(other.entry_)) {
      other.entry_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        cache_ = std::move(other.cache_);
        entry_ = std::move(other.entry_);
        other.entry_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    explicit operator bool() const { return entry_ != nullptr; }
    /// The pinned batch (may be nullptr for an empty decode result).
    const RecordBatchPtr& batch() const;
    /// Drop the pin early.
    void Release();

   private:
    friend class BufferCache;
    struct Entry;
    Pin(BufferCachePtr cache, std::shared_ptr<Entry> entry)
        : cache_(std::move(cache)), entry_(std::move(entry)) {}

    BufferCachePtr cache_;
    std::shared_ptr<Entry> entry_;
  };

  /// Lookup without decoding; empty Pin on miss. Counts a hit/miss.
  Pin Get(const std::string& key);

  /// The scan path: return the cached batch for `key`, decoding via
  /// `decode` on a miss. Concurrent callers for the same key coalesce
  /// onto one decode (see class comment). `group`/`token` are the
  /// caller's query context: followers park through `group`'s
  /// progress-epoch protocol when they share the leader's scheduler
  /// (falling back to a bounded condvar wait otherwise) and honor
  /// `token` cancellation/deadlines while waiting. Both may be null.
  Result<Pin> GetOrDecode(const std::string& key,
                          const std::function<Result<RecordBatchPtr>()>& decode,
                          TaskGroup* group = nullptr,
                          const CancellationToken* token = nullptr);

  /// Drop every unpinned entry (pinned ones die with their last pin).
  void Clear();

  int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Gauges/counters for EXPLAIN ANALYZE and bench --json.
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Follower waits that coalesced onto an in-flight decode.
    int64_t coalesced = 0;
    /// Decoded batches too large (or pool-refused) to cache.
    int64_t uncacheable = 0;
    int64_t cached_bytes = 0;
    int64_t pinned_bytes = 0;
    int64_t entries = 0;
  };
  Stats stats() const;

  /// Debug: one line per entry (key, ready, pins) — diagnosing stalls.
  std::string DebugString() const;

  /// Process-wide cache sized by FUSION_BUFFER_CACHE_BYTES (bytes;
  /// default 256 MiB; "0" disables -> returns nullptr). Not charged to
  /// any pool: sessions that want accounting construct their own.
  static const BufferCachePtr& Default();

 private:
  /// Evict unpinned LRU entries (back first) until `needed` more bytes
  /// fit in the budget, or nothing evictable remains (best effort).
  void EvictLocked(int64_t needed);
  void PinLocked(const std::shared_ptr<Pin::Entry>& entry);
  void UnpinEntry(const std::shared_ptr<Pin::Entry>& entry);

  const int64_t capacity_bytes_;
  MemoryPoolPtr pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes cross-scheduler followers
  std::map<std::string, std::shared_ptr<Pin::Entry>> entries_;
  std::list<std::string> lru_;  ///< most recent at front; cached entries only
  Stats stats_;
};

/// Builds the canonical cache key for one scan unit. `file_identity`
/// must change when the file's content may have (fpq::Reader exposes
/// path+size+mtime); `selection_fingerprint` covers pushed predicates +
/// late-materialization mode, since they change the decoded rows.
std::string BufferCacheKey(const std::string& file_identity, int row_group,
                           const std::vector<int>& projection,
                           const std::string& selection_fingerprint);

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_BUFFER_CACHE_H_
