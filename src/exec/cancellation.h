#ifndef FUSION_EXEC_CANCELLATION_H_
#define FUSION_EXEC_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "exec/stream.h"

namespace fusion {
namespace exec {

/// \brief Cooperative cancellation for a running query.
///
/// DataFusion inherits cancellation from Tokio — dropping a stream stops
/// its task at the next await point. Our blocking thread-pool analogue
/// (DESIGN.md §5.6) needs an explicit signal instead: a token shared by
/// the client and every stream/partition of one query. Streams check it
/// at each operator boundary (the instrumented Execute() wrapper) and in
/// the blocking waits of the exchange queues, so both pull loops and
/// push-style producer threads observe cancellation within one batch.
///
/// Two trigger paths, one latch:
///  - `Cancel()`: explicit client cancellation (abandoning a query).
///  - a deadline (`SetTimeout`/`SetDeadline`): checked lazily on every
///    `CheckStatus`; the first check past the deadline latches the token
///    so later checks are a single atomic load.
class CancellationToken {
 public:
  /// Why the token fired; doubles as the latch state.
  enum Reason : int { kNone = 0, kCancelled = 1, kDeadlineExceeded = 2 };

  CancellationToken() = default;

  static std::shared_ptr<CancellationToken> Make() {
    return std::make_shared<CancellationToken>();
  }
  /// Token that self-cancels `timeout_ms` from now.
  static std::shared_ptr<CancellationToken> WithTimeout(int64_t timeout_ms) {
    auto token = Make();
    token->SetTimeout(timeout_ms);
    return token;
  }

  void Cancel() { Latch(kCancelled); }

  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  void SetTimeout(int64_t timeout_ms) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms));
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_acquire) != 0;
  }
  /// The armed deadline (only meaningful when has_deadline()). Blocked
  /// waits sleep until this instant instead of polling, then re-check.
  std::chrono::steady_clock::time_point deadline_time() const {
    return std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            deadline_ns_.load(std::memory_order_acquire)));
  }

  /// Latching check: the first call past an armed deadline fires the
  /// listeners (see AddListener). Never call this while holding a lock
  /// that a listener also takes — use CancelRequested() there.
  bool IsCancelled() const { return ReasonNow() != kNone; }

  /// Non-latching probe: true once the token has latched, or an armed
  /// deadline has passed even if no check has latched it yet. Pure
  /// loads — never fires listeners — so it is the only form safe inside
  /// critical sections whose lock a listener may take (the exchange
  /// queue mutex, the scheduler's epoch mutex). Callers that need the
  /// Status (and the latch) must drop their lock first and use
  /// CheckStatus().
  bool CancelRequested() const {
    if (reason_.load(std::memory_order_acquire) != kNone) return true;
    int64_t d = deadline_ns_.load(std::memory_order_acquire);
    return d != 0 &&
           std::chrono::steady_clock::now().time_since_epoch().count() >= d;
  }

  using ListenerId = int64_t;

  /// Register a callback fired exactly once when the token latches
  /// (explicit Cancel or first check past the deadline). Blocked queue
  /// waits register a notification here so cancellation wakes them
  /// immediately instead of being noticed on a poll tick. If the token
  /// already fired, `fn` runs before AddListener returns.
  ///
  /// Listeners run under the token's listener mutex (possibly on the
  /// cancelling thread): they must only notify — no token re-entry.
  ListenerId AddListener(std::function<void()> fn) {
    std::lock_guard<std::mutex> lock(listener_mu_);
    if (reason_.load(std::memory_order_acquire) != kNone) {
      fn();
      return 0;
    }
    ListenerId id = ++next_listener_id_;
    listeners_.emplace_back(id, std::move(fn));
    return id;
  }

  /// Unregister; safe against a concurrent Latch — returns only after
  /// any in-flight listener invocation completed, so the caller may
  /// destroy the state `fn` captures.
  void RemoveListener(ListenerId id) {
    if (id == 0) return;
    std::lock_guard<std::mutex> lock(listener_mu_);
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->first == id) {
        listeners_.erase(it);
        return;
      }
    }
  }

  /// OK, or Status::Cancelled naming the trigger. This is the per-batch
  /// hook: one atomic load once latched (or with no deadline), plus a
  /// steady_clock read while an unexpired deadline is armed.
  Status CheckStatus() const {
    switch (ReasonNow()) {
      case kNone:
        return Status::OK();
      case kDeadlineExceeded:
        return Status::Cancelled("query deadline exceeded");
      default:
        return Status::Cancelled("query cancelled");
    }
  }

 private:
  Reason ReasonNow() const {
    int r = reason_.load(std::memory_order_acquire);
    if (r != kNone) return static_cast<Reason>(r);
    int64_t d = deadline_ns_.load(std::memory_order_acquire);
    if (d != 0 && std::chrono::steady_clock::now().time_since_epoch().count() >= d) {
      Latch(kDeadlineExceeded);
      return static_cast<Reason>(reason_.load(std::memory_order_acquire));
    }
    return kNone;
  }

  void Latch(Reason reason) const {
    int expected = kNone;
    if (reason_.compare_exchange_strong(expected, reason,
                                        std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(listener_mu_);
      for (auto& listener : listeners_) listener.second();
      listeners_.clear();
    }
  }

  mutable std::atomic<int> reason_{kNone};
  std::atomic<int64_t> deadline_ns_{0};

  mutable std::mutex listener_mu_;
  mutable std::vector<std::pair<ListenerId, std::function<void()>>> listeners_;
  ListenerId next_listener_id_ = 0;
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

/// Stream wrapper that fails fast with Status::Cancelled once the
/// query's token fires; installed by ExecutionPlan::Execute around every
/// operator's stream when the ExecContext carries a token.
class CancelCheckStream : public RecordBatchStream {
 public:
  CancelCheckStream(StreamPtr inner, CancellationTokenPtr token)
      : inner_(std::move(inner)), token_(std::move(token)) {}

  const SchemaPtr& schema() const override { return inner_->schema(); }

  Result<RecordBatchPtr> Next() override {
    FUSION_RETURN_NOT_OK(token_->CheckStatus());
    return inner_->Next();
  }

 private:
  StreamPtr inner_;
  CancellationTokenPtr token_;
};

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_CANCELLATION_H_
