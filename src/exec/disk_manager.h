#ifndef FUSION_EXEC_DISK_MANAGER_H_
#define FUSION_EXEC_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"

namespace fusion {
namespace exec {

class DiskManager;

/// \brief A temporary spill file removed from disk when the last
/// reference drops (paper §7.4: "reference counted spill files"). Bytes
/// reserved against the owning DiskManager's spill budget are returned
/// when the file is dropped.
class SpillFile {
 public:
  SpillFile(std::string path, std::shared_ptr<DiskManager> manager = nullptr)
      : path_(std::move(path)), manager_(std::move(manager)) {}
  ~SpillFile();

  const std::string& path() const { return path_; }

  /// Charge `bytes` about to be written to this file against the disk
  /// manager's spill budget; ResourcesExhausted when the budget is
  /// spent. Callers reserve before writing so a runaway spill fails
  /// cleanly instead of filling the disk.
  Status Reserve(int64_t bytes);

  /// Bytes currently charged to this file.
  int64_t reserved_bytes() const { return reserved_; }

 private:
  std::string path_;
  std::shared_ptr<DiskManager> manager_;
  int64_t reserved_ = 0;
};

using SpillFilePtr = std::shared_ptr<SpillFile>;

/// \brief Creates spill files in a configurable temp directory. Systems
/// with tailored policies (quotas, fast local disks) substitute their
/// own implementation.
///
/// The spill directory is created and validated on first use, so a bad
/// TMPDIR fails fast with the offending path in the message instead of
/// surfacing as a confusing mid-query IPC write error. Total bytes
/// reserved by live spill files are tracked against `max_spill_bytes`
/// (default from FUSION_MAX_SPILL_BYTES; 0 = unlimited) and further
/// spills fail with Status::ResourcesExhausted once it is spent.
class DiskManager : public std::enable_shared_from_this<DiskManager> {
 public:
  /// `base_dir` defaults to $TMPDIR or /tmp; `max_spill_bytes` defaults
  /// to FUSION_MAX_SPILL_BYTES (0 = unlimited).
  explicit DiskManager(std::string base_dir = "", int64_t max_spill_bytes = -1);

  /// New unique spill file path (file created lazily by the writer).
  /// Creates + validates the spill directory on first call.
  Result<SpillFilePtr> CreateTempFile(const std::string& hint);

  const std::string& base_dir() const { return base_dir_; }
  int64_t files_created() const { return counter_.load(); }

  /// Spill budget accounting (used via SpillFile::Reserve).
  Status ReserveSpillBytes(int64_t bytes);
  void ReleaseSpillBytes(int64_t bytes);
  int64_t spill_bytes_in_use() const { return spill_bytes_.load(); }
  int64_t max_spill_bytes() const { return max_spill_bytes_.load(); }
  void set_max_spill_bytes(int64_t bytes) { max_spill_bytes_.store(bytes); }

 private:
  /// Create the spill directory if missing and verify it is a writable
  /// directory; the result is computed once and cached.
  Status EnsureBaseDir();

  std::string base_dir_;
  std::atomic<int64_t> counter_{0};
  std::atomic<int64_t> spill_bytes_{0};
  std::atomic<int64_t> max_spill_bytes_{0};
  std::mutex dir_mu_;
  bool dir_checked_ = false;
  Status dir_status_;
};

using DiskManagerPtr = std::shared_ptr<DiskManager>;

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_DISK_MANAGER_H_
