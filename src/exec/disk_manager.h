#ifndef FUSION_EXEC_DISK_MANAGER_H_
#define FUSION_EXEC_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"

namespace fusion {
namespace exec {

class DiskManager;

/// \brief A temporary spill file removed from disk when the last
/// reference drops (paper §7.4: "reference counted spill files").
class SpillFile {
 public:
  SpillFile(std::string path) : path_(std::move(path)) {}
  ~SpillFile();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

using SpillFilePtr = std::shared_ptr<SpillFile>;

/// \brief Creates spill files in a configurable temp directory. Systems
/// with tailored policies (quotas, fast local disks) substitute their
/// own implementation.
class DiskManager {
 public:
  /// `base_dir` defaults to $TMPDIR or /tmp.
  explicit DiskManager(std::string base_dir = "");

  /// New unique spill file path (file created lazily by the writer).
  Result<SpillFilePtr> CreateTempFile(const std::string& hint);

  const std::string& base_dir() const { return base_dir_; }
  int64_t files_created() const { return counter_.load(); }

 private:
  std::string base_dir_;
  std::atomic<int64_t> counter_{0};
};

using DiskManagerPtr = std::shared_ptr<DiskManager>;

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_DISK_MANAGER_H_
