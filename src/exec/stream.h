#ifndef FUSION_EXEC_STREAM_H_
#define FUSION_EXEC_STREAM_H_

#include <functional>
#include <memory>
#include <vector>

#include "arrow/record_batch.h"
#include "catalog/table_provider.h"
#include "common/result.h"

namespace fusion {
namespace exec {

/// \brief Pull-based stream of RecordBatches — the C++ analogue of
/// DataFusion's `Stream` (paper Figure 3). One stream instance serves
/// one partition of an ExecutionPlan and is driven by a worker thread.
class RecordBatchStream {
 public:
  virtual ~RecordBatchStream() = default;

  virtual const SchemaPtr& schema() const = 0;

  /// Next batch, or nullptr when exhausted. Blocking (the thread-pool
  /// scheduler replaces Tokio's cooperative awaits, DESIGN.md §5.6).
  virtual Result<RecordBatchPtr> Next() = 0;
};

using StreamPtr = std::unique_ptr<RecordBatchStream>;

/// Stream over a pre-materialized batch list.
class VectorStream : public RecordBatchStream {
 public:
  VectorStream(SchemaPtr schema, std::vector<RecordBatchPtr> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}

  const SchemaPtr& schema() const override { return schema_; }

  Result<RecordBatchPtr> Next() override {
    if (pos_ >= batches_.size()) return RecordBatchPtr(nullptr);
    return batches_[pos_++];
  }

 private:
  SchemaPtr schema_;
  std::vector<RecordBatchPtr> batches_;
  size_t pos_ = 0;
};

/// Stream adapter over a catalog BatchIterator.
class IteratorStream : public RecordBatchStream {
 public:
  IteratorStream(SchemaPtr schema, catalog::BatchIteratorPtr iterator)
      : schema_(std::move(schema)), iterator_(std::move(iterator)) {}

  const SchemaPtr& schema() const override { return schema_; }
  Result<RecordBatchPtr> Next() override { return iterator_->Next(); }

 private:
  SchemaPtr schema_;
  catalog::BatchIteratorPtr iterator_;
};

/// Stream produced by a generator function (nullptr = end).
class GeneratorStream : public RecordBatchStream {
 public:
  using Generator = std::function<Result<RecordBatchPtr>()>;

  GeneratorStream(SchemaPtr schema, Generator gen)
      : schema_(std::move(schema)), gen_(std::move(gen)) {}

  const SchemaPtr& schema() const override { return schema_; }
  Result<RecordBatchPtr> Next() override { return gen_(); }

 private:
  SchemaPtr schema_;
  Generator gen_;
};

/// Drain a stream into a vector.
Result<std::vector<RecordBatchPtr>> CollectStream(RecordBatchStream* stream);

}  // namespace exec
}  // namespace fusion

#endif  // FUSION_EXEC_STREAM_H_
