#include "exec/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

namespace fusion {
namespace exec {

MetricValuePtr MetricsSet::GetOrCreate(const std::string& name, MetricKind kind,
                                       int partition) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Metric& m : metrics_) {
    if (m.partition == partition && m.name == name) return m.value;
  }
  Metric m;
  m.name = name;
  m.kind = kind;
  m.partition = partition;
  m.value = std::make_shared<MetricValue>();
  metrics_.push_back(m);
  return metrics_.back().value;
}

std::vector<Metric> MetricsSet::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

int64_t MetricsSet::AggregatedValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t sum = 0;
  int64_t max = 0;
  bool is_gauge = false;
  for (const Metric& m : metrics_) {
    if (m.name != name) continue;
    int64_t v = m.value->value();
    sum += v;
    max = std::max(max, v);
    if (m.kind == MetricKind::kGauge) is_gauge = true;
  }
  return is_gauge ? max : sum;
}

int64_t MetricsSet::Sum(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t sum = 0;
  for (const Metric& m : metrics_) {
    if (m.name == name) sum += m.value->value();
  }
  return sum;
}

int64_t MetricsSet::Max(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t max = 0;
  for (const Metric& m : metrics_) {
    if (m.name == name) max = std::max(max, m.value->value());
  }
  return max;
}

std::vector<std::string> MetricsSet::Names() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Metric& m : metrics_) names.insert(m.name);
  }
  return {names.begin(), names.end()};
}

std::string MetricsSet::Summary() const {
  // name -> (aggregated value, kind); aggregation mirrors
  // AggregatedValue but in one pass.
  std::map<std::string, std::pair<int64_t, MetricKind>> agg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Metric& m : metrics_) {
      auto it = agg.find(m.name);
      int64_t v = m.value->value();
      if (it == agg.end()) {
        agg.emplace(m.name, std::make_pair(v, m.kind));
      } else if (m.kind == MetricKind::kGauge) {
        it->second.first = std::max(it->second.first, v);
      } else {
        it->second.first += v;
      }
    }
  }
  std::string out;
  for (const auto& [name, vk] : agg) {
    if (!out.empty()) out += ", ";
    out += name + "=";
    if (vk.second == MetricKind::kTime) {
      out += FormatDuration(vk.first);
    } else {
      out += std::to_string(vk.first);
    }
  }
  return out;
}

std::string FormatDuration(int64_t nanos) {
  char buf[32];
  if (nanos < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  } else if (nanos < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fµs", nanos / 1e3);
  } else if (nanos < 1000LL * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", nanos / 1e9);
  }
  return buf;
}

}  // namespace exec
}  // namespace fusion
