#include <set>

#include "optimizer/optimizer.h"

namespace fusion {
namespace optimizer {

using logical::Expr;
using logical::ExprPtr;
using logical::LogicalPlan;
using logical::PlanKind;
using logical::PlanPtr;

namespace {

using NameSet = std::set<std::string>;

void AddExprColumns(const ExprPtr& expr, NameSet* out) {
  std::vector<ExprPtr> cols;
  logical::CollectColumns(expr, &cols);
  for (const auto& c : cols) out->insert(c->name);
}

/// Recursively push column requirements toward scans. `required` is the
/// set of output column names needed by ancestors; nullptr = all.
Result<PlanPtr> Push(const PlanPtr& plan, const NameSet* required) {
  switch (plan->kind) {
    case PlanKind::kProjection: {
      NameSet child_req;
      for (const auto& e : plan->exprs) AddExprColumns(e, &child_req);
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), &child_req));
      if (child == plan->child(0)) return plan;
      return logical::MakeProjection(std::move(child), plan->exprs);
    }
    case PlanKind::kFilter: {
      if (required == nullptr) {
        FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), nullptr));
        if (child == plan->child(0)) return plan;
        return logical::MakeFilter(std::move(child), plan->predicate);
      }
      NameSet child_req = *required;
      AddExprColumns(plan->predicate, &child_req);
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), &child_req));
      if (child == plan->child(0)) return plan;
      return logical::MakeFilter(std::move(child), plan->predicate);
    }
    case PlanKind::kSort: {
      if (required == nullptr) {
        FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), nullptr));
        if (child == plan->child(0)) return plan;
        return logical::MakeSort(std::move(child), plan->sort_exprs, plan->fetch);
      }
      NameSet child_req = *required;
      for (const auto& s : plan->sort_exprs) AddExprColumns(s.expr, &child_req);
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), &child_req));
      if (child == plan->child(0)) return plan;
      return logical::MakeSort(std::move(child), plan->sort_exprs, plan->fetch);
    }
    case PlanKind::kLimit: {
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), required));
      if (child == plan->child(0)) return plan;
      return logical::MakeLimit(std::move(child), plan->skip, plan->fetch);
    }
    case PlanKind::kSubqueryAlias: {
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), required));
      if (child == plan->child(0)) return plan;
      return logical::MakeSubqueryAlias(std::move(child), plan->alias);
    }
    case PlanKind::kAggregate: {
      NameSet child_req;
      for (const auto& g : plan->group_exprs) AddExprColumns(g, &child_req);
      for (const auto& a : plan->aggr_exprs) {
        AddExprColumns(a, &child_req);
        const ExprPtr& u = logical::Unalias(a);
        if (u->filter != nullptr) AddExprColumns(u->filter, &child_req);
      }
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, Push(plan->child(0), &child_req));
      if (child == plan->child(0)) return plan;
      return logical::MakeAggregate(std::move(child), plan->group_exprs,
                                    plan->aggr_exprs);
    }
    case PlanKind::kWindow: {
      NameSet child_req;
      bool all = required == nullptr;
      if (!all) {
        child_req = *required;
        for (const auto& e : plan->exprs) {
          AddExprColumns(e, &child_req);
          const ExprPtr& u = logical::Unalias(e);
          if (u->window_spec != nullptr) {
            for (const auto& p : u->window_spec->partition_by) {
              AddExprColumns(p, &child_req);
            }
            for (const auto& o : u->window_spec->order_by) {
              AddExprColumns(o.expr, &child_req);
            }
          }
        }
      }
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             Push(plan->child(0), all ? nullptr : &child_req));
      if (child == plan->child(0)) return plan;
      return logical::MakeWindow(std::move(child), plan->exprs);
    }
    case PlanKind::kJoin: {
      NameSet side_req;
      bool all = required == nullptr;
      if (!all) {
        side_req = *required;
        for (const auto& [l, r] : plan->join_on) {
          AddExprColumns(l, &side_req);
          AddExprColumns(r, &side_req);
        }
        if (plan->join_filter != nullptr) {
          AddExprColumns(plan->join_filter, &side_req);
        }
      }
      FUSION_ASSIGN_OR_RAISE(PlanPtr left,
                             Push(plan->child(0), all ? nullptr : &side_req));
      FUSION_ASSIGN_OR_RAISE(PlanPtr right,
                             Push(plan->child(1), all ? nullptr : &side_req));
      if (left == plan->child(0) && right == plan->child(1)) return plan;
      return logical::MakeJoin(std::move(left), std::move(right), plan->join_kind,
                               plan->join_on, plan->join_filter);
    }
    case PlanKind::kTableScan: {
      if (required == nullptr) return plan;
      NameSet needed = *required;
      for (const auto& f : plan->scan_filters) AddExprColumns(f, &needed);
      const logical::PlanSchema& schema = plan->schema();
      // Translate to indices relative to the table's full schema.
      SchemaPtr table_schema = plan->provider->schema();
      std::vector<int> current = plan->scan_projection;
      if (current.empty()) {
        for (int i = 0; i < table_schema->num_fields(); ++i) current.push_back(i);
      }
      std::vector<int> kept;
      for (size_t i = 0; i < current.size(); ++i) {
        if (needed.count(schema.field(static_cast<int>(i)).name()) != 0) {
          kept.push_back(current[i]);
        }
      }
      if (kept.size() == current.size()) return plan;
      if (kept.empty()) {
        // Preserve row counts (e.g. COUNT(*)): keep the narrowest column.
        int best = current[0];
        int best_width = 1 << 30;
        for (int idx : current) {
          int w = table_schema->field(idx).type().byte_width();
          if (w == 0) w = 16;  // strings are expensive
          if (w < best_width) {
            best_width = w;
            best = idx;
          }
        }
        kept.push_back(best);
      }
      return logical::MakeTableScan(plan->table_name, plan->provider, kept,
                                    plan->scan_filters, plan->scan_limit);
    }
    default: {
      // Unknown/leaf nodes: require everything below.
      std::vector<PlanPtr> children;
      bool changed = false;
      for (const auto& c : plan->children) {
        FUSION_ASSIGN_OR_RAISE(PlanPtr nc, Push(c, nullptr));
        if (nc != c) changed = true;
        children.push_back(std::move(nc));
      }
      if (!changed) return plan;
      return logical::WithNewChildren(plan, std::move(children));
    }
  }
}

class ProjectionPushdownRule : public OptimizerRule {
 public:
  std::string name() const override { return "projection_pushdown"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return Push(plan, nullptr);
  }
};

}  // namespace

OptimizerRulePtr MakeProjectionPushdownRule() {
  return std::make_shared<ProjectionPushdownRule>();
}

}  // namespace optimizer
}  // namespace fusion
