#include "optimizer/predicate_lowering.h"

#include "logical/expr_eval.h"

namespace fusion {
namespace optimizer {

using logical::BinaryOp;
using logical::Expr;
using logical::ExprPtr;

namespace {

/// Strip casts/aliases down to a bare column reference, if that is what
/// this is.
const ExprPtr* AsColumn(const ExprPtr& expr) {
  const ExprPtr* e = &expr;
  while ((*e)->kind == Expr::Kind::kAlias || (*e)->kind == Expr::Kind::kCast) {
    e = &(*e)->children[0];
  }
  if ((*e)->kind == Expr::Kind::kColumn) return e;
  return nullptr;
}

std::optional<Scalar> AsConstant(const ExprPtr& expr) {
  if (!logical::IsConstant(expr)) return std::nullopt;
  auto v = logical::EvaluateConstantExpr(expr);
  if (!v.ok()) return std::nullopt;
  return *v;
}

format::ColumnPredicate::Op FlipOp(format::ColumnPredicate::Op op) {
  using Op = format::ColumnPredicate::Op;
  switch (op) {
    case Op::kLt: return Op::kGt;
    case Op::kLtEq: return Op::kGtEq;
    case Op::kGt: return Op::kLt;
    case Op::kGtEq: return Op::kLtEq;
    default: return op;
  }
}

}  // namespace

std::optional<format::ColumnPredicate> TryLowerPredicate(const ExprPtr& expr) {
  using Op = format::ColumnPredicate::Op;
  const ExprPtr& e = logical::Unalias(expr);
  switch (e->kind) {
    case Expr::Kind::kBinary: {
      Op op;
      switch (e->op) {
        case BinaryOp::kEq: op = Op::kEq; break;
        case BinaryOp::kNeq: op = Op::kNeq; break;
        case BinaryOp::kLt: op = Op::kLt; break;
        case BinaryOp::kLtEq: op = Op::kLtEq; break;
        case BinaryOp::kGt: op = Op::kGt; break;
        case BinaryOp::kGtEq: op = Op::kGtEq; break;
        default:
          return std::nullopt;
      }
      const ExprPtr* col = AsColumn(e->children[0]);
      if (col != nullptr) {
        // Casts around the column change value domains; only a direct
        // column reference is lowered.
        if (e->children[0]->kind != Expr::Kind::kColumn) return std::nullopt;
        auto value = AsConstant(e->children[1]);
        if (!value) return std::nullopt;
        return format::ColumnPredicate{(*col)->name, op, {*value}};
      }
      col = AsColumn(e->children[1]);
      if (col != nullptr && e->children[1]->kind == Expr::Kind::kColumn) {
        auto value = AsConstant(e->children[0]);
        if (!value) return std::nullopt;
        return format::ColumnPredicate{(*col)->name, FlipOp(op), {*value}};
      }
      return std::nullopt;
    }
    case Expr::Kind::kInList: {
      if (e->negated) return std::nullopt;
      if (e->children[0]->kind != Expr::Kind::kColumn) return std::nullopt;
      std::vector<Scalar> values;
      for (size_t i = 1; i < e->children.size(); ++i) {
        auto v = AsConstant(e->children[i]);
        if (!v) return std::nullopt;
        values.push_back(std::move(*v));
      }
      return format::ColumnPredicate{e->children[0]->name, Op::kIn,
                                     std::move(values)};
    }
    case Expr::Kind::kIsNull:
      if (e->children[0]->kind != Expr::Kind::kColumn) return std::nullopt;
      return format::ColumnPredicate{e->children[0]->name, Op::kIsNull, {}};
    case Expr::Kind::kIsNotNull:
      if (e->children[0]->kind != Expr::Kind::kColumn) return std::nullopt;
      return format::ColumnPredicate{e->children[0]->name, Op::kIsNotNull, {}};
    default:
      return std::nullopt;
  }
}

}  // namespace optimizer
}  // namespace fusion
