#include "logical/expr_eval.h"
#include "optimizer/optimizer.h"
#include "optimizer/predicate_lowering.h"

namespace fusion {
namespace optimizer {

using logical::Expr;
using logical::ExprPtr;
using logical::JoinKind;
using logical::LogicalPlan;
using logical::PlanKind;
using logical::PlanPtr;

namespace {

/// Can every column of `expr` be resolved against `schema`?
bool AllColumnsResolve(const ExprPtr& expr, const logical::PlanSchema& schema) {
  std::vector<ExprPtr> cols;
  logical::CollectColumns(expr, &cols);
  for (const auto& c : cols) {
    if (!schema.IndexOf(c->qualifier, c->name).ok()) return false;
  }
  return !cols.empty() || logical::IsConstant(expr);
}

/// Substitute column references with the projection expressions that
/// produce them (to push a predicate below a Projection).
Result<ExprPtr> SubstituteProjection(const ExprPtr& pred,
                                     const std::vector<ExprPtr>& proj_exprs,
                                     const logical::PlanSchema& out_schema) {
  return logical::TransformExpr(pred, [&](const ExprPtr& e) -> Result<ExprPtr> {
    if (e->kind != Expr::Kind::kColumn) return e;
    FUSION_ASSIGN_OR_RAISE(int idx, out_schema.IndexOf(e->qualifier, e->name));
    return logical::Unalias(proj_exprs[idx]);
  });
}

/// Strip the alias qualifier from column references (to push below a
/// SubqueryAlias node).
Result<ExprPtr> StripQualifier(const ExprPtr& pred, const std::string& alias,
                               const logical::PlanSchema& child_schema) {
  return logical::TransformExpr(pred, [&](const ExprPtr& e) -> Result<ExprPtr> {
    if (e->kind != Expr::Kind::kColumn) return e;
    if (e->qualifier != alias && !e->qualifier.empty()) return e;
    // Recover the child-side qualifier by position.
    auto idx = child_schema.IndexOf("", e->name);
    if (!idx.ok()) return e;
    return logical::Col(child_schema.qualifier(*idx), e->name);
  });
}

/// Core recursion: push `preds` into `plan`; returns the rewritten plan,
/// with unabsorbed predicates appended to `remaining`.
Result<PlanPtr> PushPredicates(const PlanPtr& plan, std::vector<ExprPtr> preds,
                               std::vector<ExprPtr>* remaining) {
  if (preds.empty()) return plan;
  switch (plan->kind) {
    case PlanKind::kFilter: {
      logical::SplitConjunction(plan->predicate, &preds);
      std::vector<ExprPtr> leftover;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(plan->child(0), preds, &leftover));
      if (leftover.empty()) return child;
      return logical::MakeFilter(std::move(child), logical::Conjunction(leftover));
    }
    case PlanKind::kProjection: {
      std::vector<ExprPtr> pushed;
      for (const auto& p : preds) {
        if (!AllColumnsResolve(p, plan->schema())) {
          remaining->push_back(p);
          continue;
        }
        FUSION_ASSIGN_OR_RAISE(
            auto rewritten, SubstituteProjection(p, plan->exprs, plan->schema()));
        if (logical::ContainsAggregate(rewritten) ||
            logical::ContainsWindow(rewritten)) {
          remaining->push_back(p);
        } else {
          pushed.push_back(std::move(rewritten));
        }
      }
      std::vector<ExprPtr> leftover;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(plan->child(0), pushed, &leftover));
      if (!leftover.empty()) {
        FUSION_ASSIGN_OR_RAISE(child, logical::MakeFilter(std::move(child),
                                                          logical::Conjunction(
                                                              leftover)));
      }
      return logical::MakeProjection(std::move(child), plan->exprs);
    }
    case PlanKind::kSubqueryAlias: {
      std::vector<ExprPtr> pushed;
      for (const auto& p : preds) {
        FUSION_ASSIGN_OR_RAISE(
            auto rewritten,
            StripQualifier(p, plan->alias, plan->child(0)->schema()));
        pushed.push_back(std::move(rewritten));
      }
      std::vector<ExprPtr> leftover;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(plan->child(0), pushed, &leftover));
      if (!leftover.empty()) {
        FUSION_ASSIGN_OR_RAISE(child, logical::MakeFilter(std::move(child),
                                                          logical::Conjunction(
                                                              leftover)));
      }
      return logical::MakeSubqueryAlias(std::move(child), plan->alias);
    }
    case PlanKind::kSort: {
      std::vector<ExprPtr> leftover;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(plan->child(0), preds, &leftover));
      if (!leftover.empty()) {
        FUSION_ASSIGN_OR_RAISE(child, logical::MakeFilter(std::move(child),
                                                          logical::Conjunction(
                                                              leftover)));
      }
      return logical::MakeSort(std::move(child), plan->sort_exprs, plan->fetch);
    }
    case PlanKind::kAggregate: {
      // Only predicates over group-by outputs may pass.
      std::vector<std::string> group_names;
      for (const auto& g : plan->group_exprs) {
        group_names.push_back(g->DisplayName());
      }
      std::vector<ExprPtr> pushed;
      for (const auto& p : preds) {
        std::vector<ExprPtr> cols;
        logical::CollectColumns(p, &cols);
        bool all_group = !cols.empty();
        for (const auto& c : cols) {
          bool found = false;
          for (size_t i = 0; i < group_names.size(); ++i) {
            if (c->name == group_names[i]) {
              found = true;
              break;
            }
          }
          if (!found) {
            all_group = false;
            break;
          }
        }
        if (!all_group) {
          remaining->push_back(p);
          continue;
        }
        // Substitute output names with the group expressions.
        FUSION_ASSIGN_OR_RAISE(
            auto rewritten,
            logical::TransformExpr(p, [&](const ExprPtr& e) -> Result<ExprPtr> {
              if (e->kind != Expr::Kind::kColumn) return e;
              for (size_t i = 0; i < group_names.size(); ++i) {
                if (e->name == group_names[i]) {
                  return logical::Unalias(plan->group_exprs[i]);
                }
              }
              return e;
            }));
        pushed.push_back(std::move(rewritten));
      }
      std::vector<ExprPtr> leftover;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(plan->child(0), pushed, &leftover));
      if (!leftover.empty()) {
        FUSION_ASSIGN_OR_RAISE(child, logical::MakeFilter(std::move(child),
                                                          logical::Conjunction(
                                                              leftover)));
      }
      return logical::MakeAggregate(std::move(child), plan->group_exprs,
                                    plan->aggr_exprs);
    }
    case PlanKind::kJoin: {
      const PlanPtr& left = plan->child(0);
      const PlanPtr& right = plan->child(1);
      const bool inner_like =
          plan->join_kind == JoinKind::kInner || plan->join_kind == JoinKind::kCross;
      std::vector<ExprPtr> to_left;
      std::vector<ExprPtr> to_right;
      std::vector<std::pair<ExprPtr, ExprPtr>> new_on = plan->join_on;
      JoinKind kind = plan->join_kind;
      const bool left_preserved = kind == JoinKind::kInner ||
                                  kind == JoinKind::kCross ||
                                  kind == JoinKind::kLeft ||
                                  kind == JoinKind::kLeftSemi ||
                                  kind == JoinKind::kLeftAnti;
      const bool right_preserved = kind == JoinKind::kInner ||
                                   kind == JoinKind::kCross ||
                                   kind == JoinKind::kRight;
      for (const auto& p : preds) {
        const bool on_left = AllColumnsResolve(p, left->schema());
        const bool on_right = AllColumnsResolve(p, right->schema());
        if (on_left && left_preserved) {
          to_left.push_back(p);
          continue;
        }
        if (on_right && right_preserved &&
            plan->join_kind != JoinKind::kLeftSemi &&
            plan->join_kind != JoinKind::kLeftAnti) {
          to_right.push_back(p);
          continue;
        }
        // Equi predicate across both sides of an inner/cross join
        // becomes a join key (paper §6.4: join predicate extraction
        // turns comma joins into hash joins).
        const ExprPtr& u = logical::Unalias(p);
        if (inner_like && u->kind == Expr::Kind::kBinary &&
            u->op == logical::BinaryOp::kEq) {
          bool l0 = AllColumnsResolve(u->children[0], left->schema());
          bool r1 = AllColumnsResolve(u->children[1], right->schema());
          bool l1 = AllColumnsResolve(u->children[1], left->schema());
          bool r0 = AllColumnsResolve(u->children[0], right->schema());
          if (l0 && r1 && !logical::IsConstant(u->children[0]) &&
              !logical::IsConstant(u->children[1])) {
            new_on.emplace_back(u->children[0], u->children[1]);
            kind = JoinKind::kInner;
            continue;
          }
          if (l1 && r0 && !logical::IsConstant(u->children[0]) &&
              !logical::IsConstant(u->children[1])) {
            new_on.emplace_back(u->children[1], u->children[0]);
            kind = JoinKind::kInner;
            continue;
          }
        }
        remaining->push_back(p);
      }
      if (kind == JoinKind::kCross && !new_on.empty()) kind = JoinKind::kInner;
      std::vector<ExprPtr> leftover_l, leftover_r;
      FUSION_ASSIGN_OR_RAISE(PlanPtr new_left,
                             PushPredicates(left, to_left, &leftover_l));
      FUSION_ASSIGN_OR_RAISE(PlanPtr new_right,
                             PushPredicates(right, to_right, &leftover_r));
      if (!leftover_l.empty()) {
        FUSION_ASSIGN_OR_RAISE(
            new_left,
            logical::MakeFilter(std::move(new_left),
                                logical::Conjunction(leftover_l)));
      }
      if (!leftover_r.empty()) {
        FUSION_ASSIGN_OR_RAISE(
            new_right,
            logical::MakeFilter(std::move(new_right),
                                logical::Conjunction(leftover_r)));
      }
      return logical::MakeJoin(std::move(new_left), std::move(new_right), kind,
                               std::move(new_on), plan->join_filter);
    }
    case PlanKind::kTableScan: {
      std::vector<ExprPtr> scan_filters = plan->scan_filters;
      for (const auto& p : preds) {
        auto lowered = TryLowerPredicate(p);
        if (!lowered) {
          remaining->push_back(p);
          continue;
        }
        switch (plan->provider->SupportsFilterPushdown(*lowered)) {
          case catalog::FilterPushdown::kExact:
            scan_filters.push_back(p);
            break;
          case catalog::FilterPushdown::kInexact:
            scan_filters.push_back(p);
            remaining->push_back(p);
            break;
          case catalog::FilterPushdown::kUnsupported:
            remaining->push_back(p);
            break;
        }
      }
      return logical::MakeTableScan(plan->table_name, plan->provider,
                                    plan->scan_projection, std::move(scan_filters),
                                    plan->scan_limit);
    }
    default:
      for (auto& p : preds) remaining->push_back(std::move(p));
      return plan;
  }
}

class FilterPushdownRule : public OptimizerRule {
 public:
  std::string name() const override { return "filter_pushdown"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [](const PlanPtr& node) -> Result<PlanPtr> {
      if (node->kind != PlanKind::kFilter) return node;
      std::vector<ExprPtr> preds;
      logical::SplitConjunction(node->predicate, &preds);
      std::vector<ExprPtr> remaining;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child,
                             PushPredicates(node->child(0), preds, &remaining));
      if (remaining.empty()) return child;
      return logical::MakeFilter(std::move(child),
                                 logical::Conjunction(remaining));
    });
  }
};

class LimitPushdownRule : public OptimizerRule {
 public:
  std::string name() const override { return "limit_pushdown"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [](const PlanPtr& node) -> Result<PlanPtr> {
      if (node->kind != PlanKind::kLimit || node->fetch < 0) return node;
      int64_t n = node->skip + node->fetch;
      FUSION_ASSIGN_OR_RAISE(PlanPtr child, PushLimit(node->child(0), n));
      if (child == node->child(0)) return node;
      return logical::MakeLimit(std::move(child), node->skip, node->fetch);
    });
  }

 private:
  /// Propagate a fetch hint downward; the Limit node itself remains.
  static Result<PlanPtr> PushLimit(const PlanPtr& plan, int64_t n) {
    switch (plan->kind) {
      case PlanKind::kSort: {
        int64_t fetch = plan->fetch < 0 ? n : std::min(plan->fetch, n);
        if (fetch == plan->fetch) return plan;
        return logical::MakeSort(plan->child(0), plan->sort_exprs, fetch);
      }
      case PlanKind::kProjection: {
        FUSION_ASSIGN_OR_RAISE(PlanPtr child, PushLimit(plan->child(0), n));
        if (child == plan->child(0)) return plan;
        return logical::MakeProjection(std::move(child), plan->exprs);
      }
      case PlanKind::kSubqueryAlias: {
        FUSION_ASSIGN_OR_RAISE(PlanPtr child, PushLimit(plan->child(0), n));
        if (child == plan->child(0)) return plan;
        return logical::MakeSubqueryAlias(std::move(child), plan->alias);
      }
      case PlanKind::kTableScan: {
        if (!plan->scan_filters.empty()) return plan;  // limit applies post-filter
        int64_t limit =
            plan->scan_limit < 0 ? n : std::min(plan->scan_limit, n);
        if (limit == plan->scan_limit) return plan;
        return logical::MakeTableScan(plan->table_name, plan->provider,
                                      plan->scan_projection, plan->scan_filters,
                                      limit);
      }
      default:
        return plan;
    }
  }
};

}  // namespace

OptimizerRulePtr MakeFilterPushdownRule() {
  return std::make_shared<FilterPushdownRule>();
}

OptimizerRulePtr MakeLimitPushdownRule() {
  return std::make_shared<LimitPushdownRule>();
}

}  // namespace optimizer
}  // namespace fusion
