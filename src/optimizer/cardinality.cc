#include "optimizer/cardinality.h"

#include <algorithm>

#include "logical/interval_analysis.h"

namespace fusion {
namespace optimizer {

using logical::Expr;
using logical::ExprPtr;
using logical::JoinKind;
using logical::PlanKind;
using logical::PlanPtr;

namespace {

/// Distinct-value estimate for output column `idx` of `plan`, traced
/// positionally to a leaf's column statistics; -1 when unknown.
double ColumnNdvByIndex(const PlanPtr& plan, int idx) {
  if (idx < 0 || idx >= plan->schema().num_fields()) return -1;
  switch (plan->kind) {
    case PlanKind::kTableScan: {
      auto stats = plan->provider->statistics();
      int table_idx = idx;
      if (!plan->scan_projection.empty()) {
        if (idx >= static_cast<int>(plan->scan_projection.size())) return -1;
        table_idx = plan->scan_projection[idx];
      }
      if (table_idx < 0 ||
          table_idx >= static_cast<int>(stats.column_stats.size())) {
        return -1;
      }
      int64_t ndv = stats.column_stats[table_idx].ndv;
      if (ndv < 0) return -1;
      // Cap at the unfiltered row count, NOT EstimateRows(plan): the
      // scan's row estimate consults filter selectivities, which in turn
      // ask for column NDVs — capping by it here would recurse forever.
      double rows = stats.num_rows.has_value()
                        ? static_cast<double>(*stats.num_rows)
                        : static_cast<double>(ndv);
      return std::min(static_cast<double>(ndv), rows);
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kSubqueryAlias:
    case PlanKind::kDistinct: {
      double ndv = ColumnNdvByIndex(plan->child(0), idx);
      if (ndv < 0) return -1;
      return std::min(ndv, EstimateRows(plan));
    }
    case PlanKind::kProjection: {
      if (idx >= static_cast<int>(plan->exprs.size())) return -1;
      const ExprPtr& u = logical::Unalias(plan->exprs[idx]);
      if (u->kind != Expr::Kind::kColumn) return -1;
      auto child_idx = plan->child(0)->schema().IndexOf(u->qualifier, u->name);
      if (!child_idx.ok()) return -1;
      return ColumnNdvByIndex(plan->child(0), *child_idx);
    }
    case PlanKind::kAggregate: {
      // Group keys come first in the aggregate's output schema.
      if (idx >= static_cast<int>(plan->group_exprs.size())) return -1;
      const ExprPtr& u = logical::Unalias(plan->group_exprs[idx]);
      if (u->kind != Expr::Kind::kColumn) return -1;
      auto child_idx = plan->child(0)->schema().IndexOf(u->qualifier, u->name);
      if (!child_idx.ok()) return -1;
      double ndv = ColumnNdvByIndex(plan->child(0), *child_idx);
      if (ndv < 0) return -1;
      return std::min(ndv, EstimateRows(plan));
    }
    case PlanKind::kJoin: {
      // Joins never mint new key values; trace into the producing side.
      // Semi/anti joins expose only the preserved side's schema, the
      // rest concatenate left-then-right.
      double ndv;
      if (plan->join_kind == JoinKind::kLeftSemi ||
          plan->join_kind == JoinKind::kLeftAnti) {
        ndv = ColumnNdvByIndex(plan->child(0), idx);
      } else if (plan->join_kind == JoinKind::kRightSemi ||
                 plan->join_kind == JoinKind::kRightAnti) {
        ndv = ColumnNdvByIndex(plan->child(1), idx);
      } else {
        const int left_fields = plan->child(0)->schema().num_fields();
        ndv = idx < left_fields
                  ? ColumnNdvByIndex(plan->child(0), idx)
                  : ColumnNdvByIndex(plan->child(1), idx - left_fields);
      }
      if (ndv < 0) return -1;
      return std::min(ndv, EstimateRows(plan));
    }
    default:
      return -1;
  }
}

/// Selectivity of one pushed-down scan filter: 1/ndv for an equality
/// against a column with known distinct count, the interval-analysis
/// heuristic otherwise.
double ScanFilterSelectivity(const PlanPtr& plan, const ExprPtr& filter) {
  const ExprPtr& u = logical::Unalias(filter);
  if (u->kind == Expr::Kind::kBinary && u->op == logical::BinaryOp::kEq) {
    const ExprPtr& a = logical::Unalias(u->children[0]);
    const ExprPtr& b = logical::Unalias(u->children[1]);
    const ExprPtr* col = nullptr;
    if (a->kind == Expr::Kind::kColumn && b->kind == Expr::Kind::kLiteral) {
      col = &a;
    } else if (b->kind == Expr::Kind::kColumn &&
               a->kind == Expr::Kind::kLiteral) {
      col = &b;
    }
    if (col != nullptr) {
      auto idx = plan->schema().IndexOf((*col)->qualifier, (*col)->name);
      if (idx.ok()) {
        double ndv = ColumnNdvByIndex(plan, *idx);
        if (ndv >= 1.0) return 1.0 / ndv;
      }
    }
  }
  return logical::EstimateSelectivity(filter);
}

}  // namespace

double EstimateJoinRows(
    const PlanPtr& left, const PlanPtr& right,
    const std::vector<std::pair<ExprPtr, ExprPtr>>& on, JoinKind kind) {
  const double l = EstimateRows(left);
  const double r = EstimateRows(right);
  if (kind == JoinKind::kCross || on.empty()) return l * r;
  if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
    return std::max(l * 0.5, 1.0);
  }
  // |L JOIN R| = l*r / prod over keys of max(ndv_l, ndv_r). Keys with no
  // statistics on either side contribute nothing; if none have any, fall
  // back to the FK heuristic max(l, r) the engine always used.
  double denom = 1.0;
  bool any_known = false;
  for (const auto& [lk, rk] : on) {
    double dl = EstimateColumnNdv(left, lk);
    double dr = EstimateColumnNdv(right, rk);
    double d = std::max(dl, dr);
    if (d >= 1.0) {
      denom *= d;
      any_known = true;
    }
  }
  double out = any_known ? (l * r) / denom : std::max(l, r);
  out = std::min(out, l * r);
  // Outer joins preserve at least one side.
  switch (kind) {
    case JoinKind::kLeft:
      out = std::max(out, l);
      break;
    case JoinKind::kRight:
      out = std::max(out, r);
      break;
    case JoinKind::kFull:
      out = std::max(out, std::max(l, r));
      break;
    default:
      break;
  }
  return std::max(out, 1.0);
}

double EstimateColumnNdv(const PlanPtr& plan, const ExprPtr& key) {
  const ExprPtr& u = logical::Unalias(key);
  if (u->kind != Expr::Kind::kColumn) return -1;
  auto idx = plan->schema().IndexOf(u->qualifier, u->name);
  if (!idx.ok()) return -1;
  return ColumnNdvByIndex(plan, *idx);
}

double EstimateRows(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kTableScan: {
      auto stats = plan->provider->statistics();
      double rows =
          stats.num_rows.has_value() ? static_cast<double>(*stats.num_rows) : 1e6;
      for (const auto& f : plan->scan_filters) {
        rows *= ScanFilterSelectivity(plan, f);
      }
      if (plan->scan_limit >= 0) {
        rows = std::min(rows, static_cast<double>(plan->scan_limit));
      }
      return std::max(rows, 1.0);
    }
    case PlanKind::kFilter:
      return std::max(EstimateRows(plan->child(0)) *
                          logical::EstimateSelectivity(plan->predicate),
                      1.0);
    case PlanKind::kProjection:
    case PlanKind::kSort:
    case PlanKind::kSubqueryAlias:
    case PlanKind::kWindow:
      return EstimateRows(plan->child(0));
    case PlanKind::kLimit:
      return plan->fetch >= 0 ? std::min(EstimateRows(plan->child(0)),
                                         static_cast<double>(plan->fetch))
                              : EstimateRows(plan->child(0));
    case PlanKind::kAggregate: {
      // Grouped output = product of the group keys' distinct counts when
      // known, the old 10% heuristic otherwise.
      double input = EstimateRows(plan->child(0));
      if (plan->group_exprs.empty()) return 1.0;
      double groups = 1.0;
      bool any_known = false;
      for (const auto& g : plan->group_exprs) {
        double ndv = EstimateColumnNdv(plan->child(0), g);
        if (ndv >= 1.0) {
          groups *= ndv;
          any_known = true;
        }
      }
      if (!any_known) return std::max(input * 0.1, 1.0);
      return std::max(std::min(groups, input), 1.0);
    }
    case PlanKind::kDistinct:
      return std::max(EstimateRows(plan->child(0)) * 0.5, 1.0);
    case PlanKind::kJoin:
      return EstimateJoinRows(plan->child(0), plan->child(1), plan->join_on,
                              plan->join_kind);
    case PlanKind::kUnion: {
      double total = 0;
      for (const auto& c : plan->children) total += EstimateRows(c);
      return total;
    }
    default:
      return 1000.0;
  }
}

}  // namespace optimizer
}  // namespace fusion
