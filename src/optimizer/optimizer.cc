#include "optimizer/optimizer.h"

#include "logical/simplify.h"

namespace fusion {
namespace optimizer {

using logical::ExprPtr;
using logical::LogicalPlan;
using logical::PlanKind;
using logical::PlanPtr;

Optimizer Optimizer::Default() {
  Optimizer opt;
  opt.AddRule(MakeSimplifyExpressionsRule());
  opt.AddRule(MakeOuterToInnerJoinRule());
  opt.AddRule(MakeFilterPushdownRule());
  opt.AddRule(MakeCommonSubexprEliminationRule());
  opt.AddRule(MakeJoinReorderRule());
  opt.AddRule(MakeLimitPushdownRule());
  opt.AddRule(MakeProjectionPushdownRule());
  return opt;
}

Result<PlanPtr> Optimizer::Optimize(const PlanPtr& plan) const {
  PlanPtr current = plan;
  for (int round = 0; round < max_rounds; ++round) {
    for (const auto& rule : rules_) {
      FUSION_ASSIGN_OR_RAISE(current, rule->Apply(current));
    }
  }
  return current;
}

namespace {

/// Apply SimplifyExpr to every expression of every node.
class SimplifyExpressionsRule : public OptimizerRule {
 public:
  std::string name() const override { return "simplify_expressions"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [](const PlanPtr& node) -> Result<PlanPtr> {
      bool changed = false;
      auto copy = std::make_shared<LogicalPlan>(*node);
      auto simplify_all = [&](std::vector<ExprPtr>* exprs) -> Status {
        for (auto& e : *exprs) {
          FUSION_ASSIGN_OR_RAISE(auto s, logical::SimplifyExpr(e));
          if (s != e) changed = true;
          e = std::move(s);
        }
        return Status::OK();
      };
      FUSION_RETURN_NOT_OK(simplify_all(&copy->exprs));
      FUSION_RETURN_NOT_OK(simplify_all(&copy->group_exprs));
      FUSION_RETURN_NOT_OK(simplify_all(&copy->aggr_exprs));
      FUSION_RETURN_NOT_OK(simplify_all(&copy->scan_filters));
      if (copy->predicate != nullptr) {
        FUSION_ASSIGN_OR_RAISE(auto s, logical::SimplifyExpr(copy->predicate));
        if (s != copy->predicate) changed = true;
        copy->predicate = std::move(s);
      }
      if (!changed) return node;
      // Rebuild so the schema is recomputed consistently.
      std::vector<PlanPtr> children = copy->children;
      switch (copy->kind) {
        case PlanKind::kFilter:
          return logical::MakeFilter(children[0], copy->predicate);
        case PlanKind::kProjection:
          return logical::MakeProjection(children[0], copy->exprs);
        case PlanKind::kAggregate:
          return logical::MakeAggregate(children[0], copy->group_exprs,
                                        copy->aggr_exprs);
        case PlanKind::kTableScan:
          return logical::MakeTableScan(copy->table_name, copy->provider,
                                        copy->scan_projection, copy->scan_filters,
                                        copy->scan_limit);
        default:
          return node;  // windows/sorts keep their original exprs
      }
    });
  }
};

}  // namespace

OptimizerRulePtr MakeSimplifyExpressionsRule() {
  return std::make_shared<SimplifyExpressionsRule>();
}

}  // namespace optimizer
}  // namespace fusion
