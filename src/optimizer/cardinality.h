#ifndef FUSION_OPTIMIZER_CARDINALITY_H_
#define FUSION_OPTIMIZER_CARDINALITY_H_

#include <utility>
#include <vector>

#include "logical/plan.h"

namespace fusion {
namespace optimizer {

/// \brief NDV-aware cardinality estimation (paper §6.4), shared by the
/// join reorderer, the physical planner's build-side selection and
/// runtime-filter placement, and EXPLAIN's est_rows annotations.
///
/// Leaves read provider statistics (row counts plus per-column
/// ColumnStats {min, max, ndv, null_count}); unknown quantities fall
/// back to the old heuristics, so plans over stats-less providers are
/// estimated exactly as before.

/// Estimated output rows of a logical plan. Always >= 1.
double EstimateRows(const logical::PlanPtr& plan);

/// Estimated distinct non-null values `key` (a bare, possibly aliased
/// column) takes over `plan`'s output, traced through filters,
/// projections and joins down to the leaf's column statistics and
/// capped at the plan's row estimate at every step. -1 when unknown.
double EstimateColumnNdv(const logical::PlanPtr& plan,
                         const logical::ExprPtr& key);

/// Output estimate for a join of `left` and `right` on the given equi
/// pairs (left key resolves on `left`): |L JOIN R| = l*r / NDV of the
/// join keys, falling back to max(l, r) when no key statistics exist.
double EstimateJoinRows(
    const logical::PlanPtr& left, const logical::PlanPtr& right,
    const std::vector<std::pair<logical::ExprPtr, logical::ExprPtr>>& on,
    logical::JoinKind kind);

}  // namespace optimizer
}  // namespace fusion

#endif  // FUSION_OPTIMIZER_CARDINALITY_H_
