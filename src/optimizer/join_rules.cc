#include <algorithm>
#include <map>

#include "logical/interval_analysis.h"
#include "logical/sql_planner.h"
#include "optimizer/cardinality.h"
#include "optimizer/optimizer.h"

namespace fusion {
namespace optimizer {

using logical::Expr;
using logical::ExprPtr;
using logical::JoinKind;
using logical::LogicalPlan;
using logical::PlanKind;
using logical::PlanPtr;

namespace {

bool ResolvesOn(const ExprPtr& e, const logical::PlanSchema& schema) {
  std::vector<ExprPtr> cols;
  logical::CollectColumns(e, &cols);
  if (cols.empty()) return false;
  for (const auto& c : cols) {
    if (!schema.IndexOf(c->qualifier, c->name).ok()) return false;
  }
  return true;
}

struct JoinEdge {
  ExprPtr left_key;
  ExprPtr right_key;
};

/// Flatten a tree of inner equi-joins (without residual filters) into
/// base relations + equi edges.
void Flatten(const PlanPtr& plan, std::vector<PlanPtr>* relations,
             std::vector<JoinEdge>* edges) {
  if (plan->kind == PlanKind::kJoin && plan->join_kind == JoinKind::kInner &&
      plan->join_filter == nullptr && !plan->join_on.empty()) {
    Flatten(plan->child(0), relations, edges);
    Flatten(plan->child(1), relations, edges);
    for (const auto& [l, r] : plan->join_on) {
      edges->push_back({l, r});
    }
    return;
  }
  relations->push_back(plan);
}

/// Greedy left-deep reordering: start from the smallest relation, then
/// repeatedly join the connected relation whose join produces the
/// smallest estimated output (NDV-based; falls back to smallest-input
/// when no key statistics exist, the pre-statistics behavior).
Result<PlanPtr> Reorder(std::vector<PlanPtr> relations,
                        std::vector<JoinEdge> edges) {
  std::vector<double> sizes;
  sizes.reserve(relations.size());
  for (const auto& r : relations) sizes.push_back(EstimateRows(r));

  size_t start = 0;
  for (size_t i = 1; i < relations.size(); ++i) {
    if (sizes[i] < sizes[start]) start = i;
  }
  PlanPtr current = relations[start];
  std::vector<bool> used(relations.size(), false);
  used[start] = true;
  std::vector<bool> edge_used(edges.size(), false);
  size_t joined = 1;

  // The unused equi edges between `current` and relation `r`, oriented
  // (current key, rel key). Does not mark edges used.
  auto gather_on = [&](const PlanPtr& rel) {
    std::vector<std::pair<ExprPtr, ExprPtr>> on;
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edge_used[e]) continue;
      const bool l_cur = ResolvesOn(edges[e].left_key, current->schema());
      const bool r_rel = ResolvesOn(edges[e].right_key, rel->schema());
      const bool r_cur = ResolvesOn(edges[e].right_key, current->schema());
      const bool l_rel = ResolvesOn(edges[e].left_key, rel->schema());
      if (l_cur && r_rel) {
        on.emplace_back(edges[e].left_key, edges[e].right_key);
      } else if (r_cur && l_rel) {
        on.emplace_back(edges[e].right_key, edges[e].left_key);
      }
    }
    return on;
  };

  while (joined < relations.size()) {
    // Among relations connected to `current` by at least one unused
    // edge, pick the one minimizing the estimated join output (input
    // size breaks ties so stats-less plans reorder as before).
    int best_rel = -1;
    double best_est = 0;
    double best_size = 0;
    for (size_t r = 0; r < relations.size(); ++r) {
      if (used[r]) continue;
      auto on = gather_on(relations[r]);
      if (on.empty()) continue;
      double est =
          EstimateJoinRows(current, relations[r], on, JoinKind::kInner);
      if (best_rel < 0 || est < best_est ||
          (est == best_est && sizes[r] < best_size)) {
        best_rel = static_cast<int>(r);
        best_est = est;
        best_size = sizes[r];
      }
    }
    if (best_rel < 0) {
      // Disconnected: cross join with the smallest remaining relation.
      for (size_t r = 0; r < relations.size(); ++r) {
        if (used[r]) continue;
        if (best_rel < 0 || sizes[r] < best_size) {
          best_rel = static_cast<int>(r);
          best_size = sizes[r];
        }
      }
      FUSION_ASSIGN_OR_RAISE(current,
                             logical::MakeCrossJoin(current, relations[best_rel]));
      used[best_rel] = true;
      ++joined;
      continue;
    }
    // Claim the edges between current and the chosen relation.
    std::vector<std::pair<ExprPtr, ExprPtr>> on;
    const PlanPtr& rel = relations[best_rel];
    for (size_t e = 0; e < edges.size(); ++e) {
      if (edge_used[e]) continue;
      const bool l_cur = ResolvesOn(edges[e].left_key, current->schema());
      const bool r_rel = ResolvesOn(edges[e].right_key, rel->schema());
      const bool r_cur = ResolvesOn(edges[e].right_key, current->schema());
      const bool l_rel = ResolvesOn(edges[e].left_key, rel->schema());
      if (l_cur && r_rel) {
        on.emplace_back(edges[e].left_key, edges[e].right_key);
        edge_used[e] = true;
      } else if (r_cur && l_rel) {
        on.emplace_back(edges[e].right_key, edges[e].left_key);
        edge_used[e] = true;
      }
    }
    FUSION_ASSIGN_OR_RAISE(
        current, logical::MakeJoin(current, rel, JoinKind::kInner, std::move(on)));
    used[best_rel] = true;
    ++joined;
  }
  // Any edge whose endpoints both landed inside the final plan without
  // being used becomes a post-join filter.
  std::vector<ExprPtr> leftover;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (edge_used[e]) continue;
    leftover.push_back(
        logical::Binary(edges[e].left_key, logical::BinaryOp::kEq,
                        edges[e].right_key));
  }
  if (!leftover.empty()) {
    FUSION_ASSIGN_OR_RAISE(
        current, logical::MakeFilter(current, logical::Conjunction(leftover)));
  }
  return current;
}

class JoinReorderRule : public OptimizerRule {
 public:
  std::string name() const override { return "join_reorder"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [&](const PlanPtr& node) -> Result<PlanPtr> {
      if (node->kind != PlanKind::kJoin || node->join_kind != JoinKind::kInner ||
          node->join_filter != nullptr || node->join_on.empty()) {
        return node;
      }
      // Only fire at the top of a join chain (the parent is not an
      // inner join itself).
      std::vector<PlanPtr> relations;
      std::vector<JoinEdge> edges;
      Flatten(node, &relations, &edges);
      if (relations.size() < 3) return node;
      // The output schema of the reordered join is a permutation of the
      // original columns; wrap in a projection restoring the original
      // column order.
      const logical::PlanSchema& schema = node->schema();
      FUSION_ASSIGN_OR_RAISE(PlanPtr reordered,
                             Reorder(std::move(relations), std::move(edges)));
      // Idempotence: if the greedy order matches the existing plan, keep
      // the original node (avoids stacking restore-projections).
      if (reordered->ToString() == node->ToString()) return node;
      std::vector<ExprPtr> restore;
      for (int i = 0; i < schema.num_fields(); ++i) {
        restore.push_back(
            logical::Col(schema.qualifier(i), schema.field(i).name()));
      }
      return logical::MakeProjection(std::move(reordered), restore);
    });
  }
};

/// LEFT/RIGHT -> INNER when a filter above rejects nulls from the
/// null-extended side (paper §6.1: outer-to-inner join conversion).
class OuterToInnerJoinRule : public OptimizerRule {
 public:
  std::string name() const override { return "outer_to_inner_join"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [](const PlanPtr& node) -> Result<PlanPtr> {
      if (node->kind != PlanKind::kFilter) return node;
      const PlanPtr& child = node->child(0);
      if (child->kind != PlanKind::kJoin) return node;
      if (child->join_kind != JoinKind::kLeft &&
          child->join_kind != JoinKind::kRight) {
        return node;
      }
      const PlanPtr& nullable_side =
          child->join_kind == JoinKind::kLeft ? child->child(1) : child->child(0);
      std::vector<ExprPtr> conjuncts;
      logical::SplitConjunction(node->predicate, &conjuncts);
      bool null_rejecting = false;
      for (const auto& c : conjuncts) {
        const ExprPtr& u = logical::Unalias(c);
        // Comparisons and IS NOT NULL over a nullable-side column reject
        // null-extended rows.
        bool rejects = (u->kind == Expr::Kind::kBinary &&
                        logical::IsComparisonOp(u->op)) ||
                       u->kind == Expr::Kind::kIsNotNull ||
                       u->kind == Expr::Kind::kLike ||
                       u->kind == Expr::Kind::kInList;
        if (!rejects) continue;
        std::vector<ExprPtr> cols;
        logical::CollectColumns(u, &cols);
        for (const auto& col : cols) {
          if (nullable_side->schema().IndexOf(col->qualifier, col->name).ok()) {
            null_rejecting = true;
            break;
          }
        }
        if (null_rejecting) break;
      }
      if (!null_rejecting) return node;
      FUSION_ASSIGN_OR_RAISE(
          PlanPtr inner,
          logical::MakeJoin(child->child(0), child->child(1), JoinKind::kInner,
                            child->join_on, child->join_filter));
      return logical::MakeFilter(std::move(inner), node->predicate);
    });
  }
};

/// Factor repeated non-trivial subexpressions of a projection into a
/// lower projection evaluated once (paper §6.1: CSE).
class CommonSubexprEliminationRule : public OptimizerRule {
 public:
  std::string name() const override { return "common_subexpr_elimination"; }

  Result<PlanPtr> Apply(const PlanPtr& plan) override {
    return logical::TransformPlan(plan, [](const PlanPtr& node) -> Result<PlanPtr> {
      if (node->kind != PlanKind::kProjection) return node;
      // Count candidate subexpressions across all projection exprs.
      std::map<std::string, std::pair<ExprPtr, int>> counts;
      for (const auto& e : node->exprs) {
        logical::VisitExpr(e, [&](const ExprPtr& sub) {
          switch (sub->kind) {
            case Expr::Kind::kColumn:
            case Expr::Kind::kLiteral:
            case Expr::Kind::kAlias:
            case Expr::Kind::kAggregate:
            case Expr::Kind::kWindow:
              return true;
            default:
              break;
          }
          auto [it, inserted] = counts.emplace(sub->ToString(), std::make_pair(sub, 0));
          ++it->second.second;
          return true;
        });
      }
      std::vector<ExprPtr> common;
      for (const auto& [key, entry] : counts) {
        if (entry.second >= 2) common.push_back(entry.first);
      }
      if (common.empty()) return node;
      // Drop candidates nested inside other candidates (factor only the
      // outermost ones).
      std::vector<ExprPtr> outer;
      for (const auto& c : common) {
        bool nested = false;
        for (const auto& other : common) {
          if (other == c) continue;
          bool contains = false;
          logical::VisitExpr(other, [&](const ExprPtr& sub) {
            if (sub != other && sub->ToString() == c->ToString()) contains = true;
            return true;
          });
          if (contains) {
            nested = true;
            break;
          }
        }
        if (!nested) outer.push_back(c);
      }
      if (outer.empty()) return node;

      // Lower projection: all input columns + factored exprs.
      const logical::PlanSchema& in = node->child(0)->schema();
      std::vector<ExprPtr> lower;
      for (int i = 0; i < in.num_fields(); ++i) {
        lower.push_back(logical::Col(in.qualifier(i), in.field(i).name()));
      }
      std::vector<ExprPtr> sources;
      std::vector<std::string> names;
      for (size_t i = 0; i < outer.size(); ++i) {
        std::string name = "__cse_" + std::to_string(i);
        lower.push_back(logical::AliasExpr(outer[i], name));
        sources.push_back(outer[i]);
        names.push_back(std::move(name));
      }
      FUSION_ASSIGN_OR_RAISE(PlanPtr lower_proj,
                             logical::MakeProjection(node->child(0), lower));
      std::vector<ExprPtr> upper;
      for (const auto& e : node->exprs) {
        FUSION_ASSIGN_OR_RAISE(auto rewritten,
                               logical::RewriteToColumns(e, sources, names));
        // Preserve output naming.
        if (rewritten->DisplayName() != e->DisplayName()) {
          rewritten = logical::AliasExpr(rewritten, e->DisplayName());
        }
        upper.push_back(std::move(rewritten));
      }
      return logical::MakeProjection(std::move(lower_proj), upper);
    });
  }
};

}  // namespace

OptimizerRulePtr MakeJoinReorderRule() { return std::make_shared<JoinReorderRule>(); }

OptimizerRulePtr MakeOuterToInnerJoinRule() {
  return std::make_shared<OuterToInnerJoinRule>();
}

OptimizerRulePtr MakeCommonSubexprEliminationRule() {
  return std::make_shared<CommonSubexprEliminationRule>();
}

}  // namespace optimizer
}  // namespace fusion
