#ifndef FUSION_OPTIMIZER_PREDICATE_LOWERING_H_
#define FUSION_OPTIMIZER_PREDICATE_LOWERING_H_

#include <optional>

#include "format/predicate.h"
#include "logical/expr.h"

namespace fusion {
namespace optimizer {

/// Try to lower a logical predicate to the format-level ColumnPredicate
/// contract (column op constant). Returns nullopt when the shape does
/// not fit (the predicate then stays in FilterExec).
std::optional<format::ColumnPredicate> TryLowerPredicate(
    const logical::ExprPtr& expr);

}  // namespace optimizer
}  // namespace fusion

#endif  // FUSION_OPTIMIZER_PREDICATE_LOWERING_H_
