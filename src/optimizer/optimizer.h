#ifndef FUSION_OPTIMIZER_OPTIMIZER_H_
#define FUSION_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "logical/plan.h"

namespace fusion {
namespace optimizer {

/// \brief A LogicalPlan rewrite (paper §7.6). Built-in optimizations and
/// user-supplied domain rules implement the same interface and can be
/// interleaved in any order.
class OptimizerRule {
 public:
  virtual ~OptimizerRule() = default;
  virtual std::string name() const = 0;
  virtual Result<logical::PlanPtr> Apply(const logical::PlanPtr& plan) = 0;
};

using OptimizerRulePtr = std::shared_ptr<OptimizerRule>;

/// \brief Pass manager running rules to fixpoint-ish (a bounded number
/// of rounds, like DataFusion's optimizer).
class Optimizer {
 public:
  /// The default rule set (paper §6.1): expression simplification,
  /// outer-to-inner conversion, filter pushdown, limit pushdown, join
  /// reordering, projection pushdown.
  static Optimizer Default();

  /// An optimizer with no rules (for tests / EXPLAIN of raw plans).
  Optimizer() = default;

  void AddRule(OptimizerRulePtr rule) { rules_.push_back(std::move(rule)); }
  const std::vector<OptimizerRulePtr>& rules() const { return rules_; }

  Result<logical::PlanPtr> Optimize(const logical::PlanPtr& plan) const;

  int max_rounds = 2;

 private:
  std::vector<OptimizerRulePtr> rules_;
};

// Built-in rules ----------------------------------------------------------

/// Constant folding + boolean simplification over every expression.
OptimizerRulePtr MakeSimplifyExpressionsRule();
/// Push filter conjuncts toward (and into) data sources.
OptimizerRulePtr MakeFilterPushdownRule();
/// Push column requirements into TableScans.
OptimizerRulePtr MakeProjectionPushdownRule();
/// Push LIMIT into Sort (Top-K) and TableScan.
OptimizerRulePtr MakeLimitPushdownRule();
/// Convert LEFT/RIGHT joins to INNER when a null-rejecting filter above
/// references the nullable side.
OptimizerRulePtr MakeOuterToInnerJoinRule();
/// Reorder consecutive inner equi-joins by estimated input size.
OptimizerRulePtr MakeJoinReorderRule();
/// Eliminate duplicated non-trivial subexpressions within a projection.
OptimizerRulePtr MakeCommonSubexprEliminationRule();

}  // namespace optimizer
}  // namespace fusion

#endif  // FUSION_OPTIMIZER_OPTIMIZER_H_
