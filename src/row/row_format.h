#ifndef FUSION_ROW_ROW_FORMAT_H_
#define FUSION_ROW_ROW_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "arrow/array.h"
#include "arrow/record_batch.h"
#include "common/result.h"

namespace fusion {
namespace row {

/// Per-column sort options (SQL ASC/DESC, NULLS FIRST/LAST).
struct SortOptions {
  bool descending = false;
  bool nulls_first = false;  // SQL default: NULLS LAST for ASC

  bool operator==(const SortOptions&) const = default;
};

/// \brief Normalized-key encoder (paper §6.6): encodes one row of the
/// key columns into a byte string whose memcmp order equals the logical
/// multi-column sort order.
///
/// Encoding per column:
///  - a marker byte placing nulls before/after values per SortOptions
///  - integers: big-endian with the sign bit flipped
///  - floats: IEEE bits mapped to a totally ordered integer
///  - strings: 0x00-escaped bytes with a two-byte terminator so that
///    prefixes order correctly
///  - DESC columns: all payload bytes inverted
class RowEncoder {
 public:
  RowEncoder(std::vector<DataType> types, std::vector<SortOptions> options);

  /// Encode all rows of `columns` (parallel to the configured types),
  /// appending one key per row to `keys`.
  Status EncodeColumns(const std::vector<ArrayPtr>& columns,
                       std::vector<std::string>* keys) const;

  /// Encode a single row.
  Status EncodeRow(const std::vector<ArrayPtr>& columns, int64_t row,
                   std::string* key) const;

  const std::vector<DataType>& types() const { return types_; }
  const std::vector<SortOptions>& options() const { return options_; }

 private:
  std::vector<DataType> types_;
  std::vector<SortOptions> options_;
};

/// An encoded key's position inside a bump-allocated arena buffer.
struct KeySlice {
  uint64_t offset = 0;
  uint32_t length = 0;
};

/// \brief Equality-only row encoding for grouping and join keys: faster
/// than the sortable encoding (no escaping), not memcmp-ordered.
/// Layout per column: 1 null byte, then fixed-width raw value or
/// u32 length + bytes for strings. Doubles are canonicalized
/// (-0.0 -> 0.0, any NaN -> one quiet NaN) so byte equality matches
/// grouping equality.
class GroupKeyEncoder {
 public:
  explicit GroupKeyEncoder(std::vector<DataType> types);

  /// Append the encoded key for `row` to `*key` (caller clears).
  void EncodeRow(const std::vector<ArrayPtr>& columns, int64_t row,
                 std::string* key) const;

  /// Bulk path for the vectorized group table: encode every row of
  /// `columns` into `*arena` (appended; existing bytes are kept) and
  /// record each row's (offset,len) slot in `*slices` (overwritten).
  /// Column-at-a-time fill: per-row widths are sized in one pass per
  /// column, then values are written through running cursors, so the
  /// hot loop performs no heap allocation.
  Status EncodeColumnsToArena(const std::vector<ArrayPtr>& columns,
                              std::vector<uint8_t>* arena,
                              std::vector<KeySlice>* slices) const;

  /// Decode `num_keys` keys back into one array per key column.
  Result<std::vector<ArrayPtr>> DecodeKeys(const std::vector<std::string>& keys) const;

  /// Decode from string_views (e.g. hash table keys).
  Result<std::vector<ArrayPtr>> DecodeKeyViews(
      const std::vector<std::string_view>& keys) const;

  const std::vector<DataType>& types() const { return types_; }

 private:
  std::vector<DataType> types_;
};

/// Compare row `li` of `left_cols` with row `ri` of `right_cols` under
/// `options` without encoding (the oracle the RowEncoder is tested
/// against, and the comparator for merge joins). Returns <0, 0, >0.
int CompareRows(const std::vector<ArrayPtr>& left_cols, int64_t li,
                const std::vector<ArrayPtr>& right_cols, int64_t ri,
                const std::vector<SortOptions>& options);

/// Stable multi-column sort: returns row indices of `columns` in sorted
/// order, using normalized keys for large inputs.
Result<std::vector<int64_t>> SortIndices(const std::vector<ArrayPtr>& columns,
                                         const std::vector<SortOptions>& options);

}  // namespace row
}  // namespace fusion

#endif  // FUSION_ROW_ROW_FORMAT_H_
