#include "row/row_format.h"

#include <algorithm>
#include <functional>
#include <cstring>
#include <numeric>
#include <type_traits>

#include "arrow/builder.h"
#include "common/hash_util.h"

namespace fusion {
namespace row {

namespace {

// Marker bytes chosen so memcmp places nulls per SortOptions.
constexpr char kNullFirstMarker = '\x00';
constexpr char kValidAfterNullMarker = '\x01';
constexpr char kValidBeforeNullMarker = '\x00';
constexpr char kNullLastMarker = '\x01';

void AppendBigEndian(uint64_t bits, int width, bool invert, std::string* out) {
  for (int b = width - 1; b >= 0; --b) {
    char byte = static_cast<char>((bits >> (b * 8)) & 0xff);
    out->push_back(invert ? static_cast<char>(~byte) : byte);
  }
}

uint64_t OrderableBitsInt(int64_t v, int width) {
  // Flip the sign bit so negative values order below positive ones.
  uint64_t bits = static_cast<uint64_t>(v);
  bits ^= uint64_t(1) << (width * 8 - 1);
  return bits;
}

uint64_t OrderableBitsDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  // Negative floats: invert all bits; positives: set the sign bit.
  if (bits & (uint64_t(1) << 63)) {
    return ~bits;
  }
  return bits | (uint64_t(1) << 63);
}

void AppendBigEndianDecimal(Decimal128 v, bool invert, std::string* out) {
  // High limb first with the sign bit flipped, then the unsigned low
  // limb: byte-wise memcmp then orders the full 128-bit value.
  AppendBigEndian(OrderableBitsInt(v.hi, 8), 8, invert, out);
  AppendBigEndian(v.lo, 8, invert, out);
}

void AppendEscapedString(std::string_view s, bool invert, std::string* out) {
  // 0x00 -> 0x00 0xFF, terminator 0x00 0x00 so "a" sorts before "ab".
  for (char c : s) {
    if (c == '\x00') {
      out->push_back(invert ? static_cast<char>(~'\x00') : '\x00');
      out->push_back(invert ? static_cast<char>(~'\xff') : '\xff');
    } else {
      out->push_back(invert ? static_cast<char>(~c) : c);
    }
  }
  out->push_back(invert ? static_cast<char>(~'\x00') : '\x00');
  out->push_back(invert ? static_cast<char>(~'\x00') : '\x00');
}

Status EncodeValue(const Array& col, int64_t row, const SortOptions& opt,
                   std::string* key) {
  const bool null = col.IsNull(row);
  if (opt.nulls_first) {
    key->push_back(null ? kNullFirstMarker : kValidAfterNullMarker);
  } else {
    key->push_back(null ? kNullLastMarker : kValidBeforeNullMarker);
  }
  if (null) return Status::OK();
  const bool inv = opt.descending;
  switch (col.type().id()) {
    case TypeId::kBool: {
      char b = checked_cast<BooleanArray>(col).Value(row) ? '\x01' : '\x00';
      key->push_back(inv ? static_cast<char>(~b) : b);
      return Status::OK();
    }
    case TypeId::kInt32:
    case TypeId::kDate32:
      AppendBigEndian(
          OrderableBitsInt(checked_cast<Int32Array>(col).Value(row), 4), 4, inv, key);
      return Status::OK();
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      AppendBigEndian(
          OrderableBitsInt(checked_cast<Int64Array>(col).Value(row), 8), 8, inv, key);
      return Status::OK();
    case TypeId::kFloat64:
      AppendBigEndian(OrderableBitsDouble(checked_cast<Float64Array>(col).Value(row)),
                      8, inv, key);
      return Status::OK();
    case TypeId::kDecimal128:
      AppendBigEndianDecimal(checked_cast<Decimal128Array>(col).Value(row), inv,
                             key);
      return Status::OK();
    case TypeId::kString:
    case TypeId::kDictionary:
      AppendEscapedString(StringLikeValue(col, row), inv, key);
      return Status::OK();
    case TypeId::kNull:
      return Status::OK();
  }
  return Status::TypeError("RowEncoder: unsupported type " + col.type().ToString());
}

}  // namespace

RowEncoder::RowEncoder(std::vector<DataType> types, std::vector<SortOptions> options)
    : types_(std::move(types)), options_(std::move(options)) {
  if (options_.size() < types_.size()) options_.resize(types_.size());
}

Status RowEncoder::EncodeRow(const std::vector<ArrayPtr>& columns, int64_t row,
                             std::string* key) const {
  for (size_t c = 0; c < columns.size(); ++c) {
    FUSION_RETURN_NOT_OK(EncodeValue(*columns[c], row, options_[c], key));
  }
  return Status::OK();
}

Status RowEncoder::EncodeColumns(const std::vector<ArrayPtr>& columns,
                                 std::vector<std::string>* keys) const {
  if (columns.empty()) return Status::Invalid("RowEncoder: no columns");
  const int64_t rows = columns[0]->length();
  size_t base = keys->size();
  keys->resize(base + rows);
  // Estimate per-row width to reserve and avoid growth in the hot loop.
  size_t fixed = 0;
  for (const auto& t : types_) fixed += 1 + t.byte_width();
  for (int64_t r = 0; r < rows; ++r) {
    std::string& key = (*keys)[base + r];
    key.reserve(fixed + 16);
    FUSION_RETURN_NOT_OK(EncodeRow(columns, r, &key));
  }
  return Status::OK();
}

GroupKeyEncoder::GroupKeyEncoder(std::vector<DataType> types)
    : types_(std::move(types)) {}

void GroupKeyEncoder::EncodeRow(const std::vector<ArrayPtr>& columns, int64_t row,
                                std::string* key) const {
  for (size_t c = 0; c < columns.size(); ++c) {
    const Array& col = *columns[c];
    if (col.IsNull(row)) {
      key->push_back('\x00');
      continue;
    }
    key->push_back('\x01');
    switch (col.type().id()) {
      case TypeId::kBool:
        key->push_back(checked_cast<BooleanArray>(col).Value(row) ? '\x01' : '\x00');
        break;
      case TypeId::kInt32:
      case TypeId::kDate32: {
        int32_t v = checked_cast<Int32Array>(col).Value(row);
        key->append(reinterpret_cast<const char*>(&v), 4);
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        int64_t v = checked_cast<Int64Array>(col).Value(row);
        key->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kFloat64: {
        double v = hash_util::CanonicalizeDouble(
            checked_cast<Float64Array>(col).Value(row));
        key->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kDecimal128: {
        Decimal128 v = checked_cast<Decimal128Array>(col).Value(row);
        key->append(reinterpret_cast<const char*>(&v), 16);
        break;
      }
      // Dictionary rows encode the referenced string so key bytes are
      // identical whichever physical encoding a batch arrived in.
      case TypeId::kString:
      case TypeId::kDictionary: {
        std::string_view v = StringLikeValue(col, row);
        uint32_t len = static_cast<uint32_t>(v.size());
        key->append(reinterpret_cast<const char*>(&len), 4);
        key->append(v.data(), v.size());
        break;
      }
      case TypeId::kNull:
        break;
    }
  }
}

namespace {

/// Add each row's encoded width for one column (validity byte + payload).
void AddColumnWidths(const Array& col, std::vector<uint64_t>* widths) {
  const int64_t rows = col.length();
  uint32_t fixed = 0;
  switch (col.type().id()) {
    case TypeId::kBool: fixed = 1; break;
    case TypeId::kInt32:
    case TypeId::kDate32: fixed = 4; break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kFloat64: fixed = 8; break;
    case TypeId::kDecimal128: fixed = 16; break;
    case TypeId::kString: {
      const auto& arr = checked_cast<StringArray>(col);
      const int32_t* offs = arr.raw_offsets();
      if (col.null_count() == 0) {
        for (int64_t r = 0; r < rows; ++r) {
          (*widths)[r] += 5 + static_cast<uint32_t>(offs[r + 1] - offs[r]);
        }
      } else {
        for (int64_t r = 0; r < rows; ++r) {
          (*widths)[r] +=
              col.IsNull(r) ? 1 : 5 + static_cast<uint32_t>(offs[r + 1] - offs[r]);
        }
      }
      return;
    }
    case TypeId::kDictionary: {
      // Width per distinct entry computed once; rows index the table.
      const auto& arr = checked_cast<DictionaryArray>(col);
      const int32_t* doffs = arr.dictionary()->raw_offsets();
      const int32_t* codes = arr.raw_codes();
      if (col.null_count() == 0) {
        for (int64_t r = 0; r < rows; ++r) {
          (*widths)[r] +=
              5 + static_cast<uint32_t>(doffs[codes[r] + 1] - doffs[codes[r]]);
        }
      } else {
        for (int64_t r = 0; r < rows; ++r) {
          (*widths)[r] +=
              col.IsNull(r)
                  ? 1
                  : 5 + static_cast<uint32_t>(doffs[codes[r] + 1] - doffs[codes[r]]);
        }
      }
      return;
    }
    case TypeId::kNull:
      for (int64_t r = 0; r < rows; ++r) (*widths)[r] += 1;
      return;
  }
  if (col.null_count() == 0) {
    for (int64_t r = 0; r < rows; ++r) (*widths)[r] += 1 + fixed;
  } else {
    for (int64_t r = 0; r < rows; ++r) {
      (*widths)[r] += col.IsNull(r) ? 1 : 1 + fixed;
    }
  }
}

template <typename CType>
void FillFixedColumn(const NumericArray<CType>& arr, uint8_t* data,
                     std::vector<uint64_t>* cursors) {
  const CType* values = arr.raw_values();
  const int64_t rows = arr.length();
  for (int64_t r = 0; r < rows; ++r) {
    uint64_t& cur = (*cursors)[r];
    if (arr.IsNull(r)) {
      data[cur++] = 0;
      continue;
    }
    data[cur++] = 1;
    CType v = values[r];
    if constexpr (std::is_same_v<CType, double>) {
      v = hash_util::CanonicalizeDouble(v);
    }
    std::memcpy(data + cur, &v, sizeof(CType));
    cur += sizeof(CType);
  }
}

}  // namespace

Status GroupKeyEncoder::EncodeColumnsToArena(const std::vector<ArrayPtr>& columns,
                                             std::vector<uint8_t>* arena,
                                             std::vector<KeySlice>* slices) const {
  if (columns.size() != types_.size()) {
    return Status::Invalid("GroupKeyEncoder: column count mismatch");
  }
  if (columns.empty()) return Status::Invalid("GroupKeyEncoder: no key columns");
  const int64_t rows = columns[0]->length();
  slices->assign(static_cast<size_t>(rows), KeySlice{});
  if (rows == 0) return Status::OK();

  // Pass 1: per-row widths, accumulated column-at-a-time.
  std::vector<uint64_t> cursors(static_cast<size_t>(rows), 0);
  for (const auto& col : columns) AddColumnWidths(*col, &cursors);

  // Turn widths into arena offsets; `cursors` becomes each row's write
  // position for pass 2.
  const uint64_t base = arena->size();
  uint64_t total = 0;
  for (int64_t r = 0; r < rows; ++r) {
    (*slices)[r].offset = base + total;
    (*slices)[r].length = static_cast<uint32_t>(cursors[r]);
    total += cursors[r];
    cursors[r] = (*slices)[r].offset;
  }
  arena->resize(base + total);
  uint8_t* data = arena->data();

  // Pass 2: fill values column-at-a-time through the running cursors.
  for (const auto& colp : columns) {
    const Array& col = *colp;
    switch (col.type().id()) {
      case TypeId::kBool: {
        const auto& arr = checked_cast<BooleanArray>(col);
        for (int64_t r = 0; r < rows; ++r) {
          uint64_t& cur = cursors[r];
          if (col.IsNull(r)) {
            data[cur++] = 0;
          } else {
            data[cur++] = 1;
            data[cur++] = arr.Value(r) ? 1 : 0;
          }
        }
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate32:
        FillFixedColumn(checked_cast<Int32Array>(col), data, &cursors);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        FillFixedColumn(checked_cast<Int64Array>(col), data, &cursors);
        break;
      case TypeId::kFloat64:
        FillFixedColumn(checked_cast<Float64Array>(col), data, &cursors);
        break;
      case TypeId::kDecimal128:
        FillFixedColumn(checked_cast<Decimal128Array>(col), data, &cursors);
        break;
      case TypeId::kString: {
        const auto& arr = checked_cast<StringArray>(col);
        for (int64_t r = 0; r < rows; ++r) {
          uint64_t& cur = cursors[r];
          if (col.IsNull(r)) {
            data[cur++] = 0;
            continue;
          }
          data[cur++] = 1;
          std::string_view v = arr.Value(r);
          uint32_t len = static_cast<uint32_t>(v.size());
          std::memcpy(data + cur, &len, 4);
          cur += 4;
          std::memcpy(data + cur, v.data(), v.size());
          cur += v.size();
        }
        break;
      }
      case TypeId::kDictionary: {
        // Dictionary-aware path: resolve each entry's bytes once, then
        // copy per row by code. Emits bytes identical to the kString
        // case, so dictionary and dense batches group together.
        const auto& arr = checked_cast<DictionaryArray>(col);
        const StringArray& dict = *arr.dictionary();
        const int32_t* doffs = dict.raw_offsets();
        const char* dbytes = reinterpret_cast<const char*>(dict.data()->data());
        const int32_t* codes = arr.raw_codes();
        for (int64_t r = 0; r < rows; ++r) {
          uint64_t& cur = cursors[r];
          if (col.IsNull(r)) {
            data[cur++] = 0;
            continue;
          }
          data[cur++] = 1;
          const int32_t code = codes[r];
          const uint32_t len = static_cast<uint32_t>(doffs[code + 1] - doffs[code]);
          std::memcpy(data + cur, &len, 4);
          cur += 4;
          std::memcpy(data + cur, dbytes + doffs[code], len);
          cur += len;
        }
        break;
      }
      case TypeId::kNull:
        for (int64_t r = 0; r < rows; ++r) data[cursors[r]++] = 0;
        break;
    }
  }
  return Status::OK();
}

namespace {

Result<std::vector<ArrayPtr>> DecodeKeysImpl(
    const std::vector<DataType>& types,
    const std::function<std::string_view(size_t)>& get, size_t num_keys) {
  std::vector<std::unique_ptr<ArrayBuilder>> builders;
  builders.reserve(types.size());
  for (DataType t : types) {
    FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(t));
    builders.push_back(std::move(b));
  }
  for (size_t k = 0; k < num_keys; ++k) {
    std::string_view key = get(k);
    size_t pos = 0;
    for (size_t c = 0; c < types.size(); ++c) {
      if (pos >= key.size()) return Status::Internal("GroupKeyEncoder: short key");
      const bool valid = key[pos++] == '\x01';
      if (!valid) {
        builders[c]->AppendNull();
        continue;
      }
      switch (types[c].id()) {
        case TypeId::kBool:
          static_cast<BooleanBuilder*>(builders[c].get())
              ->Append(key[pos++] == '\x01');
          break;
        case TypeId::kInt32:
        case TypeId::kDate32: {
          int32_t v;
          std::memcpy(&v, key.data() + pos, 4);
          pos += 4;
          static_cast<NumericBuilder<int32_t>*>(builders[c].get())->Append(v);
          break;
        }
        case TypeId::kInt64:
        case TypeId::kTimestamp: {
          int64_t v;
          std::memcpy(&v, key.data() + pos, 8);
          pos += 8;
          static_cast<NumericBuilder<int64_t>*>(builders[c].get())->Append(v);
          break;
        }
        case TypeId::kFloat64: {
          double v;
          std::memcpy(&v, key.data() + pos, 8);
          pos += 8;
          static_cast<Float64Builder*>(builders[c].get())->Append(v);
          break;
        }
        case TypeId::kDecimal128: {
          Decimal128 v;
          std::memcpy(&v, key.data() + pos, 16);
          pos += 16;
          static_cast<Decimal128Builder*>(builders[c].get())->Append(v);
          break;
        }
        case TypeId::kString: {
          uint32_t len;
          std::memcpy(&len, key.data() + pos, 4);
          pos += 4;
          static_cast<StringBuilder*>(builders[c].get())
              ->Append(key.substr(pos, len));
          pos += len;
          break;
        }
        case TypeId::kDictionary: {
          // Same key bytes as kString; re-intern on decode.
          uint32_t len;
          std::memcpy(&len, key.data() + pos, 4);
          pos += 4;
          static_cast<DictionaryBuilder*>(builders[c].get())
              ->Append(key.substr(pos, len));
          pos += len;
          break;
        }
        case TypeId::kNull:
          builders[c]->AppendNull();
          break;
      }
    }
  }
  std::vector<ArrayPtr> out;
  out.reserve(builders.size());
  for (auto& b : builders) {
    FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
    out.push_back(std::move(arr));
  }
  return out;
}

}  // namespace

Result<std::vector<ArrayPtr>> GroupKeyEncoder::DecodeKeys(
    const std::vector<std::string>& keys) const {
  return DecodeKeysImpl(types_, [&](size_t i) { return std::string_view(keys[i]); },
                        keys.size());
}

Result<std::vector<ArrayPtr>> GroupKeyEncoder::DecodeKeyViews(
    const std::vector<std::string_view>& keys) const {
  return DecodeKeysImpl(types_, [&](size_t i) { return keys[i]; }, keys.size());
}

int CompareRows(const std::vector<ArrayPtr>& left_cols, int64_t li,
                const std::vector<ArrayPtr>& right_cols, int64_t ri,
                const std::vector<SortOptions>& options) {
  for (size_t c = 0; c < left_cols.size(); ++c) {
    const SortOptions opt = c < options.size() ? options[c] : SortOptions{};
    const Array& l = *left_cols[c];
    const Array& r = *right_cols[c];
    const bool ln = l.IsNull(li);
    const bool rn = r.IsNull(ri);
    if (ln || rn) {
      if (ln && rn) continue;
      int null_cmp = ln ? -1 : 1;               // null "smaller" if nulls_first
      if (!opt.nulls_first) null_cmp = -null_cmp;  // nulls last: null "larger"
      if (null_cmp != 0) return null_cmp;
      continue;
    }
    int cmp = 0;
    if (l.type().is_string_like()) {
      int c3 = StringLikeValue(l, li).compare(StringLikeValue(r, ri));
      if (c3 != 0) return opt.descending ? (c3 < 0 ? 1 : -1) : (c3 < 0 ? -1 : 1);
      continue;
    }
    switch (l.type().id()) {
      case TypeId::kBool: {
        int a = checked_cast<BooleanArray>(l).Value(li);
        int b = checked_cast<BooleanArray>(r).Value(ri);
        cmp = a - b;
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate32: {
        int32_t a = checked_cast<Int32Array>(l).Value(li);
        int32_t b = checked_cast<Int32Array>(r).Value(ri);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        int64_t a = checked_cast<Int64Array>(l).Value(li);
        int64_t b = checked_cast<Int64Array>(r).Value(ri);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case TypeId::kFloat64: {
        double a = checked_cast<Float64Array>(l).Value(li);
        double b = checked_cast<Float64Array>(r).Value(ri);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case TypeId::kDecimal128: {
        Decimal128 a = checked_cast<Decimal128Array>(l).Value(li);
        Decimal128 b = checked_cast<Decimal128Array>(r).Value(ri);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
        break;
      }
      case TypeId::kString:
      case TypeId::kDictionary:
        break;  // string-like columns handled above the switch
      case TypeId::kNull:
        cmp = 0;
        break;
    }
    if (cmp != 0) return opt.descending ? -cmp : cmp;
  }
  return 0;
}

Result<std::vector<int64_t>> SortIndices(const std::vector<ArrayPtr>& columns,
                                         const std::vector<SortOptions>& options) {
  if (columns.empty()) return Status::Invalid("SortIndices: no sort columns");
  const int64_t rows = columns[0]->length();
  std::vector<int64_t> indices(static_cast<size_t>(rows));
  std::iota(indices.begin(), indices.end(), 0);
  if (rows < 64) {
    // Small inputs: direct comparisons beat key materialization.
    std::stable_sort(indices.begin(), indices.end(), [&](int64_t a, int64_t b) {
      return CompareRows(columns, a, columns, b, options) < 0;
    });
    return indices;
  }
  std::vector<DataType> types;
  types.reserve(columns.size());
  for (const auto& c : columns) types.push_back(c->type());
  RowEncoder encoder(std::move(types), options);
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(rows));
  FUSION_RETURN_NOT_OK(encoder.EncodeColumns(columns, &keys));
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int64_t a, int64_t b) { return keys[a] < keys[b]; });
  return indices;
}

}  // namespace row
}  // namespace fusion
