#ifndef FUSION_CORE_SESSION_CONTEXT_H_
#define FUSION_CORE_SESSION_CONTEXT_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "catalog/file_tables.h"
#include "core/plan_cache.h"
#include "exec/runtime_env.h"
#include "logical/sql_planner.h"
#include "optimizer/optimizer.h"
#include "physical/planner.h"

namespace fusion {
namespace core {

class DataFrame;

/// \brief Incremental result stream for one admitted, executing query —
/// the serving-layer entry point (the flight server streams batches to
/// sockets through this instead of materializing via ExecuteSql).
///
/// Owns the query's full execution state: the admission ticket (the
/// slot frees only on Close), the exec context (task group, token,
/// runtime filters) and the physical plan. Multi-partition plans are
/// coalesced onto one stream; producer partitions run as scheduler
/// tasks with bounded queues, so a slow consumer back-pressures
/// execution instead of buffering the result set.
///
/// Batches are returned as produced — dictionary columns still carry
/// codes (callers that need dense arrays densify at their boundary,
/// e.g. IPC serialization). Close() unwinds the task group (joining or
/// cancelling every producer) and is idempotent; abandoning the stream
/// mid-way (client disconnect) is the expected teardown path. Not
/// thread-safe; one consumer drives it.
class QueryStream {
 public:
  ~QueryStream();

  const SchemaPtr& schema() const { return schema_; }

  /// Next result batch, nullptr at end. The end-of-stream call joins the
  /// query's task group, so deferred producer errors surface here.
  Result<RecordBatchPtr> Next();

  /// Cancel the query (Next returns Status::Cancelled within a batch).
  void Cancel();

  /// Unwind: close exchange queues, join every producer task, release
  /// the admission slot. Idempotent; returns the join status.
  Status Close();

  /// The executing plan (metrics stay live on its nodes).
  const physical::ExecPlanPtr& physical_plan() const { return plan_; }

 private:
  friend class SessionContext;
  QueryStream(physical::ExecContextPtr ctx, exec::AdmissionTicket ticket,
              physical::ExecPlanPtr plan, exec::StreamPtr stream);

  physical::ExecContextPtr ctx_;
  exec::AdmissionTicket ticket_;
  physical::ExecPlanPtr plan_;
  exec::StreamPtr stream_;
  SchemaPtr schema_;
  bool finished_ = false;
  bool closed_ = false;
  Status close_status_;
};

using QueryStreamPtr = std::unique_ptr<QueryStream>;

/// Result of ExecuteSqlWithMetrics: the data plus the instrumented
/// physical plan and its per-operator runtime metrics tree.
struct QueryResult {
  std::vector<RecordBatchPtr> batches;
  /// The executed (instrumented) plan; metrics stay live on its nodes.
  physical::ExecPlanPtr physical_plan;
  /// Structured per-operator metrics, snapshotted after execution
  /// (paper §8's per-operator time attribution).
  physical::PlanMetricsNode metrics;
};

/// \brief The engine's public entry point (the analogue of DataFusion's
/// SessionContext): owns the catalog, function registry, optimizer,
/// configuration and runtime environment, and turns SQL or DataFrame
/// plans into results.
class SessionContext : public std::enable_shared_from_this<SessionContext> {
 public:
  static std::shared_ptr<SessionContext> Make(
      exec::SessionConfig config = {},
      exec::RuntimeEnvPtr env = std::make_shared<exec::RuntimeEnv>());

  // Catalog ------------------------------------------------------------
  Status RegisterTable(const std::string& name, catalog::TableProviderPtr table);
  Status DeregisterTable(const std::string& name);
  /// Register a CSV/FPQ/JSON/IPC file (or directory of files) as a table.
  Status RegisterCsv(const std::string& name, const std::string& path,
                     format::csv::Options options = {});
  Status RegisterFpq(const std::string& name, const std::string& path);
  Status RegisterJson(const std::string& name, const std::string& path);
  Status RegisterIpc(const std::string& name, const std::string& path);
  Result<catalog::TableProviderPtr> GetTable(const std::string& name) const;
  const catalog::CatalogProviderPtr& catalog_provider() const { return catalog_; }
  /// Install a custom catalog (paper §7.2).
  void SetCatalogProvider(catalog::CatalogProviderPtr catalog);

  // Functions (paper §7.1) ----------------------------------------------
  const logical::FunctionRegistryPtr& registry() const { return registry_; }
  Status RegisterScalarFunction(logical::ScalarFunctionPtr fn) {
    return registry_->RegisterScalar(std::move(fn));
  }
  Status RegisterAggregateFunction(logical::AggregateFunctionPtr fn) {
    return registry_->RegisterAggregate(std::move(fn));
  }
  Status RegisterWindowFunction(logical::WindowFunctionPtr fn) {
    return registry_->RegisterWindow(std::move(fn));
  }

  // Optimizer (paper §7.6) ---------------------------------------------
  optimizer::Optimizer* optimizer() { return &optimizer_; }
  void AddOptimizerRule(optimizer::OptimizerRulePtr rule) {
    optimizer_.AddRule(std::move(rule));
  }

  // Planning & execution --------------------------------------------------
  /// Parse + bind SQL into an (unoptimized) logical plan.
  Result<logical::PlanPtr> CreateLogicalPlan(const std::string& sql);
  /// Run the optimizer rule set.
  Result<logical::PlanPtr> OptimizePlan(const logical::PlanPtr& plan);
  /// Lower to an ExecutionPlan.
  Result<physical::ExecPlanPtr> CreatePhysicalPlan(const logical::PlanPtr& plan);

  /// Parse, plan, optimize and return a DataFrame for further
  /// composition or collection.
  Result<DataFrame> Sql(const std::string& sql);
  /// Convenience: run SQL to completion. An optional cancellation token
  /// lets another thread abort the query (Status::Cancelled) mid-flight.
  Result<std::vector<RecordBatchPtr>> ExecuteSql(
      const std::string& sql, exec::CancellationTokenPtr token = nullptr);
  /// Run SQL with a per-query deadline; returns Status::Cancelled if the
  /// query is still executing when `timeout_ms` elapses.
  Result<std::vector<RecordBatchPtr>> ExecuteSqlWithTimeout(const std::string& sql,
                                                            int64_t timeout_ms);
  /// Run SQL to completion and keep the instrumented physical plan so
  /// callers can attribute time/rows/spills to individual operators
  /// (programmatic EXPLAIN ANALYZE).
  Result<QueryResult> ExecuteSqlWithMetrics(const std::string& sql);

  /// Streaming execution: plan + admit + start the query, returning a
  /// QueryStream the caller pulls batch-by-batch (the serving path —
  /// results go out as they are produced, with backpressure, instead of
  /// materializing). Goes through the plan cache and admission control
  /// exactly like ExecuteSql.
  Result<QueryStreamPtr> ExecuteSqlStream(const std::string& sql,
                                          exec::CancellationTokenPtr token = nullptr);
  /// Streaming execution of a pre-built logical plan (prepared
  /// statements: parse once, stream many times through the plan cache).
  Result<QueryStreamPtr> ExecutePlanStream(const logical::PlanPtr& plan,
                                           exec::CancellationTokenPtr token = nullptr);

  /// DataFrame entry points (paper §5.3.3).
  Result<DataFrame> Table(const std::string& name);
  Result<DataFrame> ReadCsv(const std::string& path,
                            format::csv::Options options = {});
  Result<DataFrame> ReadFpq(const std::string& path);
  Result<DataFrame> ReadJson(const std::string& path);

  /// Execute an arbitrary plan built via LogicalPlanBuilder.
  Result<std::vector<RecordBatchPtr>> ExecutePlan(
      const logical::PlanPtr& plan, exec::CancellationTokenPtr token = nullptr);
  /// Execute a raw ExecutionPlan (e.g. a user-defined operator tree).
  Result<std::vector<RecordBatchPtr>> ExecutePhysical(
      const physical::ExecPlanPtr& plan,
      exec::CancellationTokenPtr token = nullptr);

  exec::SessionConfig& config() { return config_; }
  const exec::RuntimeEnvPtr& env() const { return env_; }

  /// The session's logical-plan cache (see core/plan_cache.h). Flushed
  /// automatically on catalog changes; call InvalidatePlanCache() after
  /// out-of-band changes (e.g. mutating a provider in place).
  PlanCache* plan_cache() { return &plan_cache_; }
  void InvalidatePlanCache() { plan_cache_.Invalidate(); }

  /// Build the per-query execution context. A session-level
  /// config().timeout_ms starts counting here; an explicit token is
  /// shared with the caller so it can Cancel() concurrently.
  physical::ExecContextPtr MakeExecContext(
      exec::CancellationTokenPtr token = nullptr);

 private:
  SessionContext(exec::SessionConfig config, exec::RuntimeEnvPtr env);

  /// Optimize `plan` through the plan cache: serialized-plan key + the
  /// catalog epoch + a config fingerprint. Falls back to a plain
  /// optimize whenever the plan cannot be serialized.
  Result<logical::PlanPtr> OptimizeCached(const logical::PlanPtr& plan);
  /// Admission gate: derive limits from config and block/reject per the
  /// scheduler's admission policy.
  Result<exec::AdmissionTicket> AdmitQuery(const physical::ExecContextPtr& ctx);
  /// Planning-relevant config rendered into the plan-cache key, so
  /// flipping an ablation switch never serves a stale plan.
  std::string ConfigFingerprint() const;

  exec::SessionConfig config_;
  exec::RuntimeEnvPtr env_;
  std::shared_ptr<catalog::MemoryCatalogProvider> default_catalog_;
  catalog::CatalogProviderPtr catalog_;
  logical::FunctionRegistryPtr registry_;
  optimizer::Optimizer optimizer_;
  std::atomic<int64_t> next_query_id_{0};
  /// Bumped on every catalog mutation; part of the plan-cache key.
  std::atomic<int64_t> catalog_epoch_{0};
  PlanCache plan_cache_;
};

using SessionContextPtr = std::shared_ptr<SessionContext>;

/// \brief Procedural plan-building API (paper §5.3.3), generating the
/// same LogicalPlans as SQL and optimized/executed identically.
class DataFrame {
 public:
  DataFrame(SessionContextPtr ctx, logical::PlanPtr plan)
      : ctx_(std::move(ctx)), plan_(std::move(plan)) {}

  const logical::PlanPtr& plan() const { return plan_; }
  const logical::PlanSchema& schema() const { return plan_->schema(); }

  Result<DataFrame> Select(std::vector<logical::ExprPtr> exprs) const;
  /// Select columns by name.
  Result<DataFrame> SelectColumns(const std::vector<std::string>& names) const;
  Result<DataFrame> Filter(logical::ExprPtr predicate) const;
  Result<DataFrame> Aggregate(std::vector<logical::ExprPtr> group_exprs,
                              std::vector<logical::ExprPtr> aggregates) const;
  Result<DataFrame> Sort(std::vector<logical::SortExpr> sort_exprs) const;
  Result<DataFrame> Limit(int64_t skip, int64_t fetch) const;
  Result<DataFrame> Join(const DataFrame& right, logical::JoinKind kind,
                         const std::vector<std::string>& left_cols,
                         const std::vector<std::string>& right_cols) const;
  Result<DataFrame> Union(const DataFrame& other) const;
  Result<DataFrame> Distinct() const;
  Result<DataFrame> WithColumn(const std::string& name,
                               logical::ExprPtr expr) const;
  Result<DataFrame> Window(std::vector<logical::ExprPtr> window_exprs) const;

  /// Execute and gather all batches; a token makes the run cancellable.
  Result<std::vector<RecordBatchPtr>> Collect(
      exec::CancellationTokenPtr token = nullptr) const;
  /// Execute and count rows.
  Result<int64_t> Count() const;
  /// Render results as an aligned table (testing/demos).
  Result<std::string> ShowString(int64_t max_rows = 40) const;

  /// The optimized logical plan (for EXPLAIN-style inspection).
  Result<logical::PlanPtr> OptimizedPlan() const;

 private:
  SessionContextPtr ctx_;
  logical::PlanPtr plan_;
};

/// Render batches as an aligned text table.
std::string FormatBatches(const std::vector<RecordBatchPtr>& batches,
                          int64_t max_rows = 40);

}  // namespace core
}  // namespace fusion

#endif  // FUSION_CORE_SESSION_CONTEXT_H_
