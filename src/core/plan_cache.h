#ifndef FUSION_CORE_PLAN_CACHE_H_
#define FUSION_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "exec/runtime_env.h"
#include "logical/plan.h"

namespace fusion {
namespace core {

/// \brief LRU of *optimized logical plans* keyed on the normalized
/// (serialized) unoptimized plan — Calcite's approach: keying on the
/// plan rather than SQL text makes equivalent DataFrame and SQL
/// templates share entries, and keeps the key independent of
/// whitespace/case.
///
/// The cached artifact is the optimized logical plan, NOT the physical
/// plan: physical operator instances are stateful one-shots (metrics
/// accumulate, lazily-built shared state like exchange queues cannot be
/// re-executed), while re-running the physical planner over a cached
/// optimized plan is cheap and always safe. What the cache skips is the
/// optimizer pass — the dominant cost of planning repeated templates.
///
/// Entries are invalidated wholesale via Invalidate() on catalog or
/// config changes; SessionContext folds a catalog epoch + config
/// fingerprint into the key as well, so stale hits are impossible even
/// if an invalidation is missed. Counters go to the shared
/// exec::PlanCacheStats so the exec-layer footer can render them.
class PlanCache {
 public:
  PlanCache(size_t capacity, exec::PlanCacheStatsPtr stats)
      : capacity_(capacity), stats_(std::move(stats)) {}

  /// Cached optimized plan for `key`, or nullptr. Counts hit/miss.
  logical::PlanPtr Get(const std::string& key);
  void Put(const std::string& key, logical::PlanPtr plan);
  /// Drop everything (catalog/config change).
  void Invalidate();
  size_t entries() const;

 private:
  const size_t capacity_;
  exec::PlanCacheStatsPtr stats_;

  mutable std::mutex mu_;
  std::map<std::string, std::pair<logical::PlanPtr,
                                  std::list<std::string>::iterator>> entries_;
  std::list<std::string> lru_;  // most recent at front
};

}  // namespace core
}  // namespace fusion

#endif  // FUSION_CORE_PLAN_CACHE_H_
