#ifndef FUSION_CORE_FUSION_H_
#define FUSION_CORE_FUSION_H_

/// \file Umbrella header: everything a downstream application needs to
/// embed the engine (the "single configuration line" ergonomics the
/// paper attributes to reusable engines, §2.3/§9).
///
///   #include "core/fusion.h"
///   auto ctx = fusion::core::SessionContext::Make();
///   ctx->RegisterCsv("t", "data.csv").Abort();
///   auto rows = ctx->ExecuteSql("SELECT count(*) FROM t").ValueOrDie();

#include "arrow/builder.h"
#include "arrow/columnar_value.h"
#include "arrow/ipc.h"
#include "arrow/record_batch.h"
#include "arrow/scalar.h"
#include "arrow/type.h"
#include "catalog/catalog.h"
#include "catalog/file_tables.h"
#include "catalog/memory_table.h"
#include "catalog/table_provider.h"
#include "common/result.h"
#include "common/status.h"
#include "core/session_context.h"
#include "exec/runtime_env.h"
#include "format/csv.h"
#include "format/fpq.h"
#include "format/json.h"
#include "logical/expr.h"
#include "logical/functions.h"
#include "logical/plan.h"
#include "logical/plan_serde.h"
#include "logical/sql_planner.h"
#include "optimizer/optimizer.h"
#include "physical/execution_plan.h"
#include "physical/physical_expr.h"

#endif  // FUSION_CORE_FUSION_H_
