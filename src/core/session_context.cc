#include "core/session_context.h"

#include <iomanip>
#include <sstream>

#include "logical/plan_serde.h"
#include "physical/exchange_exec.h"

namespace fusion {
namespace core {

SessionContext::SessionContext(exec::SessionConfig config, exec::RuntimeEnvPtr env)
    : config_(config), env_(std::move(env)),
      default_catalog_(std::make_shared<catalog::MemoryCatalogProvider>()),
      catalog_(default_catalog_), registry_(logical::FunctionRegistry::Default()),
      optimizer_(optimizer::Optimizer::Default()),
      plan_cache_(config_.plan_cache_entries > 0
                      ? static_cast<size_t>(config_.plan_cache_entries)
                      : 0,
                  env_->plan_cache_stats) {}

std::shared_ptr<SessionContext> SessionContext::Make(exec::SessionConfig config,
                                                     exec::RuntimeEnvPtr env) {
  return std::shared_ptr<SessionContext>(
      new SessionContext(config, std::move(env)));
}

void SessionContext::SetCatalogProvider(catalog::CatalogProviderPtr catalog) {
  catalog_ = std::move(catalog);
  catalog_epoch_.fetch_add(1, std::memory_order_relaxed);
  plan_cache_.Invalidate();
}

Status SessionContext::RegisterTable(const std::string& name,
                                     catalog::TableProviderPtr table) {
  FUSION_ASSIGN_OR_RAISE(auto schema, catalog_->GetSchema("public"));
  FUSION_RETURN_NOT_OK(schema->RegisterTable(name, std::move(table)));
  catalog_epoch_.fetch_add(1, std::memory_order_relaxed);
  plan_cache_.Invalidate();
  return Status::OK();
}

Status SessionContext::DeregisterTable(const std::string& name) {
  FUSION_ASSIGN_OR_RAISE(auto schema, catalog_->GetSchema("public"));
  FUSION_RETURN_NOT_OK(schema->DeregisterTable(name));
  catalog_epoch_.fetch_add(1, std::memory_order_relaxed);
  plan_cache_.Invalidate();
  return Status::OK();
}

Status SessionContext::RegisterCsv(const std::string& name, const std::string& path,
                                   format::csv::Options options) {
  FUSION_ASSIGN_OR_RAISE(auto table,
                         catalog::CsvTable::Open({path}, std::move(options)));
  return RegisterTable(name, table);
}

Status SessionContext::RegisterFpq(const std::string& name,
                                   const std::string& path) {
  FUSION_ASSIGN_OR_RAISE(auto table,
                         catalog::OpenTable(path, env_->cache_manager));
  return RegisterTable(name, table);
}

Status SessionContext::RegisterJson(const std::string& name,
                                    const std::string& path) {
  FUSION_ASSIGN_OR_RAISE(auto table, catalog::JsonTable::Open({path}));
  return RegisterTable(name, table);
}

Status SessionContext::RegisterIpc(const std::string& name,
                                   const std::string& path) {
  FUSION_ASSIGN_OR_RAISE(auto table, catalog::IpcTable::Open({path}));
  return RegisterTable(name, table);
}

Result<catalog::TableProviderPtr> SessionContext::GetTable(
    const std::string& name) const {
  FUSION_ASSIGN_OR_RAISE(auto schema, catalog_->GetSchema("public"));
  return schema->GetTable(name);
}

Result<logical::PlanPtr> SessionContext::CreateLogicalPlan(const std::string& sql) {
  logical::TableResolver resolver =
      [this](const std::string& name) -> Result<catalog::TableProviderPtr> {
    // Support "schema.table" references against the session catalog.
    auto dot = name.find('.');
    if (dot != std::string::npos) {
      FUSION_ASSIGN_OR_RAISE(auto schema, catalog_->GetSchema(name.substr(0, dot)));
      return schema->GetTable(name.substr(dot + 1));
    }
    return GetTable(name);
  };
  logical::SqlPlanner planner(resolver, registry_);
  return planner.PlanSql(sql);
}

Result<logical::PlanPtr> SessionContext::OptimizePlan(
    const logical::PlanPtr& plan) {
  return optimizer_.Optimize(plan);
}

std::string SessionContext::ConfigFingerprint() const {
  // Only knobs that change what the optimizer/planner produces belong
  // here; runtime-only knobs (timeouts, admission) are deliberately
  // excluded so they don't fragment the cache.
  std::ostringstream fp;
  fp << config_.batch_size << '|' << config_.target_partitions << '|'
     << config_.enable_predicate_pushdown << config_.enable_late_materialization
     << config_.enable_topk << config_.enable_partial_aggregation
     << config_.enable_symmetric_hash_join << config_.enable_partitioned_aggregation
     << config_.enable_morsel_scan << '|' << config_.runtime_filter_mode << '|'
     << config_.rf_max_build_rows << '|' << config_.rf_min_probe_ratio;
  return fp.str();
}

Result<logical::PlanPtr> SessionContext::OptimizeCached(
    const logical::PlanPtr& plan) {
  if (config_.plan_cache_entries <= 0) return optimizer_.Optimize(plan);
  auto serialized = logical::SerializePlan(plan);
  if (!serialized.ok()) {
    // Plans that cannot round-trip (exotic nodes) just skip the cache.
    return optimizer_.Optimize(plan);
  }
  std::string key;
  key.reserve(serialized->size() + 32);
  key += std::to_string(catalog_epoch_.load(std::memory_order_relaxed));
  key += '|';
  key += ConfigFingerprint();
  key += '|';
  key.append(reinterpret_cast<const char*>(serialized->data()),
             serialized->size());
  if (auto cached = plan_cache_.Get(key)) return cached;
  FUSION_ASSIGN_OR_RAISE(auto optimized, optimizer_.Optimize(plan));
  plan_cache_.Put(key, optimized);
  return optimized;
}

Result<exec::AdmissionTicket> SessionContext::AdmitQuery(
    const physical::ExecContextPtr& ctx) {
  exec::AdmissionLimits limits;
  limits.max_concurrent = config_.admission_max_concurrent;
  limits.max_queued = config_.admission_max_queued;
  limits.memory_watermark = config_.admission_memory_watermark;
  return env_->scheduler()->Admit(limits, env_->memory_pool.get(),
                                  ctx->cancel.get());
}

physical::ExecContextPtr SessionContext::MakeExecContext(
    exec::CancellationTokenPtr token) {
  auto ctx = std::make_shared<physical::ExecContext>();
  ctx->env = env_;
  ctx->config = config_;
  ctx->query_id = next_query_id_.fetch_add(1);
  if (config_.timeout_ms > 0) {
    // The session-wide deadline starts when the query starts executing.
    if (token == nullptr) token = exec::CancellationToken::Make();
    token->SetTimeout(config_.timeout_ms);
  }
  ctx->cancel = std::move(token);
  // Every parallel piece of this query — partition drivers, exchange
  // producers, nested collects — runs as a task in this group on the
  // shared scheduler; CollectAndFinish joins them all at the end.
  ctx->task_group = env_->scheduler()->MakeGroup();
  // Sideways-information-passing channels (hash-join build -> probe
  // scans) created by the physical planner live here per query.
  ctx->runtime_filters = std::make_shared<exec::RuntimeFilterRegistry>();
  return ctx;
}

namespace {

/// Top-level collect: after the results (or the error) are in, unwind
/// the query's task group so no task of this query outlives its
/// ExecuteSql call — cancellation, deadline expiry, and early-LIMIT
/// teardown all join through TaskGroup::Finish here.
Result<std::vector<RecordBatchPtr>> CollectAndFinish(
    const physical::ExecPlanPtr& plan, const physical::ExecContextPtr& ctx) {
  auto result = physical::ExecuteCollect(plan, ctx);
  Status join =
      ctx->task_group != nullptr ? ctx->task_group->Finish() : Status::OK();
  if (!result.ok()) return result;
  FUSION_RETURN_NOT_OK(join);
  return result;
}

}  // namespace

Result<physical::ExecPlanPtr> SessionContext::CreatePhysicalPlan(
    const logical::PlanPtr& plan) {
  physical::PhysicalPlanner planner(MakeExecContext());
  return planner.CreatePlan(plan);
}

Result<DataFrame> SessionContext::Sql(const std::string& sql) {
  FUSION_ASSIGN_OR_RAISE(auto plan, CreateLogicalPlan(sql));
  return DataFrame(shared_from_this(), std::move(plan));
}

Result<std::vector<RecordBatchPtr>> SessionContext::ExecuteSql(
    const std::string& sql, exec::CancellationTokenPtr token) {
  FUSION_ASSIGN_OR_RAISE(auto df, Sql(sql));
  return df.Collect(std::move(token));
}

Result<std::vector<RecordBatchPtr>> SessionContext::ExecuteSqlWithTimeout(
    const std::string& sql, int64_t timeout_ms) {
  return ExecuteSql(sql, exec::CancellationToken::WithTimeout(timeout_ms));
}

Result<QueryResult> SessionContext::ExecuteSqlWithMetrics(const std::string& sql) {
  FUSION_ASSIGN_OR_RAISE(auto plan, CreateLogicalPlan(sql));
  FUSION_ASSIGN_OR_RAISE(auto optimized, OptimizeCached(plan));
  auto ctx = MakeExecContext();
  FUSION_ASSIGN_OR_RAISE(auto ticket, AdmitQuery(ctx));
  physical::PhysicalPlanner planner(ctx);
  FUSION_ASSIGN_OR_RAISE(auto exec_plan, planner.CreatePlan(optimized));
  QueryResult out;
  // Finish (inside CollectAndFinish) runs before the metrics snapshot,
  // so producer-task metrics are final when collected.
  FUSION_ASSIGN_OR_RAISE(out.batches, CollectAndFinish(exec_plan, ctx));
  out.metrics = physical::CollectMetrics(*exec_plan);
  out.physical_plan = std::move(exec_plan);
  return out;
}

Result<DataFrame> SessionContext::Table(const std::string& name) {
  FUSION_ASSIGN_OR_RAISE(auto provider, GetTable(name));
  FUSION_ASSIGN_OR_RAISE(auto plan,
                         logical::MakeTableScan(name, std::move(provider)));
  return DataFrame(shared_from_this(), std::move(plan));
}

Result<DataFrame> SessionContext::ReadCsv(const std::string& path,
                                          format::csv::Options options) {
  FUSION_ASSIGN_OR_RAISE(auto table,
                         catalog::CsvTable::Open({path}, std::move(options)));
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeTableScan(path, table));
  return DataFrame(shared_from_this(), std::move(plan));
}

Result<DataFrame> SessionContext::ReadFpq(const std::string& path) {
  FUSION_ASSIGN_OR_RAISE(auto table,
                         catalog::OpenTable(path, env_->cache_manager));
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeTableScan(path, table));
  return DataFrame(shared_from_this(), std::move(plan));
}

Result<DataFrame> SessionContext::ReadJson(const std::string& path) {
  FUSION_ASSIGN_OR_RAISE(auto table, catalog::JsonTable::Open({path}));
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeTableScan(path, table));
  return DataFrame(shared_from_this(), std::move(plan));
}

Result<std::vector<RecordBatchPtr>> SessionContext::ExecutePlan(
    const logical::PlanPtr& plan, exec::CancellationTokenPtr token) {
  FUSION_ASSIGN_OR_RAISE(auto optimized, OptimizeCached(plan));
  auto ctx = MakeExecContext(std::move(token));
  // The admission ticket is held for the full collect: a slot frees
  // only when the query (and its task group) has fully unwound.
  FUSION_ASSIGN_OR_RAISE(auto ticket, AdmitQuery(ctx));
  physical::PhysicalPlanner planner(ctx);
  FUSION_ASSIGN_OR_RAISE(auto exec_plan, planner.CreatePlan(optimized));
  return CollectAndFinish(exec_plan, ctx);
}

// --------------------------------------------------------- QueryStream

QueryStream::QueryStream(physical::ExecContextPtr ctx, exec::AdmissionTicket ticket,
                         physical::ExecPlanPtr plan, exec::StreamPtr stream)
    : ctx_(std::move(ctx)), ticket_(std::move(ticket)), plan_(std::move(plan)),
      stream_(std::move(stream)), schema_(stream_->schema()) {}

QueryStream::~QueryStream() { Close(); }

Result<RecordBatchPtr> QueryStream::Next() {
  if (finished_) return RecordBatchPtr(nullptr);
  auto batch = stream_->Next();
  if (!batch.ok()) {
    finished_ = true;
    Close();
    return batch.status();
  }
  if (*batch == nullptr) {
    finished_ = true;
    // End of stream: join producer tasks now so errors they hit after
    // the consumer saw its last batch still fail the query.
    FUSION_RETURN_NOT_OK(Close());
    return RecordBatchPtr(nullptr);
  }
  return batch;
}

void QueryStream::Cancel() {
  if (ctx_ != nullptr && ctx_->cancel != nullptr) ctx_->cancel->Cancel();
}

Status QueryStream::Close() {
  if (closed_) return close_status_;
  closed_ = true;
  finished_ = true;
  // Drop the consumer first: parked producers of a coalesce exchange
  // wake via the queue-close unwind hooks that Finish() fires next.
  stream_.reset();
  close_status_ = ctx_ != nullptr && ctx_->task_group != nullptr
                      ? ctx_->task_group->Finish()
                      : Status::OK();
  // Admission slot frees only after the task group fully unwound.
  ticket_ = exec::AdmissionTicket();
  return close_status_;
}

Result<QueryStreamPtr> SessionContext::ExecuteSqlStream(
    const std::string& sql, exec::CancellationTokenPtr token) {
  FUSION_ASSIGN_OR_RAISE(auto plan, CreateLogicalPlan(sql));
  return ExecutePlanStream(plan, std::move(token));
}

Result<QueryStreamPtr> SessionContext::ExecutePlanStream(
    const logical::PlanPtr& plan, exec::CancellationTokenPtr token) {
  FUSION_ASSIGN_OR_RAISE(auto optimized, OptimizeCached(plan));
  auto ctx = MakeExecContext(std::move(token));
  FUSION_ASSIGN_OR_RAISE(auto ticket, AdmitQuery(ctx));
  physical::PhysicalPlanner planner(ctx);
  FUSION_ASSIGN_OR_RAISE(auto exec_plan, planner.CreatePlan(optimized));
  if (exec_plan->output_partitions() > 1) {
    // One consumer-facing stream; partition drivers become producer
    // tasks pushing into bounded queues, so pulling slowly (a slow
    // network client) back-pressures execution.
    exec_plan = std::make_shared<physical::CoalescePartitionsExec>(exec_plan);
  }
  auto stream = exec_plan->Execute(0, ctx);
  if (!stream.ok()) {
    // Opening failed after tasks may have spawned: unwind before
    // surfacing, so no producer outlives the error.
    if (ctx->task_group != nullptr) ctx->task_group->Finish();
    return stream.status();
  }
  return QueryStreamPtr(new QueryStream(std::move(ctx), std::move(ticket),
                                        std::move(exec_plan),
                                        std::move(*stream)));
}

Result<std::vector<RecordBatchPtr>> SessionContext::ExecutePhysical(
    const physical::ExecPlanPtr& plan, exec::CancellationTokenPtr token) {
  auto ctx = MakeExecContext(std::move(token));
  FUSION_ASSIGN_OR_RAISE(auto ticket, AdmitQuery(ctx));
  return CollectAndFinish(plan, ctx);
}

// ----------------------------------------------------------- DataFrame

Result<DataFrame> DataFrame::Select(std::vector<logical::ExprPtr> exprs) const {
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeProjection(plan_, std::move(exprs)));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<logical::ExprPtr> exprs;
  for (const auto& n : names) exprs.push_back(logical::Col(n));
  return Select(std::move(exprs));
}

Result<DataFrame> DataFrame::Filter(logical::ExprPtr predicate) const {
  FUSION_ASSIGN_OR_RAISE(auto plan,
                         logical::MakeFilter(plan_, std::move(predicate)));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Aggregate(
    std::vector<logical::ExprPtr> group_exprs,
    std::vector<logical::ExprPtr> aggregates) const {
  FUSION_ASSIGN_OR_RAISE(auto plan,
                         logical::MakeAggregate(plan_, std::move(group_exprs),
                                                std::move(aggregates)));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Sort(std::vector<logical::SortExpr> sort_exprs) const {
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeSort(plan_, std::move(sort_exprs)));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Limit(int64_t skip, int64_t fetch) const {
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeLimit(plan_, skip, fetch));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Join(const DataFrame& right, logical::JoinKind kind,
                                  const std::vector<std::string>& left_cols,
                                  const std::vector<std::string>& right_cols) const {
  if (left_cols.size() != right_cols.size()) {
    return Status::Invalid("join key lists must align");
  }
  std::vector<std::pair<logical::ExprPtr, logical::ExprPtr>> on;
  for (size_t i = 0; i < left_cols.size(); ++i) {
    on.emplace_back(logical::Col(left_cols[i]), logical::Col(right_cols[i]));
  }
  FUSION_ASSIGN_OR_RAISE(auto plan,
                         logical::MakeJoin(plan_, right.plan_, kind, std::move(on)));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Union(const DataFrame& other) const {
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeUnion({plan_, other.plan_}));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::Distinct() const {
  FUSION_ASSIGN_OR_RAISE(auto plan, logical::MakeDistinct(plan_));
  return DataFrame(ctx_, std::move(plan));
}

Result<DataFrame> DataFrame::WithColumn(const std::string& name,
                                        logical::ExprPtr expr) const {
  std::vector<logical::ExprPtr> exprs;
  const logical::PlanSchema& s = plan_->schema();
  for (int i = 0; i < s.num_fields(); ++i) {
    exprs.push_back(logical::Col(s.qualifier(i), s.field(i).name()));
  }
  exprs.push_back(logical::AliasExpr(std::move(expr), name));
  return Select(std::move(exprs));
}

Result<DataFrame> DataFrame::Window(
    std::vector<logical::ExprPtr> window_exprs) const {
  FUSION_ASSIGN_OR_RAISE(auto plan,
                         logical::MakeWindow(plan_, std::move(window_exprs)));
  return DataFrame(ctx_, std::move(plan));
}

Result<std::vector<RecordBatchPtr>> DataFrame::Collect(
    exec::CancellationTokenPtr token) const {
  return ctx_->ExecutePlan(plan_, std::move(token));
}

Result<int64_t> DataFrame::Count() const {
  FUSION_ASSIGN_OR_RAISE(auto batches, Collect());
  int64_t rows = 0;
  for (const auto& b : batches) rows += b->num_rows();
  return rows;
}

Result<logical::PlanPtr> DataFrame::OptimizedPlan() const {
  return ctx_->OptimizePlan(plan_);
}

Result<std::string> DataFrame::ShowString(int64_t max_rows) const {
  FUSION_ASSIGN_OR_RAISE(auto batches, Collect());
  return FormatBatches(batches, max_rows);
}

std::string FormatBatches(const std::vector<RecordBatchPtr>& batches,
                          int64_t max_rows) {
  if (batches.empty()) return "(no rows)\n";
  const SchemaPtr& schema = batches[0]->schema();
  const int cols = schema->num_fields();
  std::vector<std::vector<std::string>> rows;
  rows.emplace_back();
  for (int c = 0; c < cols; ++c) rows.back().push_back(schema->field(c).name());
  int64_t shown = 0;
  int64_t total = 0;
  for (const auto& b : batches) {
    total += b->num_rows();
    for (int64_t r = 0; r < b->num_rows() && shown < max_rows; ++r, ++shown) {
      rows.emplace_back();
      for (int c = 0; c < cols; ++c) {
        rows.back().push_back(b->column(c)->ValueToString(r));
      }
    }
  }
  std::vector<size_t> widths(cols, 0);
  for (const auto& row : rows) {
    for (int c = 0; c < cols; ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto rule = [&]() {
    out << "+";
    for (int c = 0; c < cols; ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };
  rule();
  for (size_t r = 0; r < rows.size(); ++r) {
    out << "|";
    for (int c = 0; c < cols; ++c) {
      out << " " << std::setw(static_cast<int>(widths[c])) << std::left << rows[r][c]
          << " |";
    }
    out << "\n";
    if (r == 0) rule();
  }
  rule();
  if (total > shown) {
    out << "(" << shown << " of " << total << " rows shown)\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace fusion
