#include "core/plan_cache.h"

namespace fusion {
namespace core {

logical::PlanPtr PlanCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_->misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  stats_->hits.fetch_add(1, std::memory_order_relaxed);
  lru_.erase(it->second.second);
  lru_.push_front(key);
  it->second.second = lru_.begin();
  return it->second.first;
}

void PlanCache::Put(const std::string& key, logical::PlanPtr plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.second);
    entries_.erase(it);
  }
  lru_.push_front(key);
  entries_.emplace(key, std::make_pair(std::move(plan), lru_.begin()));
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    stats_->evictions.fetch_add(1, std::memory_order_relaxed);
  }
  stats_->entries.store(static_cast<int64_t>(entries_.size()),
                        std::memory_order_relaxed);
}

void PlanCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return;
  entries_.clear();
  lru_.clear();
  stats_->invalidations.fetch_add(1, std::memory_order_relaxed);
  stats_->entries.store(0, std::memory_order_relaxed);
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace core
}  // namespace fusion
