#include "flight/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "arrow/ipc.h"
#include "catalog/memory_table.h"
#include "common/fault_injector.h"
#include "exec/memory_pool.h"

namespace fusion {
namespace flight {

namespace {

/// Any dictionary-encoded column left in the batch? (Sets the frame's
/// kFlagDictionary bit; purely informational for clients/stats.)
bool HasDictionaryColumn(const RecordBatch& batch) {
  for (int i = 0; i < batch.num_columns(); ++i) {
    if (batch.column(i)->type().is_dictionary()) return true;
  }
  return false;
}

}  // namespace

/// One client connection: a handler thread that reads request frames
/// and executes queries, plus a writer thread draining the bounded
/// send queue. All outbound frames go through the queue so the writer
/// is the only thread touching the socket's send side.
struct FlightServer::Session {
  uint64_t id = 0;
  Socket socket;
  std::thread handler;
  std::thread writer;

  // Bounded send queue (frames + byte budget) --------------------------
  struct Outgoing {
    FrameType type;
    uint8_t flags;
    std::vector<uint8_t> body;
  };
  std::mutex mu;
  std::condition_variable cv_space;  ///< signalled when the queue drains
  std::condition_variable cv_data;   ///< signalled when a frame arrives
  std::deque<Outgoing> queue;
  int64_t queued_bytes = 0;
  bool flush_and_finish = false;  ///< no more pushes; writer exits when empty
  bool write_failed = false;      ///< socket send failed; connection is dead
  /// Charges queued result bytes to the runtime memory pool
  /// ("flight.session.<id>"); guarded by `mu`.
  std::unique_ptr<exec::MemoryReservation> reservation;

  // Query-in-flight state (drain/disconnect cancellation) --------------
  std::atomic<bool> in_flight{false};
  std::mutex token_mu;
  exec::CancellationTokenPtr active_token;
  std::atomic<bool> drain_requested{false};
  std::atomic<bool> done{false};

  /// Serializes fd access for close vs. cross-thread shutdown: only the
  /// handler ever closes, but the writer and Shutdown() call shutdown()
  /// to wake blocked peers — without the mutex they could read the fd
  /// concurrently with Close() writing -1, or hit a recycled descriptor
  /// after close. shutdown() on a still-open fd during concurrent
  /// send/recv is well-defined, so SendFrame/ReadFrame need no lock.
  std::mutex socket_mu;

  void ShutdownSocketRead() {
    std::lock_guard<std::mutex> lock(socket_mu);
    if (socket.valid()) ::shutdown(socket.fd(), SHUT_RD);
  }
  void ShutdownSocketBoth() {
    std::lock_guard<std::mutex> lock(socket_mu);
    socket.ShutdownBoth();
  }
  void CloseSocket() {
    std::lock_guard<std::mutex> lock(socket_mu);
    socket.Close();
  }

  // Prepared statements are per-connection; only the handler touches
  // the map, so it needs no lock.
  std::unordered_map<uint64_t, logical::PlanPtr> prepared;
  uint64_t next_prepared_handle = 1;

  void CancelActiveQuery() {
    std::lock_guard<std::mutex> lock(token_mu);
    if (active_token != nullptr) active_token->Cancel();
  }

  /// Push one frame into the bounded send queue; blocks while the
  /// queue is at its frame or byte budget (the backpressure edge).
  /// Fails when the connection has died or the memory grant is refused.
  Status Push(FrameType type, uint8_t flags, std::vector<uint8_t> body,
              int max_frames, int64_t max_bytes) {
    std::unique_lock<std::mutex> lock(mu);
    const int64_t bytes = static_cast<int64_t>(body.size());
    cv_space.wait(lock, [&] {
      return write_failed ||
             (static_cast<int>(queue.size()) < max_frames &&
              (queued_bytes == 0 || queued_bytes + bytes <= max_bytes));
    });
    if (write_failed) {
      return Status::IOError("flight: connection lost");
    }
    Status grow = reservation->ResizeTo(queued_bytes + bytes);
    if (!grow.ok()) return grow;
    queued_bytes += bytes;
    queue.push_back({type, flags, std::move(body)});
    cv_data.notify_one();
    return Status::OK();
  }
};

FlightServer::FlightServer(core::SessionContextPtr session,
                           FlightServerOptions options)
    : session_ctx_(std::move(session)), options_(options) {
  max_frame_bytes_ = options_.max_frame_bytes > 0 ? options_.max_frame_bytes
                                                  : ipc::MaxFrameBytes();
}

Result<std::unique_ptr<FlightServer>> FlightServer::Start(
    core::SessionContextPtr session, FlightServerOptions options) {
  auto server = std::unique_ptr<FlightServer>(
      new FlightServer(std::move(session), options));
  FUSION_ASSIGN_OR_RAISE(
      server->listener_,
      ListenTcp(server->options_.bind_address, server->options_.port,
                &server->port_));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

FlightServer::~FlightServer() { Shutdown(0); }

FlightServerStats FlightServer::stats() const {
  FlightServerStats s;
  s.accepted = accepted_.load();
  s.refused = refused_.load();
  s.active_sessions = active_sessions_.load();
  s.peak_sessions = peak_sessions_.load();
  s.queries_started = queries_started_.load();
  s.queries_ok = queries_ok_.load();
  s.queries_err = queries_err_.load();
  s.queries_cancelled = queries_cancelled_.load();
  s.queries_rejected = queries_rejected_.load();
  s.prepared_statements = prepared_statements_.load();
  s.puts = puts_.load();
  s.batches_sent = batches_sent_.load();
  s.bytes_sent = bytes_sent_.load();
  s.bytes_received = bytes_received_.load();
  s.frame_errors = frame_errors_.load();
  return s;
}

void FlightServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (draining_.load()) return;
      if (errno == EINTR) continue;
      return;  // listener closed or fatal
    }
    if (draining_.load()) {
      ::close(fd);
      return;
    }
    // Scripted accept fault: the connection is dropped as if the
    // network setup failed (clients see a reset; tests assert cleanup).
    if (!FaultInjector::Maybe("flight.accept").ok()) {
      refused_.fetch_add(1);
      ::close(fd);
      continue;
    }
    ReapFinishedSessions();
    if (active_sessions_.load() >= options_.max_connections) {
      refused_.fetch_add(1);
      Socket refuse(fd, "flight");
      refuse.SendFrame(FrameType::kError, 0,
                       EncodeError(Status::ResourcesExhausted(
                           "flight: connection limit reached")));
      continue;  // Socket dtor closes fd
    }
    accepted_.fetch_add(1);
    auto session = std::make_unique<Session>();
    session->id = next_session_id_.fetch_add(1);
    session->socket = Socket(fd, "flight");
    session->reservation = std::make_unique<exec::MemoryReservation>(
        session_ctx_->env()->memory_pool,
        "flight.session." + std::to_string(session->id));
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      int64_t active = active_sessions_.fetch_add(1) + 1;
      int64_t peak = peak_sessions_.load();
      while (active > peak && !peak_sessions_.compare_exchange_weak(peak, active)) {
      }
      sessions_.push_back(std::move(session));
    }
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
    raw->handler = std::thread([this, raw] { RunSession(raw); });
  }
}

void FlightServer::ReapFinishedSessions() {
  // Joining with sessions_mu_ held would deadlock: RunSession sets done
  // and then acquires sessions_mu_ for its final notify, so a handler
  // observed as done may still be blocked on this very mutex. Move
  // finished sessions out under the lock, join them after releasing it.
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : finished) {
    if (s->handler.joinable()) s->handler.join();
  }
}

void FlightServer::WriterLoop(Session* s) {
  for (;;) {
    Session::Outgoing frame;
    {
      std::unique_lock<std::mutex> lock(s->mu);
      s->cv_data.wait(lock, [&] {
        return !s->queue.empty() || s->flush_and_finish || s->write_failed;
      });
      if (s->write_failed || (s->queue.empty() && s->flush_and_finish)) return;
      frame = std::move(s->queue.front());
      s->queue.pop_front();
    }
    Status st = s->socket.SendFrame(frame.type, frame.flags, frame.body);
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->queued_bytes -= static_cast<int64_t>(frame.body.size());
      if (st.ok()) {
        bytes_sent_.fetch_add(
            static_cast<int64_t>(frame.body.size() + kFrameHeaderBytes));
        s->reservation->ResizeTo(s->queued_bytes);
      } else {
        // Connection dead: discard everything queued, release the
        // reservation, and kill the query feeding the queue so the
        // pump unblocks within one batch.
        s->write_failed = true;
        s->queue.clear();
        s->queued_bytes = 0;
        s->reservation->ResizeTo(0);
      }
      s->cv_space.notify_all();
      if (!st.ok()) s->cv_data.notify_all();
    }
    if (!st.ok()) {
      // Wake the handler if it is parked in ReadFrame waiting for the
      // next request (and the peer waiting for the frame we dropped):
      // shutdown() fails their blocked recv without closing the fd, so
      // the handler remains the only closer.
      s->ShutdownSocketBoth();
      s->CancelActiveQuery();
      return;
    }
  }
}

Status FlightServer::StreamQuery(Session* s, core::QueryStreamPtr stream,
                                 int64_t /*timeout_ms*/) {
  uint64_t rows = 0;
  uint64_t batches = 0;
  ipc::SerializeOptions ser;
  ser.preserve_dictionary = true;
  for (;;) {
    auto batch = stream->Next();
    if (!batch.ok()) {
      stream->Close();
      return batch.status();
    }
    if (*batch == nullptr) break;
    uint8_t flags = HasDictionaryColumn(**batch) ? kFlagDictionary : 0;
    std::vector<uint8_t> blob = ipc::SerializeBatch(**batch, ser);
    if (static_cast<int64_t>(blob.size()) > max_frame_bytes_) {
      stream->Cancel();
      stream->Close();
      return Status::IOError("flight: result batch exceeds max frame size");
    }
    rows += static_cast<uint64_t>((*batch)->num_rows());
    ++batches;
    Status pushed =
        s->Push(FrameType::kBatch, flags, std::move(blob),
                options_.send_queue_frames, options_.session_memory_bytes);
    if (!pushed.ok()) {
      // Client gone or memory denied: cancel, unwind, release.
      stream->Cancel();
      stream->Close();
      return pushed;
    }
    batches_sent_.fetch_add(1);
  }
  FUSION_RETURN_NOT_OK(stream->Close());
  BodyWriter end;
  end.PutU64(rows);
  end.PutU64(batches);
  return s->Push(FrameType::kStreamEnd, 0, end.Finish(),
                 options_.send_queue_frames, options_.session_memory_bytes);
}

Status FlightServer::HandleDoGet(Session* s, const Frame& frame) {
  BodyReader r(frame.body);
  FUSION_ASSIGN_OR_RAISE(uint64_t timeout_ms, r.U64());
  FUSION_ASSIGN_OR_RAISE(std::string sql, r.String());
  FUSION_RETURN_NOT_OK(r.Done());

  int64_t timeout = timeout_ms > 0 ? static_cast<int64_t>(timeout_ms)
                                   : options_.default_timeout_ms;
  auto token = timeout > 0 ? exec::CancellationToken::WithTimeout(timeout)
                           : exec::CancellationToken::Make();
  {
    std::lock_guard<std::mutex> lock(s->token_mu);
    s->active_token = token;
  }
  s->in_flight.store(true);
  queries_started_.fetch_add(1);
  auto stream = session_ctx_->ExecuteSqlStream(sql, token);
  Status st = stream.ok() ? StreamQuery(s, std::move(*stream), timeout)
                          : stream.status();
  s->in_flight.store(false);
  {
    std::lock_guard<std::mutex> lock(s->token_mu);
    s->active_token = nullptr;
  }
  if (st.ok()) {
    queries_ok_.fetch_add(1);
  } else if (st.IsCancelled()) {
    queries_cancelled_.fetch_add(1);
  } else if (st.IsResourcesExhausted()) {
    queries_rejected_.fetch_add(1);
  } else {
    queries_err_.fetch_add(1);
  }
  if (s->drain_requested.load()) {
    // Single drain-accounting point, taken where the outcome is known:
    // a query cancelled during drain counts exactly once whether the
    // drain deadline or its own timeout killed it.
    if (st.ok()) {
      drain_finished_.fetch_add(1);
    } else if (st.IsCancelled()) {
      drain_cancelled_.fetch_add(1);
    }
  }
  return st;
}

Status FlightServer::HandlePrepare(Session* s, const Frame& frame) {
  BodyReader r(frame.body);
  FUSION_ASSIGN_OR_RAISE(std::string sql, r.String());
  FUSION_RETURN_NOT_OK(r.Done());
  FUSION_ASSIGN_OR_RAISE(auto plan, session_ctx_->CreateLogicalPlan(sql));
  uint64_t handle = s->next_prepared_handle++;
  s->prepared[handle] = std::move(plan);
  prepared_statements_.fetch_add(1);
  BodyWriter w;
  w.PutU64(handle);
  return s->Push(FrameType::kPrepared, 0, w.Finish(),
                 options_.send_queue_frames, options_.session_memory_bytes);
}

Status FlightServer::HandleDoGetPrepared(Session* s, const Frame& frame) {
  BodyReader r(frame.body);
  FUSION_ASSIGN_OR_RAISE(uint64_t handle, r.U64());
  FUSION_ASSIGN_OR_RAISE(uint64_t timeout_ms, r.U64());
  FUSION_RETURN_NOT_OK(r.Done());
  auto it = s->prepared.find(handle);
  if (it == s->prepared.end()) {
    return Status::KeyError("flight: unknown prepared statement handle " +
                            std::to_string(handle));
  }
  int64_t timeout = timeout_ms > 0 ? static_cast<int64_t>(timeout_ms)
                                   : options_.default_timeout_ms;
  auto token = timeout > 0 ? exec::CancellationToken::WithTimeout(timeout)
                           : exec::CancellationToken::Make();
  {
    std::lock_guard<std::mutex> lock(s->token_mu);
    s->active_token = token;
  }
  s->in_flight.store(true);
  queries_started_.fetch_add(1);
  // Prepared statements skip re-parsing; optimization still goes
  // through OptimizeCached, so repeats hit the plan cache.
  auto stream = session_ctx_->ExecutePlanStream(it->second, token);
  Status st = stream.ok() ? StreamQuery(s, std::move(*stream), timeout)
                          : stream.status();
  s->in_flight.store(false);
  {
    std::lock_guard<std::mutex> lock(s->token_mu);
    s->active_token = nullptr;
  }
  if (st.ok()) {
    queries_ok_.fetch_add(1);
  } else if (st.IsCancelled()) {
    queries_cancelled_.fetch_add(1);
  } else if (st.IsResourcesExhausted()) {
    queries_rejected_.fetch_add(1);
  } else {
    queries_err_.fetch_add(1);
  }
  if (s->drain_requested.load()) {
    // Single drain-accounting point, taken where the outcome is known:
    // a query cancelled during drain counts exactly once whether the
    // drain deadline or its own timeout killed it.
    if (st.ok()) {
      drain_finished_.fetch_add(1);
    } else if (st.IsCancelled()) {
      drain_cancelled_.fetch_add(1);
    }
  }
  return st;
}

Status FlightServer::HandleClosePrepared(Session* s, const Frame& frame) {
  BodyReader r(frame.body);
  FUSION_ASSIGN_OR_RAISE(uint64_t handle, r.U64());
  FUSION_RETURN_NOT_OK(r.Done());
  s->prepared.erase(handle);
  BodyWriter w;
  w.PutU64(0);
  return s->Push(FrameType::kOk, 0, w.Finish(),
                 options_.send_queue_frames, options_.session_memory_bytes);
}

Status FlightServer::HandleDoPut(Session* s, const Frame& frame) {
  BodyReader r(frame.body);
  FUSION_ASSIGN_OR_RAISE(std::string table, r.String());
  FUSION_RETURN_NOT_OK(r.Done());
  const bool replace = (frame.flags & kFlagReplaceTable) != 0;

  // Consume the upload to kPutDone even after a bad batch, so the
  // client's synchronous send of the full stream never deadlocks
  // against our error reply; only the first error is reported.
  //
  // Accumulated batches are charged to the runtime pool (wire bytes as
  // the proxy for decoded size) and capped by max_put_bytes, so a
  // client streaming frames before kPutDone can neither exceed the
  // configured total nor allocate invisibly to admission. After the
  // first error, frames are drained and dropped without accumulating.
  exec::MemoryReservation put_reservation(
      session_ctx_->env()->memory_pool, "flight.put." + std::to_string(s->id));
  int64_t put_bytes = 0;
  Status first_error;
  std::vector<RecordBatchPtr> batches;
  int64_t rows = 0;
  for (;;) {
    auto next = s->socket.ReadFrame(max_frame_bytes_);
    if (!next.ok()) return next.status();  // connection-level: tear down
    bytes_received_.fetch_add(
        static_cast<int64_t>(next->body.size() + kFrameHeaderBytes));
    if (next->type == FrameType::kPutDone) break;
    if (next->type != FrameType::kPutBatch) {
      return Status::IOError("flight: unexpected frame during do-put");
    }
    if (!first_error.ok()) continue;
    const int64_t frame_bytes = static_cast<int64_t>(next->body.size());
    if (put_bytes + frame_bytes > options_.max_put_bytes) {
      first_error = Status::ResourcesExhausted(
          "flight: do-put upload exceeds max_put_bytes=" +
          std::to_string(options_.max_put_bytes));
      continue;
    }
    Status grow = put_reservation.ResizeTo(put_bytes + frame_bytes);
    if (!grow.ok()) {
      first_error = grow;
      continue;
    }
    put_bytes = put_bytes + frame_bytes;
    auto batch = ipc::DeserializeBatch(next->body.data(), next->body.size());
    if (!batch.ok()) {
      first_error = batch.status();
      continue;
    }
    if (!batches.empty() &&
        !(*batch)->schema()->Equals(*batches.front()->schema())) {
      first_error = Status::Invalid("flight: put batches disagree on schema");
      continue;
    }
    rows += (*batch)->num_rows();
    batches.push_back(std::move(*batch));
  }
  FUSION_RETURN_NOT_OK(first_error);
  if (batches.empty()) {
    return Status::Invalid("flight: do-put requires at least one batch");
  }
  SchemaPtr schema = batches.front()->schema();
  FUSION_ASSIGN_OR_RAISE(
      auto provider,
      catalog::MemoryTable::Make(std::move(schema), std::move(batches)));
  // The catalog's RegisterTable replaces silently; the wire contract
  // requires the explicit kFlagReplaceTable opt-in for that.
  if (session_ctx_->GetTable(table).ok()) {
    if (!replace) {
      return Status::Invalid("flight: table '" + table +
                             "' already exists (set the replace flag)");
    }
    session_ctx_->DeregisterTable(table);  // bumps the catalog epoch
  }
  FUSION_RETURN_NOT_OK(session_ctx_->RegisterTable(table, provider));
  puts_.fetch_add(1);
  BodyWriter w;
  w.PutU64(static_cast<uint64_t>(rows));
  return s->Push(FrameType::kOk, 0, w.Finish(),
                 options_.send_queue_frames, options_.session_memory_bytes);
}

void FlightServer::RunSession(Session* s) {
  bool hard_failure = false;
  for (;;) {
    auto frame = s->socket.ReadFrame(max_frame_bytes_);
    if (!frame.ok()) {
      // Clean hangup, connection loss, injected flight.read fault, or
      // a malformed/hostile header: once framing is unreliable nothing
      // later on the socket can be trusted, so tear the session down.
      if (!IsHangup(frame.status())) {
        frame_errors_.fetch_add(1);
        hard_failure = true;
      }
      break;
    }
    bytes_received_.fetch_add(
        static_cast<int64_t>(frame->body.size() + kFrameHeaderBytes));
    Status st;
    switch (frame->type) {
      case FrameType::kPing: {
        BodyWriter w;
        w.PutU64(0);
        st = s->Push(FrameType::kOk, 0, w.Finish(),
                     options_.send_queue_frames, options_.session_memory_bytes);
        break;
      }
      case FrameType::kDoGet:
        st = HandleDoGet(s, *frame);
        break;
      case FrameType::kPrepare:
        st = HandlePrepare(s, *frame);
        break;
      case FrameType::kDoGetPrepared:
        st = HandleDoGetPrepared(s, *frame);
        break;
      case FrameType::kClosePrepared:
        st = HandleClosePrepared(s, *frame);
        break;
      case FrameType::kDoPut:
        st = HandleDoPut(s, *frame);
        break;
      default:
        st = Status::IOError("flight: unexpected frame type " +
                             std::to_string(static_cast<int>(frame->type)));
        frame_errors_.fetch_add(1);
    }
    if (!st.ok()) {
      // Per-request errors go back as an error frame; if even that
      // cannot be queued the connection is dead.
      Status sent =
          s->Push(FrameType::kError, 0, EncodeError(st),
                  options_.send_queue_frames, options_.session_memory_bytes);
      if (!sent.ok()) {
        hard_failure = true;
        break;
      }
    }
    if (s->drain_requested.load()) {
      // Drain: this request (queued results or error frame included,
      // flushed below) was the session's last. Drain outcome accounting
      // happens in the do-get handlers, where the query result is known.
      break;
    }
  }
  // Teardown: flush what the client can still receive, then join the
  // writer, release the reservation, close.
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (hard_failure) {
      s->queue.clear();
      s->queued_bytes = 0;
      s->reservation->ResizeTo(0);
      s->write_failed = true;
    }
    s->flush_and_finish = true;
    s->cv_data.notify_all();
    s->cv_space.notify_all();
  }
  if (s->writer.joinable()) s->writer.join();
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->queue.clear();
    s->queued_bytes = 0;
    s->reservation->ResizeTo(0);
  }
  // Drop the pool consumer now (not at object reap) so "zero leaked
  // bytes/consumers after disconnect" holds as soon as the session ends.
  s->reservation.reset();
  s->CloseSocket();
  s->done.store(true);
  active_sessions_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_cv_.notify_all();
  }
}

DrainResult FlightServer::Shutdown(int64_t drain_timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (shut_down_) {
      return DrainResult{drain_finished_.load(), drain_cancelled_.load()};
    }
    shut_down_ = true;
  }
  draining_.store(true);
  // Stop accepting: wake the blocked accept() and join the listener.
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Phase 1 — signal every session. Idle sessions get their read side
  // shut so the blocked ReadFrame wakes as a clean hangup; sessions
  // with a query in flight are left to finish it (RunSession breaks
  // after the current request once drain_requested is set).
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      s->drain_requested.store(true);
      if (!s->in_flight.load()) {
        s->ShutdownSocketRead();
      }
    }
  }
  // Phase 2 — wait for in-flight work to finish and queues to flush.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(drain_timeout_ms);
  {
    std::unique_lock<std::mutex> lock(sessions_mu_);
    sessions_cv_.wait_until(lock, deadline, [&] {
      for (const auto& s : sessions_) {
        if (!s->done.load()) return false;
      }
      return true;
    });
  }
  // Phase 3 — the drain deadline has passed: cancel stragglers and
  // sever their sockets so every thread unwinds promptly.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& s : sessions_) {
      if (!s->done.load()) {
        s->CancelActiveQuery();
        s->ShutdownSocketBoth();
      }
    }
  }
  // Phase 4 — join everything unconditionally (cancellation lands
  // within one batch; dead sockets fail queued writes immediately).
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    if (s->handler.joinable()) s->handler.join();
  }
  return DrainResult{drain_finished_.load(), drain_cancelled_.load()};
}

}  // namespace flight
}  // namespace fusion
