#include "flight/client.h"

#include "arrow/ipc.h"
#include "compute/cast.h"

namespace fusion {
namespace flight {

Result<std::unique_ptr<FlightClient>> FlightClient::Connect(
    const std::string& address, int port) {
  FUSION_ASSIGN_OR_RAISE(Socket socket, ConnectTcp(address, port));
  auto client = std::unique_ptr<FlightClient>(new FlightClient(std::move(socket)));
  client->max_frame_bytes_ = ipc::MaxFrameBytes();
  return client;
}

FlightClient::~FlightClient() { Close(); }

void FlightClient::Close() { socket_.Close(); }

Status FlightClient::CheckIdle() const {
  if (!socket_.valid()) return Status::IOError("flight: client closed");
  if (broken_) {
    return Status::IOError("flight: connection desynced by an earlier failure");
  }
  if (stream_open_) {
    return Status::Invalid(
        "flight: a result stream is still open on this connection");
  }
  return Status::OK();
}

Result<Frame> FlightClient::ReadResponse() {
  auto frame = socket_.ReadFrame(max_frame_bytes_);
  if (!frame.ok()) {
    broken_ = true;
    return frame.status();
  }
  if (frame->type == FrameType::kError) {
    return DecodeError(frame->body);
  }
  return frame;
}

Result<std::unique_ptr<FlightClient::Reader>> FlightClient::DoGet(
    const std::string& sql, FlightCallOptions options) {
  FUSION_RETURN_NOT_OK(CheckIdle());
  BodyWriter w;
  w.PutU64(static_cast<uint64_t>(options.timeout_ms));
  w.PutString(sql);
  Status sent = socket_.SendFrame(FrameType::kDoGet, 0, w.Finish());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  stream_open_ = true;
  return std::unique_ptr<Reader>(new Reader(this, options.densify));
}

Result<std::vector<RecordBatchPtr>> FlightClient::Get(const std::string& sql,
                                                      FlightCallOptions options) {
  FUSION_ASSIGN_OR_RAISE(auto reader, DoGet(sql, options));
  std::vector<RecordBatchPtr> batches;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, reader->Next());
    if (batch == nullptr) break;
    batches.push_back(std::move(batch));
  }
  return batches;
}

Result<PreparedStatement> FlightClient::Prepare(const std::string& sql) {
  FUSION_RETURN_NOT_OK(CheckIdle());
  BodyWriter w;
  w.PutString(sql);
  Status sent = socket_.SendFrame(FrameType::kPrepare, 0, w.Finish());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  FUSION_ASSIGN_OR_RAISE(Frame reply, ReadResponse());
  if (reply.type != FrameType::kPrepared) {
    broken_ = true;
    return Status::IOError("flight: unexpected reply to prepare");
  }
  BodyReader r(reply.body);
  FUSION_ASSIGN_OR_RAISE(uint64_t handle, r.U64());
  FUSION_RETURN_NOT_OK(r.Done());
  return PreparedStatement{handle};
}

Result<std::unique_ptr<FlightClient::Reader>> FlightClient::DoGetPrepared(
    PreparedStatement statement, FlightCallOptions options) {
  FUSION_RETURN_NOT_OK(CheckIdle());
  BodyWriter w;
  w.PutU64(statement.handle);
  w.PutU64(static_cast<uint64_t>(options.timeout_ms));
  Status sent = socket_.SendFrame(FrameType::kDoGetPrepared, 0, w.Finish());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  stream_open_ = true;
  return std::unique_ptr<Reader>(new Reader(this, options.densify));
}

Result<std::vector<RecordBatchPtr>> FlightClient::GetPrepared(
    PreparedStatement statement, FlightCallOptions options) {
  FUSION_ASSIGN_OR_RAISE(auto reader, DoGetPrepared(statement, options));
  std::vector<RecordBatchPtr> batches;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, reader->Next());
    if (batch == nullptr) break;
    batches.push_back(std::move(batch));
  }
  return batches;
}

Status FlightClient::ClosePrepared(PreparedStatement statement) {
  FUSION_RETURN_NOT_OK(CheckIdle());
  BodyWriter w;
  w.PutU64(statement.handle);
  Status sent = socket_.SendFrame(FrameType::kClosePrepared, 0, w.Finish());
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  FUSION_ASSIGN_OR_RAISE(Frame reply, ReadResponse());
  if (reply.type != FrameType::kOk) {
    broken_ = true;
    return Status::IOError("flight: unexpected reply to close-prepared");
  }
  return Status::OK();
}

Result<int64_t> FlightClient::Put(const std::string& name,
                                  const std::vector<RecordBatchPtr>& batches,
                                  bool replace) {
  FUSION_RETURN_NOT_OK(CheckIdle());
  BodyWriter w;
  w.PutString(name);
  uint8_t flags = replace ? kFlagReplaceTable : 0;
  Status sent = socket_.SendFrame(FrameType::kDoPut, flags, w.Finish());
  for (const auto& batch : batches) {
    if (!sent.ok()) break;
    std::vector<uint8_t> blob = ipc::SerializeBatch(*batch);
    if (static_cast<int64_t>(blob.size()) > max_frame_bytes_) {
      sent = Status::Invalid("flight: put batch exceeds max frame size");
      break;
    }
    sent = socket_.SendFrame(FrameType::kPutBatch, 0, blob);
  }
  if (sent.ok()) {
    sent = socket_.SendFrame(FrameType::kPutDone, 0, nullptr, 0);
  }
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  FUSION_ASSIGN_OR_RAISE(Frame reply, ReadResponse());
  if (reply.type != FrameType::kOk) {
    broken_ = true;
    return Status::IOError("flight: unexpected reply to do-put");
  }
  BodyReader r(reply.body);
  FUSION_ASSIGN_OR_RAISE(uint64_t rows, r.U64());
  FUSION_RETURN_NOT_OK(r.Done());
  return static_cast<int64_t>(rows);
}

Status FlightClient::Ping() {
  FUSION_RETURN_NOT_OK(CheckIdle());
  Status sent = socket_.SendFrame(FrameType::kPing, 0, nullptr, 0);
  if (!sent.ok()) {
    broken_ = true;
    return sent;
  }
  FUSION_ASSIGN_OR_RAISE(Frame reply, ReadResponse());
  if (reply.type != FrameType::kOk) {
    broken_ = true;
    return Status::IOError("flight: unexpected reply to ping");
  }
  return Status::OK();
}

FlightClient::Reader::~Reader() {
  if (client_ == nullptr) return;
  if (!finished_) {
    // Abandoning mid-stream: sever the connection so the server's
    // writer fails fast and the query is cancelled; a half-consumed
    // stream cannot be resynced request-by-request.
    client_->broken_ = true;
    client_->socket_.ShutdownBoth();
  }
  client_->stream_open_ = false;
}

Result<RecordBatchPtr> FlightClient::Reader::Next() {
  if (finished_) return RecordBatchPtr();
  auto frame = client_->socket_.ReadFrame(client_->max_frame_bytes_);
  if (!frame.ok()) {
    client_->broken_ = true;
    finished_ = true;
    return frame.status();
  }
  switch (frame->type) {
    case FrameType::kBatch: {
      auto batch = ipc::DeserializeBatch(frame->body.data(), frame->body.size());
      if (!batch.ok()) {
        // Undecodable payload: framing may still be intact but the
        // stream's contents cannot be trusted — treat as fatal.
        client_->broken_ = true;
        finished_ = true;
        return batch.status();
      }
      summary_.rows += (*batch)->num_rows();
      ++summary_.batches;
      if (densify_) return compute::EnsureDenseBatch(std::move(*batch));
      return std::move(*batch);
    }
    case FrameType::kStreamEnd: {
      finished_ = true;
      BodyReader r(frame->body);
      FUSION_ASSIGN_OR_RAISE(uint64_t rows, r.U64());
      FUSION_ASSIGN_OR_RAISE(uint64_t batches, r.U64());
      FUSION_RETURN_NOT_OK(r.Done());
      if (static_cast<int64_t>(rows) != summary_.rows ||
          static_cast<int64_t>(batches) != summary_.batches) {
        return Status::IOError("flight: stream summary mismatch (got " +
                               std::to_string(summary_.rows) + " rows, server sent " +
                               std::to_string(rows) + ")");
      }
      return RecordBatchPtr();
    }
    case FrameType::kError:
      finished_ = true;
      return DecodeError(frame->body);
    default:
      client_->broken_ = true;
      finished_ = true;
      return Status::IOError("flight: unexpected frame in result stream");
  }
}

}  // namespace flight
}  // namespace fusion
