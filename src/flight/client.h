#ifndef FUSION_FLIGHT_CLIENT_H_
#define FUSION_FLIGHT_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arrow/record_batch.h"
#include "flight/wire.h"

namespace fusion {
namespace flight {

/// Per-call knobs for FlightClient requests.
struct FlightCallOptions {
  /// Server-side query deadline in ms (0 = server default). Expiry
  /// cancels the query and the call fails with Status::Cancelled.
  int64_t timeout_ms = 0;
  /// Densify dictionary-encoded result columns on arrival, so client
  /// rows are byte-identical to in-process ExecuteSql results. Turn
  /// off to keep the compact wire representation.
  bool densify = true;
};

/// Handle to a server-side prepared statement (per-connection).
struct PreparedStatement {
  uint64_t handle = 0;
};

/// Terminal summary of a do-get stream.
struct StreamSummary {
  int64_t rows = 0;
  int64_t batches = 0;
};

/// \brief Blocking client for the flight wire protocol (flight/wire.h).
///
/// One connection, sequential requests: issue a call, consume its
/// response fully, then issue the next. Results of DoGet/DoGetPrepared
/// are pulled through a Reader so large result sets stream with
/// backpressure instead of materializing; Get/GetPrepared are the
/// collect-everything conveniences.
///
/// Every frame read validates magic/version/length against the same
/// cap as the server, so a hostile or corrupt peer yields Status, not
/// a crash. Not thread-safe; use one client per thread.
class FlightClient {
 public:
  /// One in-flight do-get result stream. Drive Next() to nullptr (end
  /// of stream), or drop the Reader early — the destructor severs the
  /// connection so the server tears the query down (the client must
  /// reconnect; mid-stream abandonment is a connection-level event).
  class Reader {
   public:
    ~Reader();

    const StreamSummary& summary() const { return summary_; }

    /// Next result batch, or nullptr after the stream ends cleanly.
    Result<RecordBatchPtr> Next();

   private:
    friend class FlightClient;
    Reader(FlightClient* client, bool densify)
        : client_(client), densify_(densify) {}

    FlightClient* client_;
    bool densify_ = false;
    bool finished_ = false;
    StreamSummary summary_;
  };

  static Result<std::unique_ptr<FlightClient>> Connect(
      const std::string& address, int port);

  ~FlightClient();

  /// Run SQL, stream results through a Reader (one at a time).
  Result<std::unique_ptr<Reader>> DoGet(const std::string& sql,
                                        FlightCallOptions options = {});
  /// Run SQL and collect every batch.
  Result<std::vector<RecordBatchPtr>> Get(const std::string& sql,
                                          FlightCallOptions options = {});

  /// Parse + bind SQL server-side once; execute many times.
  Result<PreparedStatement> Prepare(const std::string& sql);
  Result<std::unique_ptr<Reader>> DoGetPrepared(PreparedStatement statement,
                                                FlightCallOptions options = {});
  Result<std::vector<RecordBatchPtr>> GetPrepared(PreparedStatement statement,
                                                  FlightCallOptions options = {});
  Status ClosePrepared(PreparedStatement statement);

  /// Upload batches and register them as table `name` on the server.
  /// `replace` swaps out an existing table of the same name.
  Result<int64_t> Put(const std::string& name,
                      const std::vector<RecordBatchPtr>& batches,
                      bool replace = false);

  /// Round-trip liveness probe.
  Status Ping();

  void Close();

 private:
  explicit FlightClient(Socket socket) : socket_(std::move(socket)) {}

  Status CheckIdle() const;
  /// Read one response frame, decoding kError frames into their Status.
  Result<Frame> ReadResponse();

  Socket socket_;
  int64_t max_frame_bytes_ = 0;
  bool stream_open_ = false;  ///< a Reader is consuming the connection
  bool broken_ = false;       ///< protocol desync; connection unusable
};

}  // namespace flight
}  // namespace fusion

#endif  // FUSION_FLIGHT_CLIENT_H_
