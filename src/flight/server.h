#ifndef FUSION_FLIGHT_SERVER_H_
#define FUSION_FLIGHT_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session_context.h"
#include "flight/wire.h"

namespace fusion {
namespace flight {

/// Server tunables.
struct FlightServerOptions {
  /// TCP port; 0 binds an ephemeral port (see FlightServer::port()).
  int port = 0;
  std::string bind_address = "127.0.0.1";
  /// Connections beyond this are accepted and immediately refused with
  /// a ResourcesExhausted error frame (fail-fast, like admission).
  int max_connections = 1024;
  /// Bounded per-session send queue (frames). The do-get pump blocks
  /// pushing into a full queue, so a slow client back-pressures query
  /// execution instead of buffering the result set.
  int send_queue_frames = 4;
  /// Per-frame size cap on both directions; 0 = ipc::MaxFrameBytes().
  int64_t max_frame_bytes = 0;
  /// Deadline applied to queries that don't carry their own timeout
  /// (0 = none). Expiry cancels the query and sends an error frame.
  int64_t default_timeout_ms = 0;
  /// Bytes of serialized results a session may hold queued; reservations
  /// are charged to the runtime's memory pool ("flight.session.<id>"),
  /// so server result buffering is visible to admission watermarks.
  int64_t session_memory_bytes = 64 << 20;
  /// Total bytes one do-put upload may accumulate server-side before
  /// kPutDone (each frame is additionally capped by max_frame_bytes).
  /// Held batches are charged to the pool as "flight.put.<id>"; going
  /// over either limit fails the put with ResourcesExhausted.
  int64_t max_put_bytes = 256 << 20;
};

/// Counters exposed by FlightServer::stats(); plain snapshot struct.
struct FlightServerStats {
  int64_t accepted = 0;           ///< connections accepted
  int64_t refused = 0;            ///< over max_connections or accept fault
  int64_t active_sessions = 0;
  int64_t peak_sessions = 0;
  int64_t queries_started = 0;
  int64_t queries_ok = 0;
  int64_t queries_err = 0;        ///< failed with a non-cancel error
  int64_t queries_cancelled = 0;  ///< deadline / drain / disconnect kills
  int64_t queries_rejected = 0;   ///< admission-control rejections
  int64_t prepared_statements = 0;
  int64_t puts = 0;
  int64_t batches_sent = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t frame_errors = 0;       ///< malformed/hostile frames rejected
};

/// Outcome of a graceful drain (Shutdown).
struct DrainResult {
  int64_t finished = 0;   ///< in-flight queries that completed
  /// In-flight queries cancelled during the drain, whether by the drain
  /// deadline or by their own query timeout expiring mid-drain.
  int64_t cancelled = 0;
};

/// \brief TCP query server speaking the Flight-like do-get/do-put
/// protocol of flight/wire.h over one shared SessionContext.
///
/// A listener thread accepts connections; each connection becomes a
/// *session* with two threads: a handler that reads request frames and
/// drives query execution (through SessionContext::ExecuteSqlStream —
/// the PR-7 admission gate, plan cache and scheduler task groups all
/// apply per query), and a writer that drains the session's bounded
/// send queue to the socket. Results stream back batch-by-batch as
/// dictionary-preserving IPC blobs; the bounded queue plus blocking
/// socket writes give end-to-end backpressure.
///
/// Robustness contract: any malformed frame, connection drop, fault
/// injection (flight.accept / flight.read / flight.write), deadline
/// expiry or admission rejection ends with a clean error frame and/or
/// session teardown that cancels the in-flight query, joins its task
/// group and releases every memory reservation — no leaked pool bytes,
/// consumers, or threads.
///
/// Shutdown(drain_ms) is the graceful drain: stop accepting, let
/// in-flight queries finish (up to the deadline), flush send queues,
/// then cancel stragglers and join everything.
class FlightServer {
 public:
  /// Bind, listen and start the accept loop.
  static Result<std::unique_ptr<FlightServer>> Start(
      core::SessionContextPtr session, FlightServerOptions options = {});

  ~FlightServer();

  /// The bound port (useful with options.port == 0).
  int port() const { return port_; }

  FlightServerStats stats() const;

  /// Graceful drain; safe to call once. Returns how many in-flight
  /// queries finished vs. were cancelled at the drain deadline.
  DrainResult Shutdown(int64_t drain_timeout_ms = 5000);

 private:
  struct Session;

  FlightServer(core::SessionContextPtr session, FlightServerOptions options);

  void AcceptLoop();
  void RunSession(Session* session);
  void WriterLoop(Session* session);
  void ReapFinishedSessions();

  // Request handlers; all errors become kError frames on the session.
  Status HandleDoGet(Session* session, const Frame& frame);
  Status HandleDoGetPrepared(Session* session, const Frame& frame);
  Status HandlePrepare(Session* session, const Frame& frame);
  Status HandleClosePrepared(Session* session, const Frame& frame);
  Status HandleDoPut(Session* session, const Frame& frame);
  Status StreamQuery(Session* session, core::QueryStreamPtr stream,
                     int64_t timeout_ms);

  core::SessionContextPtr session_ctx_;
  FlightServerOptions options_;
  int64_t max_frame_bytes_ = 0;
  Socket listener_;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};

  mutable std::mutex sessions_mu_;
  std::condition_variable sessions_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<uint64_t> next_session_id_{0};
  bool shut_down_ = false;

  // Stats counters (relaxed; snapshotted by stats()).
  std::atomic<int64_t> accepted_{0}, refused_{0}, active_sessions_{0},
      peak_sessions_{0}, queries_started_{0}, queries_ok_{0}, queries_err_{0},
      queries_cancelled_{0}, queries_rejected_{0}, prepared_statements_{0},
      puts_{0}, batches_sent_{0}, bytes_sent_{0}, bytes_received_{0},
      frame_errors_{0}, drain_finished_{0}, drain_cancelled_{0};
};

}  // namespace flight
}  // namespace fusion

#endif  // FUSION_FLIGHT_SERVER_H_
