#ifndef FUSION_FLIGHT_WIRE_H_
#define FUSION_FLIGHT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"

namespace fusion {
namespace flight {

/// \brief The flight wire protocol, version 1.
///
/// Everything on the socket is a length-prefixed *frame*:
///
///   u32 magic   "FLT1" (0x464C5431)
///   u16 version 1
///   u8  type    FrameType
///   u8  flags   FrameFlags bitmask
///   u64 body_len
///   [body_len bytes]
///
/// A reader validates magic, version and body_len (against the shared
/// ipc::MaxFrameBytes() cap) before allocating the body, so a hostile
/// peer can neither wrap the bounds check nor drive an unbounded
/// allocation. Batches travel inside kBatch/kPutBatch bodies as the
/// hardened ipc blob format, dictionary encoding preserved.
///
/// The conversation is sequential per connection: the client sends one
/// request frame (plus kPutBatch.../kPutDone for uploads) and reads
/// response frames until kStreamEnd / kOk / kPrepared / kError. Errors
/// are per-request; the connection stays usable afterwards.

constexpr uint32_t kFrameMagic = 0x464C5431;  // "FLT1"
constexpr uint16_t kProtocolVersion = 1;
constexpr size_t kFrameHeaderBytes = 16;

enum class FrameType : uint8_t {
  // Client -> server requests.
  kDoGet = 1,           ///< body: u64 timeout_ms, string sql
  kPrepare = 2,         ///< body: string sql
  kDoGetPrepared = 3,   ///< body: u64 handle, u64 timeout_ms
  kDoPut = 4,           ///< body: string table name; then kPutBatch*, kPutDone
  kPutBatch = 5,        ///< body: ipc blob
  kPutDone = 6,         ///< empty body
  kClosePrepared = 7,   ///< body: u64 handle
  kPing = 8,            ///< empty body

  // Server -> client responses.
  kBatch = 16,      ///< body: ipc blob (one result batch)
  kStreamEnd = 17,  ///< body: u64 rows, u64 batches — do-get completed
  kError = 18,      ///< body: u32 status code, string message
  kOk = 19,         ///< body: u64 value (rows for puts, 0 otherwise)
  kPrepared = 20,   ///< body: u64 statement handle
};

enum FrameFlags : uint8_t {
  /// kBatch body contains at least one dictionary-encoded column.
  kFlagDictionary = 1,
  /// kDoPut: replace an existing table of the same name.
  kFlagReplaceTable = 2,
};

/// One parsed frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint8_t flags = 0;
  std::vector<uint8_t> body;
};

/// \brief Append-only body builder (all integers little-endian).
class BodyWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// u32 length + raw bytes.
  void PutString(const std::string& s);
  void PutBytes(const uint8_t* data, size_t len);

  std::vector<uint8_t> Finish() { return std::move(body_); }

 private:
  std::vector<uint8_t> body_;
};

/// \brief Bounds-checked body parser: every read validates against the
/// remaining bytes (`len > remaining`, wrap-proof) and string lengths
/// are checked before allocation. Malformed bodies yield IOError.
class BodyReader {
 public:
  BodyReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BodyReader(const std::vector<uint8_t>& body)
      : BodyReader(body.data(), body.size()) {}

  size_t remaining() const { return size_ - pos_; }
  const uint8_t* position() const { return data_ + pos_; }

  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::string> String();
  /// All bytes from the current position to the end of the body.
  Status Done() const;  ///< error if bytes remain unconsumed

 private:
  Status Read(void* out, size_t len);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// \brief Blocking socket with frame send/recv. Owns the fd.
///
/// `fault_site_prefix` names the FaultInjector sites consulted per
/// frame ("flight" -> flight.read / flight.write on the server side);
/// empty disables injection (the client side), so scripted server
/// faults do not also fire in the client under test.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd, std::string fault_site_prefix = "")
      : fd_(fd), fault_site_prefix_(std::move(fault_site_prefix)) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept { *this = std::move(other); }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Send one frame (header + body), fully or with an IOError.
  Status SendFrame(FrameType type, uint8_t flags, const uint8_t* body,
                   size_t body_len);
  Status SendFrame(FrameType type, uint8_t flags, const std::vector<uint8_t>& body) {
    return SendFrame(type, flags, body.data(), body.size());
  }

  /// Read one frame. Returns IOError on malformed header, oversized
  /// body (> max_body_bytes), or connection loss; `eof_ok` turns a
  /// clean close before any header byte into a Frame-less nullopt-style
  /// error with Status code kCancelled (callers treat it as hangup).
  Result<Frame> ReadFrame(int64_t max_body_bytes);

  /// Half-close / full close used to wake a peer or a blocked reader.
  void ShutdownBoth();
  void Close();

 private:
  Status WriteFully(const uint8_t* data, size_t len);
  Status ReadFully(uint8_t* data, size_t len, bool* clean_eof);

  int fd_ = -1;
  std::string fault_site_prefix_;
};

/// Status for "the peer hung up cleanly between requests".
bool IsHangup(const Status& status);

/// Build + parse the error-frame body (status code round-trips).
std::vector<uint8_t> EncodeError(const Status& status);
Status DecodeError(const std::vector<uint8_t>& body);

/// TCP helpers (IPv4). `port` 0 binds an ephemeral port; the bound port
/// is returned through `out_port`.
Result<Socket> ListenTcp(const std::string& address, int port, int* out_port);
Result<Socket> ConnectTcp(const std::string& address, int port);

}  // namespace flight
}  // namespace fusion

#endif  // FUSION_FLIGHT_WIRE_H_
