#include "flight/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injector.h"

namespace fusion {
namespace flight {

namespace {

void PutLE(std::vector<uint8_t>* out, const void* v, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(v);
  out->insert(out->end(), p, p + n);
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

void BodyWriter::PutU32(uint32_t v) { PutLE(&body_, &v, 4); }
void BodyWriter::PutU64(uint64_t v) { PutLE(&body_, &v, 8); }
void BodyWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutLE(&body_, s.data(), s.size());
}
void BodyWriter::PutBytes(const uint8_t* data, size_t len) {
  PutLE(&body_, data, len);
}

Status BodyReader::Read(void* out, size_t len) {
  if (len > remaining()) return Status::IOError("flight: truncated frame body");
  std::memcpy(out, data_ + pos_, len);
  pos_ += len;
  return Status::OK();
}

Result<uint32_t> BodyReader::U32() {
  uint32_t v = 0;
  FUSION_RETURN_NOT_OK(Read(&v, 4));
  return v;
}

Result<uint64_t> BodyReader::U64() {
  uint64_t v = 0;
  FUSION_RETURN_NOT_OK(Read(&v, 8));
  return v;
}

Result<std::string> BodyReader::String() {
  FUSION_ASSIGN_OR_RAISE(uint32_t len, U32());
  if (len > remaining()) return Status::IOError("flight: truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status BodyReader::Done() const {
  if (remaining() != 0) {
    return Status::IOError("flight: " + std::to_string(remaining()) +
                           " trailing bytes in frame body");
  }
  return Status::OK();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    fault_site_prefix_ = std::move(other.fault_site_prefix_);
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::WriteFully(const uint8_t* data, size_t len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process
    // signal — connection drops are a Status, never a crash.
    ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("flight: send failed");
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadFully(uint8_t* data, size_t len, bool* clean_eof) {
  bool first = true;
  while (len > 0) {
    ssize_t n = ::recv(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("flight: recv failed");
    }
    if (n == 0) {
      if (first && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IOError("flight: connection closed mid-frame");
    }
    first = false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SendFrame(FrameType type, uint8_t flags, const uint8_t* body,
                         size_t body_len) {
  if (!valid()) return Status::IOError("flight: send on closed socket");
  if (!fault_site_prefix_.empty()) {
    FUSION_RETURN_NOT_OK(
        FaultInjector::Maybe((fault_site_prefix_ + ".write").c_str()));
  }
  uint8_t header[kFrameHeaderBytes];
  uint32_t magic = kFrameMagic;
  uint16_t version = kProtocolVersion;
  uint64_t len64 = body_len;
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &version, 2);
  header[6] = static_cast<uint8_t>(type);
  header[7] = flags;
  std::memcpy(header + 8, &len64, 8);
  FUSION_RETURN_NOT_OK(WriteFully(header, kFrameHeaderBytes));
  if (body_len > 0) FUSION_RETURN_NOT_OK(WriteFully(body, body_len));
  return Status::OK();
}

Result<Frame> Socket::ReadFrame(int64_t max_body_bytes) {
  if (!valid()) return Status::IOError("flight: read on closed socket");
  if (!fault_site_prefix_.empty()) {
    FUSION_RETURN_NOT_OK(
        FaultInjector::Maybe((fault_site_prefix_ + ".read").c_str()));
  }
  uint8_t header[kFrameHeaderBytes];
  bool clean_eof = false;
  FUSION_RETURN_NOT_OK(ReadFully(header, kFrameHeaderBytes, &clean_eof));
  if (clean_eof) {
    // Orderly hangup between frames; callers check IsHangup().
    return Status::Cancelled("flight: peer closed connection");
  }
  uint32_t magic;
  uint16_t version;
  uint64_t body_len;
  std::memcpy(&magic, header, 4);
  std::memcpy(&version, header + 4, 2);
  std::memcpy(&body_len, header + 8, 8);
  if (magic != kFrameMagic) return Status::IOError("flight: bad frame magic");
  if (version != kProtocolVersion) {
    return Status::IOError("flight: unsupported protocol version " +
                           std::to_string(version));
  }
  // The length prefix is attacker-controlled: cap it before the body
  // buffer is sized, so a hostile peer cannot force an OOM.
  if (body_len > static_cast<uint64_t>(max_body_bytes)) {
    return Status::IOError("flight: frame body of " + std::to_string(body_len) +
                           " bytes exceeds limit " +
                           std::to_string(max_body_bytes));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[6]);
  frame.flags = header[7];
  frame.body.resize(static_cast<size_t>(body_len));
  if (body_len > 0) {
    FUSION_RETURN_NOT_OK(ReadFully(frame.body.data(), frame.body.size(), nullptr));
  }
  return frame;
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool IsHangup(const Status& status) {
  return status.code() == StatusCode::kCancelled &&
         status.message().find("peer closed connection") != std::string::npos;
}

std::vector<uint8_t> EncodeError(const Status& status) {
  BodyWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Finish();
}

Status DecodeError(const std::vector<uint8_t>& body) {
  BodyReader r(body);
  auto code = r.U32();
  auto msg = r.String();
  if (!code.ok() || !msg.ok()) {
    return Status::IOError("flight: malformed error frame");
  }
  auto status_code = static_cast<StatusCode>(*code);
  if (status_code == StatusCode::kOk ||
      *code > static_cast<uint32_t>(StatusCode::kResourcesExhausted)) {
    // Never let a hostile peer smuggle an OK through an error frame.
    status_code = StatusCode::kIoError;
  }
  return Status(status_code, "flight server: " + *msg);
}

Result<Socket> ListenTcp(const std::string& address, int port, int* out_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("flight: socket failed");
  Socket sock(fd, "flight");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("flight: bad IPv4 bind address " + address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("flight: bind to " + address + ":" + std::to_string(port));
  }
  if (::listen(fd, 128) != 0) return Errno("flight: listen failed");
  if (out_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return Errno("flight: getsockname failed");
    }
    *out_port = ntohs(addr.sin_port);
  }
  return sock;
}

Result<Socket> ConnectTcp(const std::string& address, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("flight: socket failed");
  // Clients carry no fault-site prefix: scripted server-side faults
  // (flight.read / flight.write) must not also fire in the client.
  Socket sock(fd, "");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  std::string numeric = address == "localhost" ? "127.0.0.1" : address;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("flight: bad IPv4 address " + address);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("flight: connect to " + numeric + ":" + std::to_string(port));
  }
  return sock;
}

}  // namespace flight
}  // namespace fusion
