#ifndef FUSION_PHYSICAL_PLANNER_H_
#define FUSION_PHYSICAL_PLANNER_H_

#include <unordered_map>
#include <vector>

#include "catalog/table_provider.h"
#include "logical/plan.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Lowers an optimized LogicalPlan to an ExecutionPlan (paper
/// §5.1 step 4): selects join algorithms and build sides from
/// statistics, plans two-phase aggregations, inserts exchange operators
/// (Repartition/Coalesce) to satisfy distribution requirements, elides
/// sorts satisfied by existing orderings (§6.7), and executes
/// uncorrelated scalar subqueries.
class PhysicalPlanner {
 public:
  explicit PhysicalPlanner(ExecContextPtr ctx) : ctx_(std::move(ctx)) {}

  Result<ExecPlanPtr> CreatePlan(const logical::PlanPtr& plan);

 private:
  Result<ExecPlanPtr> Plan(const logical::PlanPtr& plan);

  Result<ExecPlanPtr> PlanScan(const logical::PlanPtr& plan);
  Result<ExecPlanPtr> PlanAggregate(const logical::PlanPtr& plan);
  Result<ExecPlanPtr> PlanDistinct(const logical::PlanPtr& plan);
  Result<ExecPlanPtr> PlanJoin(const logical::PlanPtr& plan);
  Result<ExecPlanPtr> PlanSort(const logical::PlanPtr& plan);
  Result<ExecPlanPtr> PlanWindow(const logical::PlanPtr& plan);

  /// Replace scalar-subquery expressions with literals by executing the
  /// subquery plans.
  Result<logical::ExprPtr> ResolveSubqueries(const logical::ExprPtr& expr);

  ExecContextPtr ctx_;

  /// Runtime-filter channels created by PlanJoin for probe-side scans
  /// below it, keyed by logical scan node. Registered before the probe
  /// child is planned (a scan may open its provider during parent
  /// planning, so its ScanRequest cannot be mutated after the fact);
  /// PlanScan moves them into the request when it reaches the node.
  std::unordered_map<const logical::LogicalPlan*,
                     std::vector<catalog::RuntimeScanFilter>>
      pending_runtime_filters_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_PLANNER_H_
