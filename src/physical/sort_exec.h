#ifndef FUSION_PHYSICAL_SORT_EXEC_H_
#define FUSION_PHYSICAL_SORT_EXEC_H_

#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Per-partition external sort (paper §6.2): normalized-key
/// comparisons, spilling sorted runs to disk under memory pressure, and
/// a specialized Top-K path when a LIMIT was pushed into the sort.
class SortExec : public ExecutionPlan {
 public:
  SortExec(ExecPlanPtr input, std::vector<PhysicalSortExpr> sort_exprs,
           int64_t fetch = -1)
      : input_(std::move(input)), sort_exprs_(std::move(sort_exprs)), fetch_(fetch) {}

  std::string name() const override { return "SortExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override;
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  const std::vector<PhysicalSortExpr>& sort_exprs() const { return sort_exprs_; }
  int64_t fetch() const { return fetch_; }

  /// Number of spill files written across all partitions (observability
  /// for tests and EXPLAIN ANALYZE-style reporting).
  int64_t spill_count() const { return spills_.load(); }

 private:
  ExecPlanPtr input_;
  std::vector<PhysicalSortExpr> sort_exprs_;
  int64_t fetch_;
  std::atomic<int64_t> spills_{0};
};

/// \brief N sorted partitions -> 1 sorted stream (paper §6.2's merge
/// phase; the "tree of losers" is a binary heap over stream cursors).
class SortPreservingMergeExec : public ExecutionPlan {
 public:
  SortPreservingMergeExec(ExecPlanPtr input,
                          std::vector<PhysicalSortExpr> sort_exprs)
      : input_(std::move(input)), sort_exprs_(std::move(sort_exprs)) {}

  std::string name() const override { return "SortPreservingMergeExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override;
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  ExecPlanPtr input_;
  std::vector<PhysicalSortExpr> sort_exprs_;
};

/// Merge any number of individually sorted streams into one sorted
/// stream (shared by SortExec's spill merge and SortPreservingMerge).
Result<exec::StreamPtr> MergeSortedStreams(
    SchemaPtr schema, std::vector<std::shared_ptr<exec::RecordBatchStream>> inputs,
    std::vector<PhysicalSortExpr> sort_exprs, int64_t batch_size);

/// Ordering metadata for a list of sort expressions (column exprs only).
std::vector<OrderingInfo> OrderingFromSortExprs(
    const std::vector<PhysicalSortExpr>& sort_exprs);

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_SORT_EXEC_H_
