#include "physical/other_joins.h"

#include "arrow/builder.h"
#include "compute/selection.h"
#include "row/row_format.h"

namespace fusion {
namespace physical {

using logical::JoinKind;

namespace {

Result<RecordBatchPtr> CollectSide(const ExecPlanPtr& plan,
                                   const ExecContextPtr& ctx) {
  std::vector<RecordBatchPtr> batches;
  for (int p = 0; p < plan->output_partitions(); ++p) {
    FUSION_ASSIGN_OR_RAISE(auto stream, plan->Execute(p, ctx));
    FUSION_ASSIGN_OR_RAISE(auto part, exec::CollectStream(stream.get()));
    for (auto& b : part) batches.push_back(std::move(b));
  }
  return ConcatenateBatches(plan->schema(), batches);
}

/// Build (left ++ right) output from index pairs; -1 emits nulls.
Result<RecordBatchPtr> AssemblePairs(const SchemaPtr& schema,
                                     const RecordBatch& left,
                                     const RecordBatch& right,
                                     const std::vector<int64_t>& li,
                                     const std::vector<int64_t>& ri) {
  std::vector<ArrayPtr> columns;
  for (int c = 0; c < left.num_columns(); ++c) {
    FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*left.column(c), li));
    columns.push_back(std::move(col));
  }
  for (int c = 0; c < right.num_columns(); ++c) {
    FUSION_ASSIGN_OR_RAISE(auto col, compute::Take(*right.column(c), ri));
    columns.push_back(std::move(col));
  }
  return std::make_shared<RecordBatch>(schema, static_cast<int64_t>(li.size()),
                                       std::move(columns));
}

}  // namespace

// ------------------------------------------------------- SortMergeJoin

Result<exec::StreamPtr> SortMergeJoinExec::ExecuteImpl(int partition,
                                                   const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("SortMergeJoinExec has a single partition");
  }
  FUSION_ASSIGN_OR_RAISE(auto left, CollectSide(left_, ctx));
  FUSION_ASSIGN_OR_RAISE(auto right, CollectSide(right_, ctx));

  std::vector<PhysicalExprPtr> lkeys_e, rkeys_e;
  for (const auto& [l, r] : on_) {
    lkeys_e.push_back(l);
    rkeys_e.push_back(r);
  }
  FUSION_ASSIGN_OR_RAISE(auto lkeys, EvaluateToArrays(lkeys_e, *left));
  FUSION_ASSIGN_OR_RAISE(auto rkeys, EvaluateToArrays(rkeys_e, *right));
  std::vector<row::SortOptions> options(on_.size());  // ASC, nulls last

  const int64_t ln = left->num_rows();
  const int64_t rn = right->num_rows();
  std::vector<int64_t> li, ri;
  std::vector<uint8_t> left_matched(static_cast<size_t>(ln), 0);
  std::vector<uint8_t> right_matched(static_cast<size_t>(rn), 0);

  auto key_is_null = [](const std::vector<ArrayPtr>& keys, int64_t row) {
    for (const auto& k : keys) {
      if (k->IsNull(row)) return true;
    }
    return false;
  };

  int64_t l = 0, r = 0;
  while (l < ln && r < rn) {
    if (key_is_null(lkeys, l)) {
      ++l;
      continue;
    }
    if (key_is_null(rkeys, r)) {
      ++r;
      continue;
    }
    int cmp = row::CompareRows(lkeys, l, rkeys, r, options);
    if (cmp < 0) {
      ++l;
    } else if (cmp > 0) {
      ++r;
    } else {
      // Equal-key blocks: emit the cartesian product of the runs.
      int64_t l_end = l + 1;
      while (l_end < ln && !key_is_null(lkeys, l_end) &&
             row::CompareRows(lkeys, l, lkeys, l_end, options) == 0) {
        ++l_end;
      }
      int64_t r_end = r + 1;
      while (r_end < rn && !key_is_null(rkeys, r_end) &&
             row::CompareRows(rkeys, r, rkeys, r_end, options) == 0) {
        ++r_end;
      }
      for (int64_t i = l; i < l_end; ++i) {
        for (int64_t j = r; j < r_end; ++j) {
          li.push_back(i);
          ri.push_back(j);
        }
      }
      l = l_end;
      r = r_end;
    }
  }

  // Residual filter.
  if (filter_ != nullptr && !li.empty()) {
    SchemaPtr combined = schema_;
    // For semi/anti kinds schema_ is one side; build a scratch combined
    // schema for filter evaluation.
    std::vector<Field> fields = left->schema()->fields();
    for (const auto& f : right->schema()->fields()) fields.push_back(f);
    combined = std::make_shared<Schema>(std::move(fields));
    FUSION_ASSIGN_OR_RAISE(auto candidates,
                           AssemblePairs(combined, *left, *right, li, ri));
    FUSION_ASSIGN_OR_RAISE(auto mask, EvaluatePredicateMask(*filter_, *candidates));
    const auto& bm = checked_cast<BooleanArray>(*mask);
    std::vector<int64_t> kl, kr;
    for (int64_t i = 0; i < bm.length(); ++i) {
      if (bm.IsValid(i) && bm.Value(i)) {
        kl.push_back(li[i]);
        kr.push_back(ri[i]);
      }
    }
    li = std::move(kl);
    ri = std::move(kr);
  }
  for (size_t i = 0; i < li.size(); ++i) {
    left_matched[li[i]] = 1;
    right_matched[ri[i]] = 1;
  }

  // Assemble per kind.
  std::vector<RecordBatchPtr> out;
  auto push_chunks = [&](const RecordBatchPtr& batch) {
    for (const auto& c : SliceBatch(batch, ctx->config.batch_size)) {
      out.push_back(c);
    }
  };
  switch (kind_) {
    case JoinKind::kInner: {
      FUSION_ASSIGN_OR_RAISE(auto batch, AssemblePairs(schema_, *left, *right, li, ri));
      push_chunks(batch);
      break;
    }
    case JoinKind::kLeft:
    case JoinKind::kRight:
    case JoinKind::kFull: {
      if (kind_ != JoinKind::kRight) {
        for (int64_t i = 0; i < ln; ++i) {
          if (!left_matched[i]) {
            li.push_back(i);
            ri.push_back(-1);
          }
        }
      }
      if (kind_ != JoinKind::kLeft) {
        for (int64_t j = 0; j < rn; ++j) {
          if (!right_matched[j]) {
            li.push_back(-1);
            ri.push_back(j);
          }
        }
      }
      FUSION_ASSIGN_OR_RAISE(auto batch, AssemblePairs(schema_, *left, *right, li, ri));
      push_chunks(batch);
      break;
    }
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti: {
      const bool want = kind_ == JoinKind::kLeftSemi;
      std::vector<int64_t> keep;
      for (int64_t i = 0; i < ln; ++i) {
        if ((left_matched[i] != 0) == want) keep.push_back(i);
      }
      FUSION_ASSIGN_OR_RAISE(auto batch, compute::TakeBatch(*left, keep));
      push_chunks(std::make_shared<RecordBatch>(schema_, batch->num_rows(),
                                                batch->columns()));
      break;
    }
    default:
      return Status::NotImplemented(
          "SortMergeJoinExec does not support this join type; the planner "
          "should have selected a hash join");
  }
  return exec::StreamPtr(
      std::make_unique<exec::VectorStream>(schema_, std::move(out)));
}

// ------------------------------------------------------ NestedLoopJoin

Result<exec::StreamPtr> NestedLoopJoinExec::ExecuteImpl(int partition,
                                                    const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("NestedLoopJoinExec has a single partition");
  }
  FUSION_ASSIGN_OR_RAISE(auto left, CollectSide(left_, ctx));
  FUSION_ASSIGN_OR_RAISE(auto right, CollectSide(right_, ctx));
  const int64_t ln = left->num_rows();
  const int64_t rn = right->num_rows();

  std::vector<Field> fields = left->schema()->fields();
  for (const auto& f : right->schema()->fields()) fields.push_back(f);
  SchemaPtr combined = std::make_shared<Schema>(std::move(fields));

  std::vector<int64_t> li, ri;
  std::vector<uint8_t> left_matched(static_cast<size_t>(ln), 0);
  // Chunked evaluation: pair blocks of left rows with the whole right
  // side to keep candidate batches bounded.
  const int64_t block = std::max<int64_t>(1, ctx->config.batch_size / std::max<int64_t>(rn, 1));
  for (int64_t l0 = 0; l0 < ln; l0 += block) {
    int64_t l1 = std::min(ln, l0 + block);
    std::vector<int64_t> cl, cr;
    for (int64_t i = l0; i < l1; ++i) {
      for (int64_t j = 0; j < rn; ++j) {
        cl.push_back(i);
        cr.push_back(j);
      }
    }
    if (cl.empty()) continue;
    FUSION_ASSIGN_OR_RAISE(auto candidates,
                           AssemblePairs(combined, *left, *right, cl, cr));
    if (filter_ != nullptr) {
      FUSION_ASSIGN_OR_RAISE(auto mask, EvaluatePredicateMask(*filter_, *candidates));
      const auto& bm = checked_cast<BooleanArray>(*mask);
      for (int64_t i = 0; i < bm.length(); ++i) {
        if (bm.IsValid(i) && bm.Value(i)) {
          li.push_back(cl[i]);
          ri.push_back(cr[i]);
          left_matched[cl[i]] = 1;
        }
      }
    } else {
      for (size_t i = 0; i < cl.size(); ++i) {
        li.push_back(cl[i]);
        ri.push_back(cr[i]);
        left_matched[cl[i]] = 1;
      }
    }
  }

  std::vector<RecordBatchPtr> out;
  switch (kind_) {
    case JoinKind::kInner:
    case JoinKind::kCross:
      break;
    case JoinKind::kLeft:
      for (int64_t i = 0; i < ln; ++i) {
        if (!left_matched[i]) {
          li.push_back(i);
          ri.push_back(-1);
        }
      }
      break;
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti: {
      const bool want = kind_ == JoinKind::kLeftSemi;
      std::vector<int64_t> keep;
      for (int64_t i = 0; i < ln; ++i) {
        if ((left_matched[i] != 0) == want) keep.push_back(i);
      }
      FUSION_ASSIGN_OR_RAISE(auto batch, compute::TakeBatch(*left, keep));
      auto rebatch = std::make_shared<RecordBatch>(schema_, batch->num_rows(),
                                                   batch->columns());
      return exec::StreamPtr(std::make_unique<exec::VectorStream>(
          schema_, SliceBatch(rebatch, ctx->config.batch_size)));
    }
    default:
      return Status::NotImplemented(
          "NestedLoopJoinExec does not support this join type");
  }
  FUSION_ASSIGN_OR_RAISE(auto batch, AssemblePairs(schema_, *left, *right, li, ri));
  return exec::StreamPtr(std::make_unique<exec::VectorStream>(
      schema_, SliceBatch(batch, ctx->config.batch_size)));
}

// ---------------------------------------------------------- CrossJoin

Status CrossJoinExec::EnsureCollected(const ExecContextPtr& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (collected_) return collect_status_;
  collected_ = true;
  auto res = CollectSide(left_, ctx);
  if (!res.ok()) {
    collect_status_ = res.status();
  } else {
    left_batch_ = std::move(*res);
  }
  return collect_status_;
}

Result<exec::StreamPtr> CrossJoinExec::ExecuteImpl(int partition,
                                               const ExecContextPtr& ctx) {
  FUSION_RETURN_NOT_OK(EnsureCollected(ctx));
  FUSION_ASSIGN_OR_RAISE(auto right_stream, right_->Execute(partition, ctx));
  auto right = std::shared_ptr<exec::RecordBatchStream>(std::move(right_stream));
  auto left = left_batch_;
  SchemaPtr schema = schema_;
  int64_t batch_size = ctx->config.batch_size;
  // State: current right batch and position within the cross product.
  auto right_batch = std::make_shared<RecordBatchPtr>();
  auto l_pos = std::make_shared<int64_t>(0);
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [=]() -> Result<RecordBatchPtr> {
        for (;;) {
          if (*right_batch == nullptr || *l_pos >= left->num_rows()) {
            FUSION_ASSIGN_OR_RAISE(*right_batch, right->Next());
            *l_pos = 0;
            if (*right_batch == nullptr) return RecordBatchPtr(nullptr);
            if ((*right_batch)->num_rows() == 0) {
              *right_batch = nullptr;
              continue;
            }
            if (left->num_rows() == 0) {
              *right_batch = nullptr;
              continue;
            }
          }
          // Pair a block of left rows with the current right batch.
          const int64_t rn = (*right_batch)->num_rows();
          int64_t block = std::max<int64_t>(1, batch_size / rn);
          int64_t l_end = std::min(left->num_rows(), *l_pos + block);
          std::vector<int64_t> li, ri;
          li.reserve(static_cast<size_t>((l_end - *l_pos) * rn));
          for (int64_t i = *l_pos; i < l_end; ++i) {
            for (int64_t j = 0; j < rn; ++j) {
              li.push_back(i);
              ri.push_back(j);
            }
          }
          *l_pos = l_end;
          return AssemblePairs(schema, *left, **right_batch, li, ri);
        }
      }));
}

}  // namespace physical
}  // namespace fusion
