#ifndef FUSION_PHYSICAL_PHYSICAL_EXPR_H_
#define FUSION_PHYSICAL_PHYSICAL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "arrow/columnar_value.h"
#include "arrow/record_batch.h"
#include "common/result.h"
#include "compute/string_kernels.h"
#include "logical/expr.h"

namespace fusion {
namespace physical {

/// \brief Executable expression bound to concrete column indices
/// (paper §5.4.1's PhysicalExpr). Custom PhysicalExprs implement the
/// same interface as built-ins.
class PhysicalExpr {
 public:
  virtual ~PhysicalExpr() = default;

  virtual DataType type() const = 0;
  virtual Result<ColumnarValue> Evaluate(const RecordBatch& batch) const = 0;
  virtual std::string ToString() const = 0;
};

using PhysicalExprPtr = std::shared_ptr<PhysicalExpr>;

/// Direct column reference by index.
class ColumnExpr : public PhysicalExpr {
 public:
  ColumnExpr(std::string name, int index, DataType type)
      : name_(std::move(name)), index_(index), type_(type) {}

  DataType type() const override { return type_; }
  int index() const { return index_; }
  const std::string& name() const { return name_; }

  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    if (index_ >= batch.num_columns()) {
      return Status::ExecutionError("column index out of range: " + name_);
    }
    return ColumnarValue(batch.column(index_));
  }

  std::string ToString() const override {
    return name_ + "@" + std::to_string(index_);
  }

 private:
  std::string name_;
  int index_;
  DataType type_;
};

/// Compile a bound logical expression against the physical input schema
/// of an operator. `input` carries qualifiers for name resolution.
Result<PhysicalExprPtr> CreatePhysicalExpr(const logical::ExprPtr& expr,
                                           const logical::PlanSchema& input);

/// Wrap an expression in a runtime cast (used by the planner for key
/// type alignment).
PhysicalExprPtr MakeCastExpr(PhysicalExprPtr child, DataType target);

/// Evaluate an expression list into output arrays of `batch.num_rows()`.
Result<std::vector<ArrayPtr>> EvaluateToArrays(
    const std::vector<PhysicalExprPtr>& exprs, const RecordBatch& batch);

/// Evaluate a boolean predicate into a selection mask.
Result<ArrayPtr> EvaluatePredicateMask(const PhysicalExpr& predicate,
                                       const RecordBatch& batch);

/// A sort key bound to physical columns.
struct PhysicalSortExpr {
  PhysicalExprPtr expr;
  row::SortOptions options;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_PHYSICAL_EXPR_H_
