#include "physical/window_exec.h"

#include <algorithm>
#include <numeric>

#include "arrow/builder.h"
#include "compute/cast.h"
#include "compute/selection.h"
#include "row/row_format.h"

namespace fusion {
namespace physical {

namespace {

using logical::WindowFrame;
using logical::WindowPartition;

/// Compute frame bounds per row within one partition, given peer groups
/// (for RANGE frames peers share bounds).
void ComputeFrames(const WindowFrame& frame, int64_t n,
                   const std::vector<int64_t>& peer_group,
                   const std::vector<int64_t>& peer_start,
                   const std::vector<int64_t>& peer_end,
                   std::vector<int64_t>* starts, std::vector<int64_t>* ends) {
  starts->resize(n);
  ends->resize(n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t start = 0;
    int64_t end = n;
    switch (frame.start) {
      case WindowFrame::BoundKind::kUnboundedPreceding:
        start = 0;
        break;
      case WindowFrame::BoundKind::kPreceding:
        start = frame.is_rows ? std::max<int64_t>(0, i - frame.start_offset) : 0;
        break;
      case WindowFrame::BoundKind::kCurrentRow:
        start = frame.is_rows ? i : peer_start[peer_group[i]];
        break;
      case WindowFrame::BoundKind::kFollowing:
        start = frame.is_rows ? std::min(n, i + frame.start_offset) : i;
        break;
      case WindowFrame::BoundKind::kUnboundedFollowing:
        start = n;
        break;
    }
    switch (frame.end) {
      case WindowFrame::BoundKind::kUnboundedPreceding:
        end = 0;
        break;
      case WindowFrame::BoundKind::kPreceding:
        end = frame.is_rows ? std::max<int64_t>(0, i - frame.end_offset + 1) : i + 1;
        break;
      case WindowFrame::BoundKind::kCurrentRow:
        end = frame.is_rows ? i + 1 : peer_end[peer_group[i]];
        break;
      case WindowFrame::BoundKind::kFollowing:
        end = frame.is_rows ? std::min(n, i + frame.end_offset + 1)
                            : peer_end[peer_group[i]];
        break;
      case WindowFrame::BoundKind::kUnboundedFollowing:
        end = n;
        break;
    }
    (*starts)[i] = std::min(start, n);
    (*ends)[i] = std::max((*starts)[i], std::min(end, n));
  }
}

}  // namespace

std::string WindowExec::ToStringLine() const {
  std::string out = "WindowExec: ";
  for (size_t i = 0; i < window_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += window_exprs_[i].output_name;
  }
  return out;
}

Result<exec::StreamPtr> WindowExec::ExecuteImpl(int partition,
                                            const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("WindowExec has a single partition");
  }
  // Materialize the input: window evaluation is a pipeline breaker.
  FUSION_ASSIGN_OR_RAISE(auto stream, input_->Execute(0, ctx));
  FUSION_ASSIGN_OR_RAISE(auto batches, exec::CollectStream(stream.get()));
  FUSION_ASSIGN_OR_RAISE(auto input, ConcatenateBatches(input_->schema(), batches));
  // Window evaluation indexes values row-at-a-time in arbitrary frame
  // order; densify once at this pipeline breaker instead of teaching
  // every frame function about codes.
  input = compute::EnsureDenseBatch(input);
  const int64_t n = input->num_rows();

  std::vector<ArrayPtr> extra_columns;

  for (const WindowExprInfo& we : window_exprs_) {
    // 1. Sort rows by (partition keys, order keys).
    std::vector<ArrayPtr> sort_cols;
    std::vector<row::SortOptions> sort_opts;
    size_t num_part_keys = we.partition_by.size();
    for (const auto& p : we.partition_by) {
      FUSION_ASSIGN_OR_RAISE(ColumnarValue v, p->Evaluate(*input));
      FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(n));
      sort_cols.push_back(std::move(arr));
      sort_opts.push_back({});
    }
    for (const auto& o : we.order_by) {
      FUSION_ASSIGN_OR_RAISE(ColumnarValue v, o.expr->Evaluate(*input));
      FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(n));
      sort_cols.push_back(std::move(arr));
      sort_opts.push_back(o.options);
    }
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    // Reuse a pre-existing input order when it already covers
    // (PARTITION BY..., ORDER BY...) — paper §6.5: "minimizes resorting
    // by reusing existing sort orders".
    bool already_ordered = false;
    {
      auto have = input_->output_ordering();
      std::vector<PhysicalSortExpr> want;
      for (const auto& p : we.partition_by) want.push_back({p, {}});
      for (const auto& o : we.order_by) want.push_back(o);
      already_ordered = !want.empty() && want.size() <= have.size();
      for (size_t i = 0; already_ordered && i < want.size(); ++i) {
        auto* col = dynamic_cast<const ColumnExpr*>(want[i].expr.get());
        if (col == nullptr || have[i].column != col->index() ||
            have[i].options.descending != want[i].options.descending ||
            have[i].options.nulls_first != want[i].options.nulls_first) {
          already_ordered = false;
        }
      }
    }
    if (!sort_cols.empty() && !already_ordered) {
      FUSION_ASSIGN_OR_RAISE(order, row::SortIndices(sort_cols, sort_opts));
    }

    // 2. Partition boundaries + peer groups in sorted order.
    std::vector<row::SortOptions> part_opts(num_part_keys);
    std::vector<ArrayPtr> part_cols(sort_cols.begin(),
                                    sort_cols.begin() + num_part_keys);
    auto same_partition = [&](int64_t a, int64_t b) {
      if (num_part_keys == 0) return true;
      return row::CompareRows(part_cols, a, part_cols, b, part_opts) == 0;
    };
    auto same_peers = [&](int64_t a, int64_t b) {
      return row::CompareRows(sort_cols, a, sort_cols, b, sort_opts) == 0;
    };

    // 3. Evaluate argument expressions once over the full input, then
    //    gather per partition in sorted order.
    FUSION_ASSIGN_OR_RAISE(auto arg_arrays, EvaluateToArrays(we.args, *input));

    std::vector<ArrayPtr> results_per_partition;
    std::vector<int64_t> partition_rows;  // original row per sorted pos
    ArrayPtr out_column;
    FUSION_ASSIGN_OR_RAISE(auto out_builder, MakeBuilder(we.output_type));
    out_builder->Reserve(n);
    // Output values indexed by original row.
    std::vector<int64_t> result_slot(static_cast<size_t>(n), -1);
    std::vector<ArrayPtr> partition_outputs;
    std::vector<std::pair<int64_t, std::pair<int, int64_t>>> scatter;
    scatter.reserve(static_cast<size_t>(n));

    int64_t start = 0;
    while (start < n) {
      int64_t end = start + 1;
      while (end < n && same_partition(order[start], order[end])) ++end;

      WindowPartition wp;
      wp.num_rows = end - start;
      std::vector<int64_t> rows(order.begin() + start, order.begin() + end);
      for (const auto& arg : arg_arrays) {
        FUSION_ASSIGN_OR_RAISE(auto gathered, compute::Take(*arg, rows));
        wp.args.push_back(std::move(gathered));
      }
      // Peer groups within the partition.
      wp.peer_group.resize(wp.num_rows);
      std::vector<int64_t> peer_start, peer_end;
      int64_t group = 0;
      for (int64_t i = 0; i < wp.num_rows; ++i) {
        if (i > 0 && !same_peers(order[start + i - 1], order[start + i])) ++group;
        if (static_cast<int64_t>(peer_start.size()) == group) {
          peer_start.push_back(i);
          peer_end.push_back(i + 1);
        } else {
          peer_end[group] = i + 1;
        }
        wp.peer_group[i] = group;
      }
      if (we.function->uses_frame) {
        ComputeFrames(we.frame, wp.num_rows, wp.peer_group, peer_start, peer_end,
                      &wp.frame_start, &wp.frame_end);
      }
      FUSION_ASSIGN_OR_RAISE(auto result, we.function->eval(wp));
      int part_index = static_cast<int>(partition_outputs.size());
      partition_outputs.push_back(std::move(result));
      for (int64_t i = 0; i < wp.num_rows; ++i) {
        scatter.emplace_back(order[start + i], std::make_pair(part_index, i));
      }
      start = end;
    }
    // Scatter results back into original row order.
    std::sort(scatter.begin(), scatter.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [row, loc] : scatter) {
      (void)row;
      out_builder->AppendFrom(*partition_outputs[loc.first], loc.second);
    }
    FUSION_ASSIGN_OR_RAISE(out_column, out_builder->Finish());
    extra_columns.push_back(std::move(out_column));
  }

  std::vector<ArrayPtr> columns = input->columns();
  for (auto& c : extra_columns) columns.push_back(std::move(c));
  auto out = std::make_shared<RecordBatch>(schema_, n, std::move(columns));
  return exec::StreamPtr(std::make_unique<exec::VectorStream>(
      schema_, SliceBatch(out, ctx->config.batch_size)));
}

}  // namespace physical
}  // namespace fusion
