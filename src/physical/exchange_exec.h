#ifndef FUSION_PHYSICAL_EXCHANGE_EXEC_H_
#define FUSION_PHYSICAL_EXCHANGE_EXEC_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "exec/scheduler.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// Bounded MPSC queue of batches used by the exchange operators.
///
/// Scheduler-aware: producers are tasks on the shared QueryScheduler,
/// so a producer facing a full queue must not block a worker thread —
/// it calls PushOrPark, which registers its Waker on the queue's
/// not_full edge and lets the task park (cooperative yield). A consumer
/// facing an empty queue lends its thread to the query's other tasks
/// (TaskGroup::HelpOrWait) instead of sleeping, which is what lets a
/// whole query run on a single worker — or on none, driven entirely by
/// the collecting thread.
///
/// All blocking waits are event-driven: a cancellation listener on the
/// query's token notifies them the moment Cancel() fires, and armed
/// deadlines bound the sleeps directly (no polling).
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity,
                      exec::CancellationTokenPtr token = nullptr,
                      exec::TaskGroupPtr group = nullptr,
                      exec::MetricValuePtr queue_wait_ns = nullptr);
  ~BatchQueue();

  /// Blocking push (backpressure); used by non-task producers (tests)
  /// and by unbounded queues, where it never waits.
  void Push(RecordBatchPtr batch);

  /// Task-producer push: either consumes `*batch` (true — pushed, or
  /// dropped because the queue closed/finished/cancelled) or leaves it
  /// in place, registers `waker` on the not_full edge and returns false
  /// — the caller must return TaskStatus::kParked and retry when woken.
  bool PushOrPark(RecordBatchPtr* batch, const exec::Waker& waker);

  /// Report a producer error; consumers see it on the next Pop.
  void PushError(Status status);
  /// Called once per producer; the last call unblocks consumers at end.
  void ProducerDone();
  void AddProducer() { producers_.fetch_add(1); }

  /// Cancel: unblocks producers (their pushes become no-ops) and
  /// consumers. Called when a consumer abandons the stream early (e.g.
  /// LIMIT satisfied) and by the task group's unwind hook.
  void Close();
  bool closed() const { return closed_.load(); }

  /// Next batch; nullptr at end; error if any producer failed. With a
  /// task group attached, an empty-queue wait helps run the group's
  /// ready tasks (typically the very producers this consumer waits on).
  Result<RecordBatchPtr> Pop();

 private:
  /// True once the query's token has fired (never true without a token).
  /// Non-latching on purpose: this runs while holding mu_, and latching
  /// fires the token's listeners synchronously — including this queue's
  /// own listener, which locks mu_ (self-deadlock on deadline expiry).
  bool Cancelled() const {
    return token_ != nullptr && token_->CancelRequested();
  }
  /// Wake every parked producer and any cv sleeper (queue edge fired).
  void WakeAllLocked(std::vector<exec::Waker>* wakers);

  size_t capacity_;
  exec::CancellationTokenPtr token_;
  exec::TaskGroupPtr group_;
  exec::MetricValuePtr queue_wait_ns_;
  exec::CancellationToken::ListenerId listener_id_ = 0;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<RecordBatchPtr> queue_;
  /// Producer tasks parked on the not_full edge.
  std::vector<exec::Waker> push_waiters_;
  Status error_;
  std::atomic<int> producers_{0};
  std::atomic<bool> closed_{false};
  bool finished_ = false;
};

/// \brief N -> 1 exchange: funnels all input partitions into a single
/// output stream. Input partitions are driven by producer tasks in the
/// query's group on the shared scheduler (the pull-based analogue of a
/// merge without ordering); a producer blocked by backpressure parks
/// instead of holding a worker.
class CoalescePartitionsExec : public ExecutionPlan {
 public:
  explicit CoalescePartitionsExec(ExecPlanPtr input) : input_(std::move(input)) {}

  std::string name() const override { return "CoalescePartitionsExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  ExecPlanPtr input_;
};

/// \brief The Volcano exchange operator (paper §5.5, RepartitionExec):
/// redistributes N input partitions across M output partitions either
/// round-robin (load balancing) or by key hash (for partitioned
/// aggregations/joins). Producers are scheduler tasks, one per input
/// partition.
class RepartitionExec : public ExecutionPlan {
 public:
  enum class Mode { kRoundRobin, kHash };

  RepartitionExec(ExecPlanPtr input, int num_partitions, Mode mode,
                  std::vector<PhysicalExprPtr> hash_keys = {})
      : input_(std::move(input)), num_partitions_(num_partitions), mode_(mode),
        hash_keys_(std::move(hash_keys)) {}
  ~RepartitionExec() override;

  std::string name() const override { return "RepartitionExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return num_partitions_; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return std::string("RepartitionExec: ") +
           (mode_ == Mode::kHash ? "hash" : "round_robin") + " -> " +
           std::to_string(num_partitions_);
  }

 private:
  Status StartProducers(const ExecContextPtr& ctx);

  ExecPlanPtr input_;
  int num_partitions_;
  Mode mode_;
  std::vector<PhysicalExprPtr> hash_keys_;

  std::mutex mu_;
  bool started_ = false;
  Status start_status_;
  std::vector<std::shared_ptr<BatchQueue>> queues_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_EXCHANGE_EXEC_H_
