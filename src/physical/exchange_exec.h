#ifndef FUSION_PHYSICAL_EXCHANGE_EXEC_H_
#define FUSION_PHYSICAL_EXCHANGE_EXEC_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// Bounded MPSC queue of batches used by the exchange operators.
/// Producers block when full (backpressure); consumers block when empty.
/// With a cancellation token attached, blocked waits poll the token so
/// both Cancel() and deadline expiry unblock stuck producers/consumers.
class BatchQueue {
 public:
  explicit BatchQueue(size_t capacity, exec::CancellationTokenPtr token = nullptr)
      : capacity_(capacity), token_(std::move(token)) {}

  void Push(RecordBatchPtr batch);
  /// Report a producer error; consumers see it on the next Pop.
  void PushError(Status status);
  /// Called once per producer; the last call unblocks consumers at end.
  void ProducerDone();
  void AddProducer() { producers_.fetch_add(1); }

  /// Cancel: unblocks producers (their pushes become no-ops) and
  /// consumers. Called when a consumer abandons the stream early (e.g.
  /// LIMIT satisfied).
  void Close();
  bool closed() const { return closed_.load(); }

  /// Next batch; nullptr at end; error if any producer failed.
  Result<RecordBatchPtr> Pop();

 private:
  /// True once the query's token has fired (never true without a token).
  bool Cancelled() const { return token_ != nullptr && token_->IsCancelled(); }
  /// Block until `ready()` holds; polls when a token is attached because
  /// nothing notifies the condvars on an external Cancel() or an expired
  /// deadline.
  template <typename Pred>
  void Wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
            Pred ready) {
    if (token_ == nullptr) {
      cv.wait(lock, ready);
    } else {
      while (!ready() && !Cancelled()) {
        cv.wait_for(lock, std::chrono::milliseconds(10));
      }
    }
  }

  size_t capacity_;
  exec::CancellationTokenPtr token_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<RecordBatchPtr> queue_;
  Status error_;
  std::atomic<int> producers_{0};
  std::atomic<bool> closed_{false};
  bool finished_ = false;
};

/// \brief N -> 1 exchange: funnels all input partitions into a single
/// output stream. Input partitions are driven by dedicated producer
/// threads so they run concurrently (the pull-based analogue of a merge
/// without ordering).
class CoalescePartitionsExec : public ExecutionPlan {
 public:
  explicit CoalescePartitionsExec(ExecPlanPtr input) : input_(std::move(input)) {}

  std::string name() const override { return "CoalescePartitionsExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  ExecPlanPtr input_;
};

/// \brief The Volcano exchange operator (paper §5.5, RepartitionExec):
/// redistributes N input partitions across M output partitions either
/// round-robin (load balancing) or by key hash (for partitioned
/// aggregations/joins).
class RepartitionExec : public ExecutionPlan {
 public:
  enum class Mode { kRoundRobin, kHash };

  RepartitionExec(ExecPlanPtr input, int num_partitions, Mode mode,
                  std::vector<PhysicalExprPtr> hash_keys = {})
      : input_(std::move(input)), num_partitions_(num_partitions), mode_(mode),
        hash_keys_(std::move(hash_keys)) {}
  ~RepartitionExec() override;

  std::string name() const override { return "RepartitionExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return num_partitions_; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return std::string("RepartitionExec: ") +
           (mode_ == Mode::kHash ? "hash" : "round_robin") + " -> " +
           std::to_string(num_partitions_);
  }

 private:
  Status StartProducers(const ExecContextPtr& ctx);

  ExecPlanPtr input_;
  int num_partitions_;
  Mode mode_;
  std::vector<PhysicalExprPtr> hash_keys_;

  std::mutex mu_;
  bool started_ = false;
  Status start_status_;
  std::vector<std::shared_ptr<BatchQueue>> queues_;
  std::vector<std::thread> producers_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_EXCHANGE_EXEC_H_
