#ifndef FUSION_PHYSICAL_EXECUTION_PLAN_H_
#define FUSION_PHYSICAL_EXECUTION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/runtime_env.h"
#include "exec/stream.h"
#include "physical/physical_expr.h"

namespace fusion {
namespace physical {

/// Per-query execution context handed to every Stream.
struct ExecContext {
  exec::RuntimeEnvPtr env;
  exec::SessionConfig config;
  /// Unique id used to name memory-pool consumers.
  int64_t query_id = 0;
};

using ExecContextPtr = std::shared_ptr<ExecContext>;

/// A known output ordering: column index + direction.
struct OrderingInfo {
  int column = -1;
  row::SortOptions options;
};

/// \brief Physical operator (paper §5.5). Each plan node is annotated
/// with a partition count chosen by the planner; Execute(i) opens the
/// Stream for partition i (Figure 4). User-defined operators implement
/// exactly this interface and are indistinguishable from built-ins
/// (paper §7.7).
class ExecutionPlan {
 public:
  virtual ~ExecutionPlan() = default;

  virtual std::string name() const = 0;
  virtual SchemaPtr schema() const = 0;
  virtual int output_partitions() const = 0;
  virtual std::vector<std::shared_ptr<ExecutionPlan>> children() const {
    return {};
  }

  /// Open partition `partition`'s stream. May be called once per
  /// partition per plan instance.
  virtual Result<exec::StreamPtr> Execute(int partition,
                                          const ExecContextPtr& ctx) = 0;

  /// Sort order each output partition is known to satisfy (paper §6.7);
  /// empty = unknown.
  virtual std::vector<OrderingInfo> output_ordering() const { return {}; }

  /// One-line description for EXPLAIN.
  virtual std::string ToStringLine() const { return name(); }

  /// Indented tree rendering.
  std::string ToString() const;
};

using ExecPlanPtr = std::shared_ptr<ExecutionPlan>;

/// Run all partitions of `plan` in parallel on the context's thread
/// pool and collect the results (the "collect" entry point used by the
/// session, tests, and benchmarks).
Result<std::vector<RecordBatchPtr>> ExecuteCollect(const ExecPlanPtr& plan,
                                                   const ExecContextPtr& ctx);

/// Run all partitions for their side effects, discarding batches but
/// counting rows.
Result<int64_t> ExecuteCountRows(const ExecPlanPtr& plan, const ExecContextPtr& ctx);

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_EXECUTION_PLAN_H_
