#ifndef FUSION_PHYSICAL_EXECUTION_PLAN_H_
#define FUSION_PHYSICAL_EXECUTION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/cancellation.h"
#include "exec/metrics.h"
#include "exec/runtime_env.h"
#include "exec/runtime_filter.h"
#include "exec/stream.h"
#include "physical/physical_expr.h"

namespace fusion {
namespace physical {

/// Per-query execution context handed to every Stream.
struct ExecContext {
  exec::RuntimeEnvPtr env;
  exec::SessionConfig config;
  /// Unique id used to name memory-pool consumers.
  int64_t query_id = 0;
  /// Cancellation/deadline signal shared by every stream and producer
  /// task of this query (nullptr = not cancellable). Checked in the
  /// Execute() stream wrapper and the exchange queues' blocking waits.
  exec::CancellationTokenPtr cancel;
  /// The query's task group on the shared scheduler: every partition
  /// driver and exchange producer of this query spawns here, so
  /// TaskGroup::Finish() unwinds all of them through one mechanism.
  /// Created by SessionContext::MakeExecContext; EnsureTaskGroup covers
  /// contexts built by hand (tests).
  exec::TaskGroupPtr task_group;
  /// Per-query runtime-filter registry (sideways information passing):
  /// the physical planner creates filters here when it marks a selective
  /// hash join; build sides publish, probe-side scans consult. Created
  /// by SessionContext::MakeExecContext; EnsureRuntimeFilters covers
  /// contexts built by hand (tests).
  exec::RuntimeFilterRegistryPtr runtime_filters;

  /// OK, or Status::Cancelled once the query's token has fired.
  Status CheckCancelled() const {
    return cancel != nullptr ? cancel->CheckStatus() : Status::OK();
  }

  /// The query's task group, creating one on the env's scheduler on
  /// first use. Thread-safe: exchange operators may race here when a
  /// bare context is used directly in tests.
  const exec::TaskGroupPtr& EnsureTaskGroup();

  /// The query's runtime-filter registry, creating one on first use.
  /// Thread-safe for the same reason as EnsureTaskGroup.
  const exec::RuntimeFilterRegistryPtr& EnsureRuntimeFilters();
};

using ExecContextPtr = std::shared_ptr<ExecContext>;

/// A known output ordering: column index + direction.
struct OrderingInfo {
  int column = -1;
  row::SortOptions options;
};

/// \brief Physical operator (paper §5.5). Each plan node is annotated
/// with a partition count chosen by the planner; Execute(i) opens the
/// Stream for partition i (Figure 4). User-defined operators implement
/// exactly this interface and are indistinguishable from built-ins
/// (paper §7.7).
class ExecutionPlan {
 public:
  virtual ~ExecutionPlan() = default;

  virtual std::string name() const = 0;
  virtual SchemaPtr schema() const = 0;
  virtual int output_partitions() const = 0;
  virtual std::vector<std::shared_ptr<ExecutionPlan>> children() const {
    return {};
  }

  /// Open partition `partition`'s stream. May be called once per
  /// partition per plan instance. Non-virtual: wraps ExecuteImpl's
  /// stream so every operator — built-in or user-defined — records
  /// output_rows / output_batches / elapsed_ns without opting in.
  Result<exec::StreamPtr> Execute(int partition, const ExecContextPtr& ctx);

  /// The operator's actual stream-opening logic (paper Figure 4).
  /// User-defined operators implement exactly this and are
  /// indistinguishable from built-ins (paper §7.7).
  virtual Result<exec::StreamPtr> ExecuteImpl(int partition,
                                              const ExecContextPtr& ctx) = 0;

  /// Runtime metrics recorded by this node (per partition; aggregate
  /// with MetricsSet::AggregatedValue or CollectMetrics below).
  const exec::MetricsSetPtr& metrics() const { return metrics_; }

  /// Sort order each output partition is known to satisfy (paper §6.7);
  /// empty = unknown.
  virtual std::vector<OrderingInfo> output_ordering() const { return {}; }

  /// One-line description for EXPLAIN.
  virtual std::string ToStringLine() const { return name(); }

  /// Indented tree rendering.
  std::string ToString() const;

 protected:
  /// Operators with operator-specific metrics (spills, memory) record
  /// into this set directly; the standard stream metrics are recorded by
  /// the Execute wrapper.
  exec::MetricsSetPtr metrics_ = exec::MetricsSet::Make();
};

using ExecPlanPtr = std::shared_ptr<ExecutionPlan>;

/// Run all partitions of `plan` in parallel on the context's thread
/// pool and collect the results (the "collect" entry point used by the
/// session, tests, and benchmarks).
Result<std::vector<RecordBatchPtr>> ExecuteCollect(const ExecPlanPtr& plan,
                                                   const ExecContextPtr& ctx);

/// Run all partitions for their side effects, discarding batches but
/// counting rows.
Result<int64_t> ExecuteCountRows(const ExecPlanPtr& plan, const ExecContextPtr& ctx);

/// \brief Aggregated metrics for one plan node, mirroring the plan tree
/// (the structured form behind EXPLAIN ANALYZE and the bench JSON dump).
struct PlanMetricsNode {
  std::string name;         ///< operator name(), e.g. "HashAggregateExec"
  std::string description;  ///< ToStringLine()
  int64_t output_rows = 0;
  int64_t output_batches = 0;
  /// Wall time inside this subtree's streams (includes children).
  int64_t elapsed_ns = 0;
  /// elapsed_ns minus the children's elapsed_ns, clamped at 0: the time
  /// attributable to this operator alone.
  int64_t elapsed_compute_ns = 0;
  int64_t spill_count = 0;
  int64_t spill_bytes = 0;
  int64_t mem_reserved_bytes = 0;
  /// Rows emitted with at least one dictionary-encoded column still in
  /// code form; output_rows - dict_rows is the densified remainder.
  int64_t dict_rows = 0;
  /// Time this operator's consumers spent blocked on an exchange queue
  /// with nothing to pop (scheduler pressure; exchange operators only).
  int64_t queue_wait_ns = 0;
  /// Tasks this operator submitted to the query scheduler.
  int64_t tasks_spawned = 0;
  /// Pre-aggregation groups produced across build tasks (partitioned
  /// aggregates only; summed before the radix merge dedups them).
  int64_t partial_groups = 0;
  /// Rows forwarded as per-row partial state by the adaptive bypass.
  int64_t bypass_rows = 0;
  /// Scan morsels claimed outside the consumer's round-robin share.
  int64_t morsels_stolen = 0;
  /// Runtime-filter (sideways information passing) counters: time the
  /// join spent building/merging Bloom filters, and rows the scan
  /// tested/dropped against ready filters.
  int64_t rf_build_ns = 0;
  int64_t rf_checked_rows = 0;
  int64_t rf_pruned_rows = 0;
  std::vector<PlanMetricsNode> children;
};

/// Snapshot the metrics of `plan` and its children as a structured tree.
PlanMetricsNode CollectMetrics(const ExecutionPlan& plan);

/// Indented plan rendering with per-operator metrics annotations — the
/// body of EXPLAIN ANALYZE. Call after the plan has executed.
std::string RenderAnnotatedPlan(const ExecutionPlan& plan);

/// Compact single-line JSON for a metrics tree (bench_harness --json).
std::string PlanMetricsToJson(const PlanMetricsNode& node);

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_EXECUTION_PLAN_H_
