#include "physical/hash_join_exec.h"

#include "arrow/builder.h"
#include "compute/group_table.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "exec/memory_pool.h"

namespace fusion {
namespace physical {

using logical::JoinKind;

/// Collected build side shared by all probe partitions.
struct HashJoinExec::BuildState {
  RecordBatchPtr batch;               // concatenated build input
  std::vector<ArrayPtr> key_arrays;   // evaluated build keys
  // hash -> first row index; chain via next[] (-1 terminates)
  compute::HashChainTable table;
  std::vector<int64_t> next;

  std::mutex matched_mu;
  std::vector<uint8_t> matched;  // per build row, for outer/semi/anti

  std::atomic<int> remaining_probe_partitions{0};

  /// Memory-pool reservation for the build table; released when the
  /// last stream drops the state.
  std::unique_ptr<exec::MemoryReservation> reservation;
};

namespace {

bool NeedsBuildMatchTracking(JoinKind kind) {
  switch (kind) {
    case JoinKind::kLeft:
    case JoinKind::kFull:
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti:
      return true;
    default:
      return false;
  }
}

bool KeysMatch(const std::vector<ArrayPtr>& build_keys, int64_t build_row,
               const std::vector<ArrayPtr>& probe_keys, int64_t probe_row) {
  for (size_t k = 0; k < build_keys.size(); ++k) {
    // SQL equi-join: null never matches null.
    if (build_keys[k]->IsNull(build_row) || probe_keys[k]->IsNull(probe_row)) {
      return false;
    }
    if (!ArrayElementsEqual(*build_keys[k], build_row, *probe_keys[k], probe_row)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string HashJoinExec::ToStringLine() const {
  std::string out = std::string("HashJoinExec: ") + logical::JoinKindName(kind_);
  out += " on=[";
  for (size_t i = 0; i < on_.size(); ++i) {
    if (i > 0) out += ", ";
    out += on_[i].first->ToString() + " = " + on_[i].second->ToString();
  }
  out += "]";
  if (filter_ != nullptr) out += " filter=" + filter_->ToString();
  return out;
}

Status HashJoinExec::EnsureBuilt(const ExecContextPtr& ctx) {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (built_) return build_status_;
  built_ = true;
  auto run = [&]() -> Status {
    auto state = std::make_shared<BuildState>();
    std::vector<RecordBatchPtr> batches;
    for (int p = 0; p < build_->output_partitions(); ++p) {
      FUSION_ASSIGN_OR_RAISE(auto stream, build_->Execute(p, ctx));
      FUSION_ASSIGN_OR_RAISE(auto part, exec::CollectStream(stream.get()));
      for (auto& b : part) batches.push_back(std::move(b));
    }
    FUSION_ASSIGN_OR_RAISE(state->batch,
                           ConcatenateBatches(build_->schema(), batches));
    if (ctx->config.max_build_rows > 0 &&
        state->batch->num_rows() > ctx->config.max_build_rows) {
      return Status::ExecutionError("hash join build side exceeds max_build_rows");
    }
    // Memory accounting for the dominant consumer (the build table);
    // released when the state is destroyed.
    state->reservation = std::make_unique<exec::MemoryReservation>(
        ctx->env->memory_pool, "hashjoin-" + std::to_string(ctx->query_id));
    FUSION_RETURN_NOT_OK(
        state->reservation->ResizeTo(state->batch->TotalBufferSize()));
    metrics_->Gauge(exec::metric::kMemReservedBytes)
        ->SetMax(state->reservation->held());
    std::vector<PhysicalExprPtr> key_exprs;
    for (const auto& [l, r] : on_) key_exprs.push_back(l);
    FUSION_ASSIGN_OR_RAISE(state->key_arrays,
                           EvaluateToArrays(key_exprs, *state->batch));
    const int64_t rows = state->batch->num_rows();
    state->next.assign(static_cast<size_t>(rows), -1);
    std::vector<uint64_t> hashes;
    if (rows > 0) {
      FUSION_RETURN_NOT_OK(compute::HashColumns(state->key_arrays, &hashes));
    }
    state->table.Reserve(rows);
    for (int64_t r = 0; r < rows; ++r) {
      bool has_null_key = false;
      for (const auto& k : state->key_arrays) {
        if (k->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      if (has_null_key) continue;  // null keys never match
      state->next[r] = state->table.Insert(hashes[r], r);
    }
    if (NeedsBuildMatchTracking(kind_)) {
      state->matched.assign(static_cast<size_t>(rows), 0);
    }
    state->remaining_probe_partitions.store(probe_->output_partitions());
    build_state_ = std::move(state);
    return Status::OK();
  };
  build_status_ = run();
  return build_status_;
}

Result<exec::StreamPtr> HashJoinExec::ExecuteImpl(int partition,
                                              const ExecContextPtr& ctx) {
  FUSION_RETURN_NOT_OK(EnsureBuilt(ctx));
  FUSION_ASSIGN_OR_RAISE(auto probe_stream, probe_->Execute(partition, ctx));

  auto state = build_state_;
  auto probe = std::shared_ptr<exec::RecordBatchStream>(std::move(probe_stream));
  SchemaPtr schema = schema_;
  SchemaPtr build_schema = build_->schema();
  SchemaPtr probe_schema = probe_->schema();
  auto kind = kind_;
  auto filter = filter_;
  std::vector<PhysicalExprPtr> probe_key_exprs;
  for (const auto& [l, r] : on_) probe_key_exprs.push_back(r);

  const int build_cols = build_schema->num_fields();
  const int probe_cols = probe_schema->num_fields();

  // Assemble an output batch from (build_idx, probe_idx) pairs; -1 on
  // either side emits nulls (outer joins).
  auto assemble = [schema, state, build_cols, probe_cols](
                      const RecordBatchPtr& probe_batch,
                      const std::vector<int64_t>& build_idx,
                      const std::vector<int64_t>& probe_idx)
      -> Result<RecordBatchPtr> {
    std::vector<ArrayPtr> columns;
    columns.reserve(static_cast<size_t>(build_cols + probe_cols));
    for (int c = 0; c < build_cols; ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col,
                             compute::Take(*state->batch->column(c), build_idx));
      columns.push_back(std::move(col));
    }
    for (int c = 0; c < probe_cols; ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col,
                             compute::Take(*probe_batch->column(c), probe_idx));
      columns.push_back(std::move(col));
    }
    return std::make_shared<RecordBatch>(
        schema, static_cast<int64_t>(build_idx.size()), std::move(columns));
  };

  auto done = std::make_shared<bool>(false);
  auto emitted_unmatched = std::make_shared<bool>(false);

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [=]() mutable -> Result<RecordBatchPtr> {
        for (;;) {
          if (*done) {
            // End-of-probe: the last finishing partition emits build-side
            // unmatched rows for left/full/semi/anti kinds.
            if (*emitted_unmatched) return RecordBatchPtr(nullptr);
            *emitted_unmatched = true;
            if (!NeedsBuildMatchTracking(kind)) return RecordBatchPtr(nullptr);
            if (state->remaining_probe_partitions.fetch_sub(1) != 1) {
              return RecordBatchPtr(nullptr);  // another partition will emit
            }
            std::vector<int64_t> build_idx;
            {
              std::lock_guard<std::mutex> lock(state->matched_mu);
              for (int64_t r = 0;
                   r < static_cast<int64_t>(state->matched.size()); ++r) {
                const bool want_matched = kind == JoinKind::kLeftSemi;
                const bool is_matched = state->matched[r] != 0;
                if (kind == JoinKind::kLeft || kind == JoinKind::kFull) {
                  if (!is_matched) build_idx.push_back(r);
                } else if (is_matched == want_matched &&
                           (kind == JoinKind::kLeftSemi ||
                            kind == JoinKind::kLeftAnti)) {
                  build_idx.push_back(r);
                }
              }
            }
            if (build_idx.empty()) return RecordBatchPtr(nullptr);
            if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
              // Output schema is the build side only.
              std::vector<ArrayPtr> columns;
              for (int c = 0; c < build_cols; ++c) {
                FUSION_ASSIGN_OR_RAISE(
                    auto col, compute::Take(*state->batch->column(c), build_idx));
                columns.push_back(std::move(col));
              }
              return std::make_shared<RecordBatch>(
                  schema, static_cast<int64_t>(build_idx.size()),
                  std::move(columns));
            }
            std::vector<int64_t> probe_idx(build_idx.size(), -1);
            RecordBatchPtr empty_probe = RecordBatch::MakeEmpty(probe_schema, 0);
            // Take() with -1 indices never touches the (empty) probe
            // columns, but needs columns present:
            std::vector<ArrayPtr> null_cols;
            for (const auto& f : probe_schema->fields()) {
              FUSION_ASSIGN_OR_RAISE(auto arr, MakeArrayOfNulls(f.type(), 0));
              null_cols.push_back(std::move(arr));
            }
            empty_probe = std::make_shared<RecordBatch>(probe_schema, 0,
                                                        std::move(null_cols));
            return assemble(empty_probe, build_idx, probe_idx);
          }

          FUSION_ASSIGN_OR_RAISE(auto probe_batch, probe->Next());
          if (probe_batch == nullptr) {
            *done = true;
            continue;
          }
          if (probe_batch->num_rows() == 0) continue;

          // Vectorized probe: hash all keys, then walk chains per row.
          FUSION_ASSIGN_OR_RAISE(auto probe_keys,
                                 EvaluateToArrays(probe_key_exprs, *probe_batch));
          std::vector<uint64_t> hashes;
          FUSION_RETURN_NOT_OK(compute::HashColumns(probe_keys, &hashes));

          std::vector<int64_t> build_idx;
          std::vector<int64_t> probe_idx;
          const int64_t n = probe_batch->num_rows();
          for (int64_t r = 0; r < n; ++r) {
            for (int64_t b = state->table.Find(hashes[r]); b >= 0;
                 b = state->next[b]) {
              if (KeysMatch(state->key_arrays, b, probe_keys, r)) {
                build_idx.push_back(b);
                probe_idx.push_back(r);
              }
            }
          }

          // Residual filter over candidate pairs.
          if (filter != nullptr && !build_idx.empty()) {
            FUSION_ASSIGN_OR_RAISE(auto candidates,
                                   assemble(probe_batch, build_idx, probe_idx));
            FUSION_ASSIGN_OR_RAISE(auto mask,
                                   EvaluatePredicateMask(*filter, *candidates));
            const auto& bm = checked_cast<BooleanArray>(*mask);
            std::vector<int64_t> kept_b, kept_p;
            for (int64_t i = 0; i < bm.length(); ++i) {
              if (bm.IsValid(i) && bm.Value(i)) {
                kept_b.push_back(build_idx[i]);
                kept_p.push_back(probe_idx[i]);
              }
            }
            build_idx = std::move(kept_b);
            probe_idx = std::move(kept_p);
          }

          // Mark build matches for end-emission kinds.
          if (NeedsBuildMatchTracking(kind) && !build_idx.empty()) {
            std::lock_guard<std::mutex> lock(state->matched_mu);
            for (int64_t b : build_idx) state->matched[b] = 1;
          }

          switch (kind) {
            case JoinKind::kInner:
            case JoinKind::kCross:
            case JoinKind::kLeft: {
              if (build_idx.empty()) continue;
              return assemble(probe_batch, build_idx, probe_idx);
            }
            case JoinKind::kRight:
            case JoinKind::kFull: {
              // Emit matches plus null-extended unmatched probe rows.
              std::vector<uint8_t> probe_matched(static_cast<size_t>(n), 0);
              for (int64_t p : probe_idx) probe_matched[p] = 1;
              for (int64_t r = 0; r < n; ++r) {
                if (!probe_matched[r]) {
                  build_idx.push_back(-1);
                  probe_idx.push_back(r);
                }
              }
              if (build_idx.empty()) continue;
              return assemble(probe_batch, build_idx, probe_idx);
            }
            case JoinKind::kLeftSemi:
            case JoinKind::kLeftAnti:
              continue;  // output produced at end from matched bits
            case JoinKind::kRightSemi:
            case JoinKind::kRightAnti: {
              std::vector<uint8_t> probe_matched(static_cast<size_t>(n), 0);
              for (int64_t p : probe_idx) probe_matched[p] = 1;
              std::vector<int64_t> keep;
              const bool want = kind == JoinKind::kRightSemi;
              for (int64_t r = 0; r < n; ++r) {
                if ((probe_matched[r] != 0) == want) keep.push_back(r);
              }
              if (keep.empty()) continue;
              FUSION_ASSIGN_OR_RAISE(auto out,
                                     compute::TakeBatch(*probe_batch, keep));
              return std::make_shared<RecordBatch>(schema, out->num_rows(),
                                                   out->columns());
            }
          }
        }
      }));
}

}  // namespace physical
}  // namespace fusion
