#include "physical/hash_join_exec.h"

#include <cstdio>

#include "arrow/builder.h"
#include "compute/aggregate_kernels.h"
#include "compute/group_table.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "exec/memory_pool.h"
#include "exec/runtime_filter.h"
#include "format/bloom.h"

namespace fusion {
namespace physical {

using logical::JoinKind;

/// Collected build side shared by all probe partitions.
struct HashJoinExec::BuildState {
  RecordBatchPtr batch;               // concatenated build input
  std::vector<ArrayPtr> key_arrays;   // evaluated build keys
  // hash -> first row index; chain via next[] (-1 terminates)
  compute::HashChainTable table;
  std::vector<int64_t> next;

  std::mutex matched_mu;
  std::vector<uint8_t> matched;  // per build row, for outer/semi/anti

  std::atomic<int> remaining_probe_partitions{0};

  /// Memory-pool reservation for the build table; released when the
  /// last stream drops the state.
  std::unique_ptr<exec::MemoryReservation> reservation;

  // Cooperative build (PR-6 scheduler path): drivers arriving at
  // EnsureBuilt claim build input partitions via next_input and help
  // until all are collected; the first past the final barrier runs the
  // single-threaded finalize (concatenate + table + filter publish).
  int num_inputs = 0;
  std::atomic<int> next_input{0};
  std::atomic<int> inputs_done{0};
  std::atomic<bool> build_failed{false};
  std::mutex error_mu;
  Status build_error;
  /// Collected batches per build input partition; flattened in
  /// partition order by finalize, so the concatenated build batch is
  /// byte-identical to the old sequential collection.
  std::vector<std::vector<RecordBatchPtr>> partial_batches;
  /// Per input partition, one partial Bloom filter per runtime filter
  /// (all sized from the planner estimate so finalize can OR-merge).
  std::vector<std::vector<format::BloomFilter>> partial_blooms;
};

namespace {

bool NeedsBuildMatchTracking(JoinKind kind) {
  switch (kind) {
    case JoinKind::kLeft:
    case JoinKind::kFull:
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti:
      return true;
    default:
      return false;
  }
}

bool KeysMatch(const std::vector<ArrayPtr>& build_keys, int64_t build_row,
               const std::vector<ArrayPtr>& probe_keys, int64_t probe_row) {
  for (size_t k = 0; k < build_keys.size(); ++k) {
    // SQL equi-join: null never matches null.
    if (build_keys[k]->IsNull(build_row) || probe_keys[k]->IsNull(probe_row)) {
      return false;
    }
    if (!ArrayElementsEqual(*build_keys[k], build_row, *probe_keys[k], probe_row)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string HashJoinExec::ToStringLine() const {
  std::string out = std::string("HashJoinExec: ") + logical::JoinKindName(kind_);
  out += " on=[";
  for (size_t i = 0; i < on_.size(); ++i) {
    if (i > 0) out += ", ";
    out += on_[i].first->ToString() + " = " + on_[i].second->ToString();
  }
  out += "]";
  if (filter_ != nullptr) out += " filter=" + filter_->ToString();
  if (est_output_rows_ >= 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  " est_rows=%.0f (build=%.0f, probe=%.0f)", est_output_rows_,
                  est_build_rows_, est_probe_rows_);
    out += buf;
  }
  if (!runtime_filters_.empty()) {
    out += " runtime_filter=[";
    for (size_t i = 0; i < runtime_filters_.size(); ++i) {
      if (i > 0) out += ", ";
      out += on_[runtime_filters_[i].first].first->ToString() + " -> " +
             runtime_filters_[i].second->column();
    }
    out += "]";
  }
  return out;
}

Status HashJoinExec::EnsureBuilt(const ExecContextPtr& ctx) {
  std::shared_ptr<BuildState> state;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    if (built_) return build_status_;
    if (build_state_ == nullptr) {
      auto s = std::make_shared<BuildState>();
      s->num_inputs = build_->output_partitions();
      s->partial_batches.resize(static_cast<size_t>(s->num_inputs));
      s->partial_blooms.resize(static_cast<size_t>(s->num_inputs));
      build_state_ = std::move(s);
    }
    state = build_state_;
  }
  // The mutex guards only the one-time init above and the final
  // publication below — never input execution — so a driver re-entering
  // here on a lent scheduler thread cannot self-deadlock.

  const int64_t bloom_keys = std::max<int64_t>(rf_expected_rows_, 1024);
  // Collect one build input partition; with runtime filters attached,
  // also fold its keys into per-partition Bloom filters (merged by the
  // finalize step, so filter construction parallelizes with collection).
  auto build_one = [&](int p) -> Status {
    FUSION_ASSIGN_OR_RAISE(auto stream, build_->Execute(p, ctx));
    FUSION_ASSIGN_OR_RAISE(auto part, exec::CollectStream(stream.get()));
    if (!runtime_filters_.empty()) {
      exec::ScopedTimer rf_timer(metrics_->Time(exec::metric::kRfBuildNs, p));
      std::vector<format::BloomFilter> blooms;
      blooms.reserve(runtime_filters_.size());
      std::vector<PhysicalExprPtr> rf_exprs;
      for (const auto& [key_index, rf] : runtime_filters_) {
        blooms.emplace_back(bloom_keys);
        rf_exprs.push_back(on_[key_index].first);
      }
      for (const auto& b : part) {
        FUSION_ASSIGN_OR_RAISE(auto keys, EvaluateToArrays(rf_exprs, *b));
        for (size_t f = 0; f < keys.size(); ++f) {
          std::vector<uint64_t> hashes;
          FUSION_RETURN_NOT_OK(compute::HashArray(*keys[f], /*seed=*/0, &hashes));
          for (int64_t r = 0; r < keys[f]->length(); ++r) {
            if (keys[f]->IsValid(r)) blooms[f].Insert(hashes[r]);
          }
        }
      }
      state->partial_blooms[p] = std::move(blooms);
    }
    state->partial_batches[p] = std::move(part);
    return Status::OK();
  };

  const exec::TaskGroupPtr& group = ctx->EnsureTaskGroup();
  for (;;) {
    const int p = state->next_input.fetch_add(1, std::memory_order_relaxed);
    if (p >= state->num_inputs) break;
    if (!state->build_failed.load(std::memory_order_acquire)) {
      Status st = build_one(p);
      if (!st.ok()) {
        std::lock_guard<std::mutex> elock(state->error_mu);
        if (state->build_error.ok()) state->build_error = st;
        state->build_failed.store(true, std::memory_order_release);
      }
    }
    state->inputs_done.fetch_add(1, std::memory_order_acq_rel);
    group->NotifyProgress();
  }
  while (state->inputs_done.load(std::memory_order_acquire) < state->num_inputs) {
    FUSION_RETURN_NOT_OK(ctx->CheckCancelled());
    const uint64_t epoch = group->progress_epoch();
    if (state->inputs_done.load(std::memory_order_acquire) >= state->num_inputs) {
      break;
    }
    group->HelpOrWait(epoch, ctx->cancel.get());
  }

  // Single-threaded tail: the first driver past the barrier builds the
  // shared table and publishes the runtime filters; the rest reuse it.
  auto finalize = [&]() -> Status {
    {
      std::lock_guard<std::mutex> elock(state->error_mu);
      FUSION_RETURN_NOT_OK(state->build_error);
    }
    std::vector<RecordBatchPtr> batches;
    for (auto& part : state->partial_batches) {
      for (auto& b : part) batches.push_back(std::move(b));
    }
    state->partial_batches.clear();
    FUSION_ASSIGN_OR_RAISE(state->batch,
                           ConcatenateBatches(build_->schema(), batches));
    if (ctx->config.max_build_rows > 0 &&
        state->batch->num_rows() > ctx->config.max_build_rows) {
      return Status::ExecutionError("hash join build side exceeds max_build_rows");
    }
    // Memory accounting for the dominant consumer (the build table plus
    // any Bloom filters); released when the state is destroyed.
    int64_t bloom_bytes = 0;
    for (const auto& part : state->partial_blooms) {
      for (const auto& b : part) bloom_bytes += b.size_bytes();
    }
    state->reservation = std::make_unique<exec::MemoryReservation>(
        ctx->env->memory_pool, "hashjoin-" + std::to_string(ctx->query_id));
    FUSION_RETURN_NOT_OK(state->reservation->ResizeTo(
        state->batch->TotalBufferSize() + bloom_bytes));
    metrics_->Gauge(exec::metric::kMemReservedBytes)
        ->SetMax(state->reservation->held());
    std::vector<PhysicalExprPtr> key_exprs;
    for (const auto& [l, r] : on_) key_exprs.push_back(l);
    FUSION_ASSIGN_OR_RAISE(state->key_arrays,
                           EvaluateToArrays(key_exprs, *state->batch));
    const int64_t rows = state->batch->num_rows();
    state->next.assign(static_cast<size_t>(rows), -1);
    std::vector<uint64_t> hashes;
    if (rows > 0) {
      FUSION_RETURN_NOT_OK(compute::HashColumns(state->key_arrays, &hashes));
    }
    state->table.Reserve(rows);
    for (int64_t r = 0; r < rows; ++r) {
      bool has_null_key = false;
      for (const auto& k : state->key_arrays) {
        if (k->IsNull(r)) {
          has_null_key = true;
          break;
        }
      }
      if (has_null_key) continue;  // null keys never match
      state->next[r] = state->table.Insert(hashes[r], r);
    }
    if (NeedsBuildMatchTracking(kind_)) {
      state->matched.assign(static_cast<size_t>(rows), 0);
    }
    state->remaining_probe_partitions.store(probe_->output_partitions());

    // Merge and publish the runtime filters. A build far beyond the
    // planner's estimate degrades the filters' false-positive rate to
    // uselessness — bypass instead of shipping noise.
    if (!runtime_filters_.empty()) {
      exec::ScopedTimer rf_timer(metrics_->Time(exec::metric::kRfBuildNs));
      const bool degraded = rows > 8 * bloom_keys;
      for (size_t f = 0; f < runtime_filters_.size(); ++f) {
        const auto& rf = runtime_filters_[f].second;
        if (degraded) {
          rf->Bypass();
          continue;
        }
        format::BloomFilter merged(bloom_keys);
        bool merge_ok = true;
        for (int p = 0; p < state->num_inputs && merge_ok; ++p) {
          if (state->partial_blooms[p].empty()) continue;
          merge_ok = merged.MergeFrom(state->partial_blooms[p][f]);
        }
        if (!merge_ok) {
          rf->Bypass();
          continue;
        }
        const auto& key = state->key_arrays[runtime_filters_[f].first];
        Scalar min_key = Scalar::Null(key->type());
        Scalar max_key = Scalar::Null(key->type());
        if (rows > 0) {
          auto mn = compute::MinArray(*key);
          auto mx = compute::MaxArray(*key);
          if (mn.ok() && mx.ok()) {
            min_key = *mn;
            max_key = *mx;
          }
        }
        rf->Publish(std::move(merged), std::move(min_key), std::move(max_key),
                    rows);
      }
      state->partial_blooms.clear();
    }
    return Status::OK();
  };

  std::lock_guard<std::mutex> lock(build_mu_);
  if (!built_) {
    built_ = true;
    build_status_ = finalize();
    if (!build_status_.ok()) {
      // Failed builds must not leave probe scans consulting a filter
      // that will never arrive.
      for (const auto& [key_index, rf] : runtime_filters_) rf->Bypass();
    }
  }
  return build_status_;
}

Result<exec::StreamPtr> HashJoinExec::ExecuteImpl(int partition,
                                              const ExecContextPtr& ctx) {
  FUSION_RETURN_NOT_OK(EnsureBuilt(ctx));
  FUSION_ASSIGN_OR_RAISE(auto probe_stream, probe_->Execute(partition, ctx));

  auto state = build_state_;
  auto probe = std::shared_ptr<exec::RecordBatchStream>(std::move(probe_stream));
  SchemaPtr schema = schema_;
  SchemaPtr build_schema = build_->schema();
  SchemaPtr probe_schema = probe_->schema();
  auto kind = kind_;
  auto filter = filter_;
  std::vector<PhysicalExprPtr> probe_key_exprs;
  for (const auto& [l, r] : on_) probe_key_exprs.push_back(r);

  const int build_cols = build_schema->num_fields();
  const int probe_cols = probe_schema->num_fields();

  // Assemble an output batch from (build_idx, probe_idx) pairs; -1 on
  // either side emits nulls (outer joins).
  auto assemble = [schema, state, build_cols, probe_cols](
                      const RecordBatchPtr& probe_batch,
                      const std::vector<int64_t>& build_idx,
                      const std::vector<int64_t>& probe_idx)
      -> Result<RecordBatchPtr> {
    std::vector<ArrayPtr> columns;
    columns.reserve(static_cast<size_t>(build_cols + probe_cols));
    for (int c = 0; c < build_cols; ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col,
                             compute::Take(*state->batch->column(c), build_idx));
      columns.push_back(std::move(col));
    }
    for (int c = 0; c < probe_cols; ++c) {
      FUSION_ASSIGN_OR_RAISE(auto col,
                             compute::Take(*probe_batch->column(c), probe_idx));
      columns.push_back(std::move(col));
    }
    return std::make_shared<RecordBatch>(
        schema, static_cast<int64_t>(build_idx.size()), std::move(columns));
  };

  auto done = std::make_shared<bool>(false);
  auto emitted_unmatched = std::make_shared<bool>(false);

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [=]() mutable -> Result<RecordBatchPtr> {
        for (;;) {
          if (*done) {
            // End-of-probe: the last finishing partition emits build-side
            // unmatched rows for left/full/semi/anti kinds.
            if (*emitted_unmatched) return RecordBatchPtr(nullptr);
            *emitted_unmatched = true;
            if (!NeedsBuildMatchTracking(kind)) return RecordBatchPtr(nullptr);
            if (state->remaining_probe_partitions.fetch_sub(1) != 1) {
              return RecordBatchPtr(nullptr);  // another partition will emit
            }
            std::vector<int64_t> build_idx;
            {
              std::lock_guard<std::mutex> lock(state->matched_mu);
              for (int64_t r = 0;
                   r < static_cast<int64_t>(state->matched.size()); ++r) {
                const bool want_matched = kind == JoinKind::kLeftSemi;
                const bool is_matched = state->matched[r] != 0;
                if (kind == JoinKind::kLeft || kind == JoinKind::kFull) {
                  if (!is_matched) build_idx.push_back(r);
                } else if (is_matched == want_matched &&
                           (kind == JoinKind::kLeftSemi ||
                            kind == JoinKind::kLeftAnti)) {
                  build_idx.push_back(r);
                }
              }
            }
            if (build_idx.empty()) return RecordBatchPtr(nullptr);
            if (kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti) {
              // Output schema is the build side only.
              std::vector<ArrayPtr> columns;
              for (int c = 0; c < build_cols; ++c) {
                FUSION_ASSIGN_OR_RAISE(
                    auto col, compute::Take(*state->batch->column(c), build_idx));
                columns.push_back(std::move(col));
              }
              return std::make_shared<RecordBatch>(
                  schema, static_cast<int64_t>(build_idx.size()),
                  std::move(columns));
            }
            std::vector<int64_t> probe_idx(build_idx.size(), -1);
            RecordBatchPtr empty_probe = RecordBatch::MakeEmpty(probe_schema, 0);
            // Take() with -1 indices never touches the (empty) probe
            // columns, but needs columns present:
            std::vector<ArrayPtr> null_cols;
            for (const auto& f : probe_schema->fields()) {
              FUSION_ASSIGN_OR_RAISE(auto arr, MakeArrayOfNulls(f.type(), 0));
              null_cols.push_back(std::move(arr));
            }
            empty_probe = std::make_shared<RecordBatch>(probe_schema, 0,
                                                        std::move(null_cols));
            return assemble(empty_probe, build_idx, probe_idx);
          }

          FUSION_ASSIGN_OR_RAISE(auto probe_batch, probe->Next());
          if (probe_batch == nullptr) {
            *done = true;
            continue;
          }
          if (probe_batch->num_rows() == 0) continue;

          // Vectorized probe: hash all keys, then walk chains per row.
          FUSION_ASSIGN_OR_RAISE(auto probe_keys,
                                 EvaluateToArrays(probe_key_exprs, *probe_batch));
          std::vector<uint64_t> hashes;
          FUSION_RETURN_NOT_OK(compute::HashColumns(probe_keys, &hashes));

          std::vector<int64_t> build_idx;
          std::vector<int64_t> probe_idx;
          const int64_t n = probe_batch->num_rows();
          for (int64_t r = 0; r < n; ++r) {
            for (int64_t b = state->table.Find(hashes[r]); b >= 0;
                 b = state->next[b]) {
              if (KeysMatch(state->key_arrays, b, probe_keys, r)) {
                build_idx.push_back(b);
                probe_idx.push_back(r);
              }
            }
          }

          // Residual filter over candidate pairs.
          if (filter != nullptr && !build_idx.empty()) {
            FUSION_ASSIGN_OR_RAISE(auto candidates,
                                   assemble(probe_batch, build_idx, probe_idx));
            FUSION_ASSIGN_OR_RAISE(auto mask,
                                   EvaluatePredicateMask(*filter, *candidates));
            const auto& bm = checked_cast<BooleanArray>(*mask);
            std::vector<int64_t> kept_b, kept_p;
            for (int64_t i = 0; i < bm.length(); ++i) {
              if (bm.IsValid(i) && bm.Value(i)) {
                kept_b.push_back(build_idx[i]);
                kept_p.push_back(probe_idx[i]);
              }
            }
            build_idx = std::move(kept_b);
            probe_idx = std::move(kept_p);
          }

          // Mark build matches for end-emission kinds.
          if (NeedsBuildMatchTracking(kind) && !build_idx.empty()) {
            std::lock_guard<std::mutex> lock(state->matched_mu);
            for (int64_t b : build_idx) state->matched[b] = 1;
          }

          switch (kind) {
            case JoinKind::kInner:
            case JoinKind::kCross:
            case JoinKind::kLeft: {
              if (build_idx.empty()) continue;
              return assemble(probe_batch, build_idx, probe_idx);
            }
            case JoinKind::kRight:
            case JoinKind::kFull: {
              // Emit matches plus null-extended unmatched probe rows.
              std::vector<uint8_t> probe_matched(static_cast<size_t>(n), 0);
              for (int64_t p : probe_idx) probe_matched[p] = 1;
              for (int64_t r = 0; r < n; ++r) {
                if (!probe_matched[r]) {
                  build_idx.push_back(-1);
                  probe_idx.push_back(r);
                }
              }
              if (build_idx.empty()) continue;
              return assemble(probe_batch, build_idx, probe_idx);
            }
            case JoinKind::kLeftSemi:
            case JoinKind::kLeftAnti:
              continue;  // output produced at end from matched bits
            case JoinKind::kRightSemi:
            case JoinKind::kRightAnti: {
              std::vector<uint8_t> probe_matched(static_cast<size_t>(n), 0);
              for (int64_t p : probe_idx) probe_matched[p] = 1;
              std::vector<int64_t> keep;
              const bool want = kind == JoinKind::kRightSemi;
              for (int64_t r = 0; r < n; ++r) {
                if ((probe_matched[r] != 0) == want) keep.push_back(r);
              }
              if (keep.empty()) continue;
              FUSION_ASSIGN_OR_RAISE(auto out,
                                     compute::TakeBatch(*probe_batch, keep));
              return std::make_shared<RecordBatch>(schema, out->num_rows(),
                                                   out->columns());
            }
          }
        }
      }));
}

}  // namespace physical
}  // namespace fusion
