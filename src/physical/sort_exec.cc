#include "physical/sort_exec.h"

#include <algorithm>
#include <queue>

#include "arrow/builder.h"
#include "arrow/ipc.h"
#include "compute/selection.h"
#include "exec/memory_pool.h"
#include "row/row_format.h"

namespace fusion {
namespace physical {

namespace {

/// Evaluate sort keys of a batch and encode per-row normalized keys.
Result<std::vector<std::string>> EncodeSortKeys(
    const RecordBatch& batch, const std::vector<PhysicalSortExpr>& sort_exprs) {
  std::vector<ArrayPtr> keys;
  std::vector<DataType> types;
  std::vector<row::SortOptions> options;
  keys.reserve(sort_exprs.size());
  for (const auto& se : sort_exprs) {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, se.expr->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    types.push_back(arr->type());
    keys.push_back(std::move(arr));
    options.push_back(se.options);
  }
  row::RowEncoder encoder(std::move(types), std::move(options));
  std::vector<std::string> encoded;
  encoded.reserve(static_cast<size_t>(batch.num_rows()));
  FUSION_RETURN_NOT_OK(encoder.EncodeColumns(keys, &encoded));
  return encoded;
}

/// Sort a fully materialized batch, returning it re-ordered.
Result<RecordBatchPtr> SortBatch(const RecordBatchPtr& batch,
                                 const std::vector<PhysicalSortExpr>& sort_exprs) {
  FUSION_ASSIGN_OR_RAISE(auto keys, EncodeSortKeys(*batch, sort_exprs));
  std::vector<int64_t> indices(static_cast<size_t>(batch->num_rows()));
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int64_t>(i);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int64_t a, int64_t b) { return keys[a] < keys[b]; });
  return compute::TakeBatch(*batch, indices);
}

/// Cursor over one sorted stream for the k-way merge.
struct MergeCursor {
  std::shared_ptr<exec::RecordBatchStream> stream;
  RecordBatchPtr batch;
  std::vector<std::string> keys;
  int64_t row = 0;

  Status Advance(const std::vector<PhysicalSortExpr>& sort_exprs) {
    ++row;
    if (batch != nullptr && row < batch->num_rows()) return Status::OK();
    return LoadNext(sort_exprs);
  }

  Status LoadNext(const std::vector<PhysicalSortExpr>& sort_exprs) {
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(batch, stream->Next());
      row = 0;
      if (batch == nullptr) return Status::OK();
      if (batch->num_rows() == 0) continue;
      FUSION_ASSIGN_OR_RAISE(keys, EncodeSortKeys(*batch, sort_exprs));
      return Status::OK();
    }
  }

  bool exhausted() const { return batch == nullptr; }
  const std::string& key() const { return keys[row]; }
};

/// A stream over spilled IPC batches.
class SpillStream : public exec::RecordBatchStream {
 public:
  SpillStream(SchemaPtr schema, exec::SpillFilePtr file)
      : schema_(std::move(schema)), file_(std::move(file)),
        reader_(file_->path()) {}

  const SchemaPtr& schema() const override { return schema_; }

  Result<RecordBatchPtr> Next() override {
    if (!opened_) {
      FUSION_RETURN_NOT_OK(reader_.Open());
      opened_ = true;
    }
    return reader_.Next();
  }

 private:
  SchemaPtr schema_;
  exec::SpillFilePtr file_;
  ipc::FileReader reader_;
  bool opened_ = false;
};

}  // namespace

std::vector<OrderingInfo> OrderingFromSortExprs(
    const std::vector<PhysicalSortExpr>& sort_exprs) {
  std::vector<OrderingInfo> out;
  for (const auto& se : sort_exprs) {
    auto* col = dynamic_cast<const ColumnExpr*>(se.expr.get());
    if (col == nullptr) break;
    out.push_back({col->index(), se.options});
  }
  return out;
}

Result<exec::StreamPtr> MergeSortedStreams(
    SchemaPtr schema, std::vector<std::shared_ptr<exec::RecordBatchStream>> inputs,
    std::vector<PhysicalSortExpr> sort_exprs, int64_t batch_size) {
  auto cursors = std::make_shared<std::vector<MergeCursor>>();
  cursors->reserve(inputs.size());
  for (auto& in : inputs) {
    MergeCursor c;
    c.stream = std::move(in);
    cursors->push_back(std::move(c));
  }
  auto exprs = std::make_shared<std::vector<PhysicalSortExpr>>(std::move(sort_exprs));
  auto initialized = std::make_shared<bool>(false);
  // Min-heap of cursor indices ordered by current normalized key; this
  // plays the role of the tree of losers in [Graefe 2006].
  auto cmp = [cursors](size_t a, size_t b) {
    return (*cursors)[a].key() > (*cursors)[b].key();
  };
  using Heap = std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)>;
  auto heap = std::make_shared<Heap>(cmp);

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [schema, cursors, exprs, initialized, heap,
       batch_size]() -> Result<RecordBatchPtr> {
        if (!*initialized) {
          *initialized = true;
          for (size_t i = 0; i < cursors->size(); ++i) {
            FUSION_RETURN_NOT_OK((*cursors)[i].LoadNext(*exprs));
            if (!(*cursors)[i].exhausted()) heap->push(i);
          }
        }
        if (heap->empty()) return RecordBatchPtr(nullptr);
        std::vector<std::unique_ptr<ArrayBuilder>> builders;
        for (const Field& f : schema->fields()) {
          FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(f.type()));
          b->Reserve(batch_size);
          builders.push_back(std::move(b));
        }
        int64_t rows = 0;
        while (rows < batch_size && !heap->empty()) {
          size_t i = heap->top();
          heap->pop();
          MergeCursor& cur = (*cursors)[i];
          for (int c = 0; c < schema->num_fields(); ++c) {
            builders[c]->AppendFrom(*cur.batch->column(c), cur.row);
          }
          ++rows;
          FUSION_RETURN_NOT_OK(cur.Advance(*exprs));
          if (!cur.exhausted()) heap->push(i);
        }
        if (rows == 0) return RecordBatchPtr(nullptr);
        std::vector<ArrayPtr> columns;
        for (auto& b : builders) {
          FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
          columns.push_back(std::move(arr));
        }
        return std::make_shared<RecordBatch>(schema, rows, std::move(columns));
      }));
}

std::vector<OrderingInfo> SortExec::output_ordering() const {
  return OrderingFromSortExprs(sort_exprs_);
}

std::string SortExec::ToStringLine() const {
  std::string out = "SortExec: ";
  for (size_t i = 0; i < sort_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += sort_exprs_[i].expr->ToString();
    if (sort_exprs_[i].options.descending) out += " DESC";
  }
  if (fetch_ >= 0) out += " fetch=" + std::to_string(fetch_) + " (TopK)";
  return out;
}

Result<exec::StreamPtr> SortExec::ExecuteImpl(int partition, const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  SchemaPtr schema = input_->schema();

  const bool use_topk = fetch_ >= 0 && ctx->config.enable_topk &&
                        fetch_ <= 100000;

  if (use_topk) {
    // Top-K: keep only the best `fetch_` rows, compacting the candidate
    // buffer whenever it doubles (paper §6.2 "specialized
    // implementations for LIMIT").
    std::vector<RecordBatchPtr> buffer;
    int64_t buffered_rows = 0;
    std::string cutoff;  // largest key currently in the top K (if full)
    bool have_cutoff = false;
    auto compact = [&]() -> Status {
      FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(schema, buffer));
      FUSION_ASSIGN_OR_RAISE(auto sorted, SortBatch(merged, sort_exprs_));
      if (sorted->num_rows() > fetch_) {
        sorted = sorted->Slice(0, fetch_);
      }
      buffer.clear();
      buffer.push_back(sorted);
      buffered_rows = sorted->num_rows();
      if (buffered_rows == fetch_) {
        FUSION_ASSIGN_OR_RAISE(auto keys, EncodeSortKeys(*sorted, sort_exprs_));
        cutoff = keys.back();
        have_cutoff = true;
      }
      return Status::OK();
    };
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
      if (batch == nullptr) break;
      if (batch->num_rows() == 0) continue;
      if (have_cutoff) {
        // Pre-filter rows that cannot enter the top K.
        FUSION_ASSIGN_OR_RAISE(auto keys, EncodeSortKeys(*batch, sort_exprs_));
        std::vector<int64_t> keep;
        for (int64_t r = 0; r < batch->num_rows(); ++r) {
          if (keys[r] < cutoff) keep.push_back(r);
        }
        if (keep.empty()) continue;
        if (static_cast<int64_t>(keep.size()) < batch->num_rows()) {
          FUSION_ASSIGN_OR_RAISE(batch, compute::TakeBatch(*batch, keep));
        }
      }
      buffered_rows += batch->num_rows();
      buffer.push_back(std::move(batch));
      if (buffered_rows > 2 * fetch_ + 8192) {
        FUSION_RETURN_NOT_OK(compact());
      }
    }
    if (buffer.empty()) {
      return exec::StreamPtr(std::make_unique<exec::VectorStream>(
          schema, std::vector<RecordBatchPtr>{}));
    }
    FUSION_RETURN_NOT_OK(compact());
    return exec::StreamPtr(std::make_unique<exec::VectorStream>(
        schema, std::move(buffer)));
  }

  // Full (external) sort.
  std::string consumer =
      "sort-" + std::to_string(ctx->query_id) + "-" + std::to_string(partition);
  exec::MemoryReservation reservation(ctx->env->memory_pool, consumer);
  std::vector<RecordBatchPtr> buffer;
  std::vector<exec::SpillFilePtr> spills;
  int64_t buffered_bytes = 0;
  auto spill_count = metrics_->Counter(exec::metric::kSpillCount, partition);
  auto spill_bytes = metrics_->Counter(exec::metric::kSpillBytes, partition);
  auto mem_reserved = metrics_->Gauge(exec::metric::kMemReservedBytes, partition);

  auto spill_run = [&]() -> Status {
    FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(schema, buffer));
    FUSION_ASSIGN_OR_RAISE(auto sorted, SortBatch(merged, sort_exprs_));
    FUSION_ASSIGN_OR_RAISE(auto file,
                           ctx->env->disk_manager->CreateTempFile("sort"));
    // Charge the run against the disk manager's spill quota before
    // writing; ResourcesExhausted here is the clean "disk full" path.
    FUSION_RETURN_NOT_OK(file->Reserve(sorted->TotalBufferSize()));
    ipc::FileWriter writer(file->path());
    FUSION_RETURN_NOT_OK(writer.Open());
    for (const auto& chunk : SliceBatch(sorted, ctx->config.batch_size)) {
      FUSION_RETURN_NOT_OK(writer.WriteBatch(*chunk));
    }
    FUSION_RETURN_NOT_OK(writer.Close());
    spills.push_back(std::move(file));
    spills_.fetch_add(1);
    spill_count->Add(1);
    spill_bytes->Add(sorted->TotalBufferSize());
    buffer.clear();
    buffered_bytes = 0;
    FUSION_RETURN_NOT_OK(reservation.ResizeTo(0));
    return Status::OK();
  };

  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    int64_t bytes = batch->TotalBufferSize();
    Status grow = reservation.ResizeTo(buffered_bytes + bytes);
    if (!grow.ok()) {
      if (!grow.IsOutOfMemory() || buffer.empty()) return grow;
      FUSION_RETURN_NOT_OK(spill_run());
      FUSION_RETURN_NOT_OK(reservation.ResizeTo(bytes));
    }
    mem_reserved->SetMax(reservation.held());
    buffered_bytes += bytes;
    buffer.push_back(std::move(batch));
  }

  if (spills.empty()) {
    if (buffer.empty()) {
      return exec::StreamPtr(std::make_unique<exec::VectorStream>(
          schema, std::vector<RecordBatchPtr>{}));
    }
    FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(schema, buffer));
    FUSION_ASSIGN_OR_RAISE(auto sorted, SortBatch(merged, sort_exprs_));
    std::vector<RecordBatchPtr> chunks = SliceBatch(sorted, ctx->config.batch_size);
    if (fetch_ >= 0) {
      std::vector<RecordBatchPtr> limited;
      int64_t remaining = fetch_;
      for (auto& c : chunks) {
        if (remaining <= 0) break;
        if (c->num_rows() > remaining) c = c->Slice(0, remaining);
        remaining -= c->num_rows();
        limited.push_back(std::move(c));
      }
      chunks = std::move(limited);
    }
    return exec::StreamPtr(
        std::make_unique<exec::VectorStream>(schema, std::move(chunks)));
  }

  // Merge spilled runs (+ the final in-memory run).
  if (!buffer.empty()) {
    FUSION_RETURN_NOT_OK(spill_run());
  }
  std::vector<std::shared_ptr<exec::RecordBatchStream>> runs;
  runs.reserve(spills.size());
  for (auto& file : spills) {
    runs.push_back(std::make_shared<SpillStream>(schema, std::move(file)));
  }
  FUSION_ASSIGN_OR_RAISE(auto merged_stream,
                         MergeSortedStreams(schema, std::move(runs), sort_exprs_,
                                            ctx->config.batch_size));
  if (fetch_ < 0) return merged_stream;
  // A top-k sort that spilled must still honour its fetch: cap the
  // merged output just like the in-memory path above.
  std::shared_ptr<exec::RecordBatchStream> inner = std::move(merged_stream);
  auto remaining = std::make_shared<int64_t>(fetch_);
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [inner, remaining]() -> Result<RecordBatchPtr> {
        if (*remaining <= 0) return RecordBatchPtr(nullptr);
        FUSION_ASSIGN_OR_RAISE(auto batch, inner->Next());
        if (batch == nullptr) return batch;
        if (batch->num_rows() > *remaining) batch = batch->Slice(0, *remaining);
        *remaining -= batch->num_rows();
        return batch;
      }));
}

std::vector<OrderingInfo> SortPreservingMergeExec::output_ordering() const {
  return OrderingFromSortExprs(sort_exprs_);
}

Result<exec::StreamPtr> SortPreservingMergeExec::ExecuteImpl(
    int partition, const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("SortPreservingMergeExec has a single partition");
  }
  const int n = input_->output_partitions();
  if (n == 1) return input_->Execute(0, ctx);
  std::vector<std::shared_ptr<exec::RecordBatchStream>> inputs;
  inputs.reserve(n);
  for (int i = 0; i < n; ++i) {
    FUSION_ASSIGN_OR_RAISE(auto stream, input_->Execute(i, ctx));
    inputs.push_back(std::move(stream));
  }
  return MergeSortedStreams(input_->schema(), std::move(inputs), sort_exprs_,
                            ctx->config.batch_size);
}

}  // namespace physical
}  // namespace fusion
