#ifndef FUSION_PHYSICAL_HASH_JOIN_EXEC_H_
#define FUSION_PHYSICAL_HASH_JOIN_EXEC_H_

#include <atomic>
#include <mutex>

#include "logical/plan.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Parallel in-memory hash join (paper §6.4): the left child is
/// the build side (collected once, shared across probe partitions —
/// DataFusion's CollectLeft mode), the right child streams as the probe
/// side. Vectorized hashing with chained collision resolution follows
/// the MonetDB-style scheme the paper cites.
///
/// All eight join types are supported; the physical planner swaps
/// children (and flips the type) so the smaller input builds.
class HashJoinExec : public ExecutionPlan {
 public:
  HashJoinExec(ExecPlanPtr build, ExecPlanPtr probe, logical::JoinKind kind,
               std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on,
               PhysicalExprPtr filter, SchemaPtr output_schema)
      : build_(std::move(build)), probe_(std::move(probe)), kind_(kind),
        on_(std::move(on)), filter_(std::move(filter)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "HashJoinExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return probe_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {build_, probe_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  /// Sideways information passing: once the build completes, publish a
  /// Bloom filter over build key `key_index` (an index into `on`)
  /// through `filter`; the probe-side scan holding the other end tests
  /// its rows against it. Set by the physical planner at plan time.
  void AddRuntimeFilter(int key_index, exec::RuntimeFilterPtr filter) {
    runtime_filters_.emplace_back(key_index, std::move(filter));
  }
  /// Build-side row estimate used to size the Bloom filters (planner
  /// statistics; per-partition filters must agree on size to OR-merge).
  void SetRuntimeFilterExpectedRows(int64_t rows) {
    rf_expected_rows_ = rows;
  }
  /// Planner estimates rendered by EXPLAIN (negative = unknown).
  void SetEstimatedRows(double build, double probe, double output) {
    est_build_rows_ = build;
    est_probe_rows_ = probe;
    est_output_rows_ = output;
  }

 private:
  struct BuildState;

  Status EnsureBuilt(const ExecContextPtr& ctx);

  ExecPlanPtr build_;
  ExecPlanPtr probe_;
  logical::JoinKind kind_;
  std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on_;
  PhysicalExprPtr filter_;
  SchemaPtr schema_;

  /// (key index into on_, channel to publish) pairs; empty = no
  /// sideways passing for this join.
  std::vector<std::pair<int, exec::RuntimeFilterPtr>> runtime_filters_;
  int64_t rf_expected_rows_ = 1024;
  double est_build_rows_ = -1;
  double est_probe_rows_ = -1;
  double est_output_rows_ = -1;

  std::mutex build_mu_;
  std::shared_ptr<BuildState> build_state_;
  Status build_status_;
  bool built_ = false;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_HASH_JOIN_EXEC_H_
