#include "physical/simple_exec.h"

#include "arrow/builder.h"
#include "compute/selection.h"
#include "exec/buffer_cache.h"
#include "exec/cache_manager.h"
#include "exec/scheduler.h"

namespace fusion {
namespace physical {

Result<exec::StreamPtr> FilterExec::ExecuteImpl(int partition,
                                            const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  auto input_shared = std::shared_ptr<exec::RecordBatchStream>(std::move(input));
  auto predicate = predicate_;
  SchemaPtr schema = input_shared->schema();
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [input_shared, predicate]() -> Result<RecordBatchPtr> {
        for (;;) {
          FUSION_ASSIGN_OR_RAISE(auto batch, input_shared->Next());
          if (batch == nullptr) return RecordBatchPtr(nullptr);
          FUSION_ASSIGN_OR_RAISE(auto mask,
                                 EvaluatePredicateMask(*predicate, *batch));
          const auto& bmask = checked_cast<BooleanArray>(*mask);
          int64_t selected = bmask.TrueCount();
          if (selected == 0) continue;
          if (selected == batch->num_rows()) return batch;
          FUSION_ASSIGN_OR_RAISE(auto filtered,
                                 compute::FilterBatch(*batch, bmask));
          return filtered;
        }
      }));
}

std::vector<OrderingInfo> ProjectionExec::output_ordering() const {
  // Map the input ordering through pass-through column expressions.
  std::vector<OrderingInfo> in_order = input_->output_ordering();
  std::vector<OrderingInfo> out;
  for (const OrderingInfo& o : in_order) {
    bool found = false;
    for (size_t i = 0; i < exprs_.size(); ++i) {
      auto* col = dynamic_cast<const ColumnExpr*>(exprs_[i].get());
      if (col != nullptr && col->index() == o.column) {
        out.push_back({static_cast<int>(i), o.options});
        found = true;
        break;
      }
    }
    if (!found) break;  // prefix orderings only
  }
  return out;
}

Result<exec::StreamPtr> ProjectionExec::ExecuteImpl(int partition,
                                                const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  auto input_shared = std::shared_ptr<exec::RecordBatchStream>(std::move(input));
  auto exprs = exprs_;
  SchemaPtr schema = schema_;
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [input_shared, exprs, schema]() -> Result<RecordBatchPtr> {
        FUSION_ASSIGN_OR_RAISE(auto batch, input_shared->Next());
        if (batch == nullptr) return RecordBatchPtr(nullptr);
        FUSION_ASSIGN_OR_RAISE(auto columns, EvaluateToArrays(exprs, *batch));
        return std::make_shared<RecordBatch>(schema, batch->num_rows(),
                                             std::move(columns));
      }));
}

std::string ProjectionExec::ToStringLine() const {
  std::string out = "ProjectionExec: ";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out;
}

Result<exec::StreamPtr> LimitExec::ExecuteImpl(int partition, const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("LimitExec expects a single partition");
  }
  if (input_->output_partitions() != 1) {
    return Status::ExecutionError(
        "LimitExec input must be coalesced to one partition");
  }
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(0, ctx));
  auto input_shared = std::shared_ptr<exec::RecordBatchStream>(std::move(input));
  SchemaPtr schema = input_shared->schema();
  auto skip = std::make_shared<int64_t>(skip_);
  auto remaining = std::make_shared<int64_t>(fetch_ < 0 ? INT64_MAX : fetch_);
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [input_shared, skip, remaining]() -> Result<RecordBatchPtr> {
        for (;;) {
          if (*remaining <= 0) return RecordBatchPtr(nullptr);
          FUSION_ASSIGN_OR_RAISE(auto batch, input_shared->Next());
          if (batch == nullptr) return RecordBatchPtr(nullptr);
          if (*skip > 0) {
            if (batch->num_rows() <= *skip) {
              *skip -= batch->num_rows();
              continue;
            }
            batch = batch->Slice(*skip, batch->num_rows() - *skip);
            *skip = 0;
          }
          if (batch->num_rows() > *remaining) {
            batch = batch->Slice(0, *remaining);
          }
          *remaining -= batch->num_rows();
          return batch;
        }
      }));
}

Result<exec::StreamPtr> CoalesceBatchesExec::ExecuteImpl(int partition,
                                                     const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  auto input_shared = std::shared_ptr<exec::RecordBatchStream>(std::move(input));
  SchemaPtr schema = input_shared->schema();
  int64_t target = ctx->config.batch_size;
  auto pending = std::make_shared<std::vector<RecordBatchPtr>>();
  auto pending_rows = std::make_shared<int64_t>(0);
  auto done = std::make_shared<bool>(false);
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [input_shared, schema, target, pending, pending_rows,
       done]() -> Result<RecordBatchPtr> {
        if (*done && pending->empty()) return RecordBatchPtr(nullptr);
        while (!*done && *pending_rows < target) {
          FUSION_ASSIGN_OR_RAISE(auto batch, input_shared->Next());
          if (batch == nullptr) {
            *done = true;
            break;
          }
          if (batch->num_rows() == 0) continue;
          *pending_rows += batch->num_rows();
          pending->push_back(std::move(batch));
        }
        if (pending->empty()) return RecordBatchPtr(nullptr);
        if (pending->size() == 1) {
          auto out = std::move(pending->front());
          pending->clear();
          *pending_rows = 0;
          return out;
        }
        FUSION_ASSIGN_OR_RAISE(auto merged, ConcatenateBatches(schema, *pending));
        pending->clear();
        *pending_rows = 0;
        return merged;
      }));
}

Result<exec::StreamPtr> UnionExec::ExecuteImpl(int partition, const ExecContextPtr& ctx) {
  int p = partition;
  for (const auto& input : inputs_) {
    if (p < input->output_partitions()) {
      return input->Execute(p, ctx);
    }
    p -= input->output_partitions();
  }
  return Status::ExecutionError("UnionExec: partition out of range");
}

Result<exec::StreamPtr> ExplainExec::ExecuteImpl(int, const ExecContextPtr&) {
  StringBuilder builder;
  builder.Append("== Logical Plan ==\n" + logical_text_ + "== Physical Plan ==\n" +
                 physical_text_);
  FUSION_ASSIGN_OR_RAISE(auto arr, builder.Finish());
  auto batch = std::make_shared<RecordBatch>(schema_, 1,
                                             std::vector<ArrayPtr>{std::move(arr)});
  return exec::StreamPtr(std::make_unique<exec::VectorStream>(
      schema_, std::vector<RecordBatchPtr>{std::move(batch)}));
}

Result<exec::StreamPtr> AnalyzeExec::ExecuteImpl(int partition,
                                                 const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("AnalyzeExec has a single partition");
  }
  // Run the query to completion (all partitions, normal parallelism);
  // only then are the metrics complete enough to render.
  FUSION_ASSIGN_OR_RAISE(int64_t rows, ExecuteCountRows(input_, ctx));
  (void)rows;
  exec::QueryScheduler* sched = ctx->env->scheduler();
  std::string footer = "== Scheduler ==\nworkers=" +
                       std::to_string(sched->num_workers()) +
                       ", peak_threads=" + std::to_string(sched->peak_threads()) +
                       ", peak_ready_tasks=" +
                       std::to_string(sched->peak_ready_tasks());
  if (ctx->task_group != nullptr) {
    footer += ", query_tasks=" + std::to_string(ctx->task_group->tasks_spawned());
  }
  footer += "\nadmission: running=" + std::to_string(sched->admission_running()) +
            ", queued=" + std::to_string(sched->admission_queued()) +
            ", admitted_total=" + std::to_string(sched->admission_admitted_total()) +
            ", queued_total=" + std::to_string(sched->admission_queued_total()) +
            ", rejected_total=" + std::to_string(sched->admission_rejected_total());
  footer += "\n== Caches ==\n";
  if (ctx->env->buffer_cache != nullptr) {
    auto bc = ctx->env->buffer_cache->stats();
    footer += "buffer: hits=" + std::to_string(bc.hits) +
              ", misses=" + std::to_string(bc.misses) +
              ", evictions=" + std::to_string(bc.evictions) +
              ", coalesced=" + std::to_string(bc.coalesced) +
              ", cached_bytes=" + std::to_string(bc.cached_bytes) +
              ", pinned_bytes=" + std::to_string(bc.pinned_bytes) +
              ", entries=" + std::to_string(bc.entries) + "\n";
  } else {
    footer += "buffer: disabled\n";
  }
  if (ctx->env->plan_cache_stats != nullptr) {
    const auto& pc = *ctx->env->plan_cache_stats;
    footer += "plan: hits=" + std::to_string(pc.hits.load()) +
              ", misses=" + std::to_string(pc.misses.load()) +
              ", evictions=" + std::to_string(pc.evictions.load()) +
              ", invalidations=" + std::to_string(pc.invalidations.load()) +
              ", entries=" + std::to_string(pc.entries.load()) + "\n";
  }
  if (ctx->env->cache_manager != nullptr) {
    const auto& cm = *ctx->env->cache_manager;
    footer += "listing: hits=" + std::to_string(cm.listing_hits()) +
              ", misses=" + std::to_string(cm.listing_misses()) +
              "; file_stats: hits=" + std::to_string(cm.stats_hits()) +
              ", misses=" + std::to_string(cm.stats_misses());
  }
  StringBuilder builder;
  builder.Append("== Physical Plan (EXPLAIN ANALYZE) ==\n" +
                 RenderAnnotatedPlan(*input_) + footer + "\n");
  FUSION_ASSIGN_OR_RAISE(auto arr, builder.Finish());
  auto batch = std::make_shared<RecordBatch>(schema_, 1,
                                             std::vector<ArrayPtr>{std::move(arr)});
  return exec::StreamPtr(std::make_unique<exec::VectorStream>(
      schema_, std::vector<RecordBatchPtr>{std::move(batch)}));
}

}  // namespace physical
}  // namespace fusion
