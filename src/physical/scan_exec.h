#ifndef FUSION_PHYSICAL_SCAN_EXEC_H_
#define FUSION_PHYSICAL_SCAN_EXEC_H_

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "catalog/table_provider.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Stream decorator that tests scan rows against runtime (Bloom)
/// filters published by a hash join's build side (sideways information
/// passing). Strictly non-blocking: a filter still kPending is skipped
/// for that batch, so a slow build never stalls the scan. Filtering is
/// late-materialized — only the key columns are hashed, and surviving
/// rows are gathered once at the end. Dictionary-encoded keys are tested
/// per distinct dictionary entry (cached per dictionary instance), not
/// per row.
class RuntimeFilterStream : public exec::RecordBatchStream {
 public:
  struct Target {
    int column;
    exec::RuntimeFilterPtr filter;
  };

  RuntimeFilterStream(exec::StreamPtr input, SchemaPtr schema,
                      std::vector<Target> targets, exec::MetricValuePtr checked,
                      exec::MetricValuePtr pruned)
      : input_(std::move(input)), schema_(std::move(schema)),
        targets_(std::move(targets)), dict_cache_(targets_.size()),
        checked_(std::move(checked)), pruned_(std::move(pruned)) {}

  const SchemaPtr& schema() const override { return schema_; }

  Result<RecordBatchPtr> Next() override {
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(auto batch, input_->Next());
      if (batch == nullptr) return batch;
      const int64_t rows = batch->num_rows();
      if (rows == 0) return batch;
      std::vector<uint8_t> pass;  // allocated on the first ready filter
      for (size_t t = 0; t < targets_.size(); ++t) {
        if (!targets_[t].filter->ready()) continue;
        if (pass.empty()) pass.assign(static_cast<size_t>(rows), 1);
        FUSION_RETURN_NOT_OK(
            ApplyFilter(t, *batch->column(targets_[t].column), &pass));
      }
      if (pass.empty()) return batch;  // nothing ready yet: pass through
      checked_->Add(rows);
      std::vector<int64_t> keep;
      keep.reserve(static_cast<size_t>(rows));
      for (int64_t i = 0; i < rows; ++i) {
        if (pass[static_cast<size_t>(i)]) keep.push_back(i);
      }
      if (static_cast<int64_t>(keep.size()) == rows) return batch;
      pruned_->Add(rows - static_cast<int64_t>(keep.size()));
      if (keep.empty()) continue;  // fully pruned: fetch the next batch
      return compute::TakeBatch(*batch, keep);
    }
  }

 private:
  /// Clear `pass` bits for rows whose key cannot be in the build side.
  /// Null keys never match an equi-join key, so they are dropped too
  /// (the planner only attaches filters to join kinds where a
  /// non-matching probe row contributes nothing).
  Status ApplyFilter(size_t t, const Array& col, std::vector<uint8_t>* pass) {
    const format::BloomFilter& bloom = targets_[t].filter->bloom();
    const int64_t rows = col.length();
    if (col.type().is_dictionary()) {
      const auto& da = checked_cast<DictionaryArray>(col);
      auto& cache = dict_cache_[t];
      const void* dict_key = da.dictionary().get();
      auto it = cache.find(dict_key);
      if (it == cache.end()) {
        std::vector<uint64_t> hashes;
        FUSION_RETURN_NOT_OK(compute::HashArray(*da.dictionary(), 0, &hashes));
        std::vector<uint8_t> verdicts(hashes.size());
        for (size_t i = 0; i < hashes.size(); ++i) {
          verdicts[i] = bloom.MightContain(hashes[i]) ? 1 : 0;
        }
        it = cache.emplace(dict_key, std::move(verdicts)).first;
      }
      const std::vector<uint8_t>& verdicts = it->second;
      const int32_t* codes = da.raw_codes();
      for (int64_t i = 0; i < rows; ++i) {
        uint8_t& bit = (*pass)[static_cast<size_t>(i)];
        if (!bit) continue;
        if (da.IsNull(i) || !verdicts[static_cast<size_t>(codes[i])]) bit = 0;
      }
      return Status::OK();
    }
    std::vector<uint64_t> hashes;
    FUSION_RETURN_NOT_OK(compute::HashArray(col, 0, &hashes));
    for (int64_t i = 0; i < rows; ++i) {
      uint8_t& bit = (*pass)[static_cast<size_t>(i)];
      if (!bit) continue;
      if (col.IsNull(i) || !bloom.MightContain(hashes[static_cast<size_t>(i)])) {
        bit = 0;
      }
    }
    return Status::OK();
  }

  exec::StreamPtr input_;
  SchemaPtr schema_;
  std::vector<Target> targets_;
  /// Per-target verdict cache keyed by dictionary instance: files share
  /// dictionaries across chunks, so each distinct dictionary is hashed
  /// and tested against the Bloom filter exactly once.
  std::vector<std::unordered_map<const void*, std::vector<uint8_t>>> dict_cache_;
  exec::MetricValuePtr checked_;
  exec::MetricValuePtr pruned_;
};

/// \brief Leaf operator wrapping a TableProvider scan. The provider
/// receives the pushed projection/predicates/limit and decides its own
/// partitioning (paper §7.3).
///
/// When the request carries `max_morsels`, the provider returns
/// fine-grained iterators (morsels) and this node exposes
/// `target_partitions` consumer streams that claim morsels from one
/// shared queue (morsel-driven scheduling à la HyPer): a consumer that
/// finishes its share early steals the remaining morsels instead of
/// idling behind a skewed static split.
class ScanExec : public ExecutionPlan {
 public:
  ScanExec(std::string table_name, catalog::TableProviderPtr provider,
           catalog::ScanRequest request, SchemaPtr output_schema)
      : table_name_(std::move(table_name)), provider_(std::move(provider)),
        request_(std::move(request)), schema_(std::move(output_schema)) {}

  std::string name() const override { return "ScanExec"; }
  SchemaPtr schema() const override { return schema_; }

  int output_partitions() const override {
    // A failed open is not dropped here: EnsureOpened caches the status
    // and the first ExecuteImpl returns it. Until the scan opens cleanly
    // this node reports a single partition.
    if (!EnsureOpened().ok()) return 1;
    if (morsel_queue_ != nullptr) {
      return std::max(1, std::min(request_.target_partitions,
                                  static_cast<int>(morsel_queue_->morsels.size())));
    }
    return static_cast<int>(iterators_.size());
  }

  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr&) override {
    FUSION_RETURN_NOT_OK(EnsureOpened());
    exec::StreamPtr out;
    if (morsel_queue_ != nullptr) {
      const int consumers = output_partitions();
      if (partition < 0 || partition >= consumers) {
        return Status::ExecutionError("scan partition out of range");
      }
      auto stolen = metrics_->Counter(exec::metric::kMorselsStolen, partition);
      out = std::make_unique<MorselStream>(schema_, morsel_queue_, partition,
                                           consumers, std::move(stolen));
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      if (partition < 0 || partition >= static_cast<int>(iterators_.size()) ||
          iterators_[partition] == nullptr) {
        return Status::ExecutionError("scan partition already consumed or invalid");
      }
      out = std::make_unique<exec::IteratorStream>(
          schema_, std::move(iterators_[partition]));
    }
    // Row-level runtime filtering sits above the provider (and thus
    // above the buffer cache, whose keys stay filter-independent): test
    // the join-key columns against any ready filters, gather survivors.
    std::vector<RuntimeFilterStream::Target> targets;
    for (const auto& rsf : request_.runtime_filters) {
      if (rsf.filter == nullptr) continue;
      int idx = schema_->GetFieldIndex(rsf.column);
      if (idx >= 0) targets.push_back({idx, rsf.filter});
    }
    if (!targets.empty()) {
      auto checked = metrics_->Counter(exec::metric::kRfCheckedRows, partition);
      auto pruned = metrics_->Counter(exec::metric::kRfPrunedRows, partition);
      out = std::make_unique<RuntimeFilterStream>(
          std::move(out), schema_, std::move(targets), std::move(checked),
          std::move(pruned));
    }
    return out;
  }

  std::vector<OrderingInfo> output_ordering() const override {
    // Map the provider's declared order (paper §6.7) through the scan's
    // projection; each scan partition individually satisfies it. (The
    // planner never requests morsels from an ordered provider: stealing
    // interleaves chunks and would break per-partition runs.)
    std::vector<OrderingInfo> out;
    for (const catalog::OrderedColumn& oc : provider_->sort_order()) {
      int idx = schema_->GetFieldIndex(oc.column);
      if (idx < 0) break;
      out.push_back({idx, oc.options});
    }
    return out;
  }

  std::string ToStringLine() const override {
    std::string out = "ScanExec: " + table_name_;
    if (!request_.predicates.empty()) {
      out += " pushdown=[";
      for (size_t i = 0; i < request_.predicates.size(); ++i) {
        if (i > 0) out += ", ";
        out += request_.predicates[i].ToString();
      }
      out += "]";
    }
    if (request_.limit >= 0) out += " limit=" + std::to_string(request_.limit);
    if (request_.max_morsels > 0) {
      out += " morsels=" + std::to_string(request_.max_morsels);
    }
    if (!request_.runtime_filters.empty()) {
      out += " runtime_filter=[";
      for (size_t i = 0; i < request_.runtime_filters.size(); ++i) {
        if (i > 0) out += ", ";
        out += request_.runtime_filters[i].column;
      }
      out += "]";
    }
    return out;
  }

  const catalog::ScanRequest& request() const { return request_; }
  const catalog::TableProviderPtr& provider() const { return provider_; }

 private:
  /// All consumers share one queue; a morsel is claimed exclusively by
  /// the fetch_add below, so moving its iterator out needs no lock.
  struct MorselQueue {
    std::vector<catalog::BatchIteratorPtr> morsels;
    std::atomic<size_t> next{0};
  };

  class MorselStream : public exec::RecordBatchStream {
   public:
    MorselStream(SchemaPtr schema, std::shared_ptr<MorselQueue> queue,
                 int partition, int consumers, exec::MetricValuePtr stolen)
        : schema_(std::move(schema)), queue_(std::move(queue)),
          partition_(partition), consumers_(consumers), stolen_(std::move(stolen)) {}

    const SchemaPtr& schema() const override { return schema_; }

    Result<RecordBatchPtr> Next() override {
      for (;;) {
        if (current_ == nullptr) {
          const size_t i = queue_->next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queue_->morsels.size()) return RecordBatchPtr(nullptr);
          current_ = std::move(queue_->morsels[i]);
          // Nominal assignment is round-robin; claiming outside it means
          // this consumer out-ran its share and picked up someone else's.
          if (static_cast<int>(i % static_cast<size_t>(consumers_)) != partition_) {
            stolen_->Add(1);
          }
        }
        FUSION_ASSIGN_OR_RAISE(auto batch, current_->Next());
        if (batch != nullptr) return batch;
        current_ = nullptr;
      }
    }

   private:
    SchemaPtr schema_;
    std::shared_ptr<MorselQueue> queue_;
    int partition_;
    int consumers_;
    exec::MetricValuePtr stolen_;
    catalog::BatchIteratorPtr current_;
  };

  Status EnsureOpened() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (opened_) return open_status_;
    opened_ = true;
    auto result = provider_->Scan(request_);
    if (!result.ok()) {
      open_status_ = result.status();
      return open_status_;
    }
    iterators_ = std::move(*result);
    if (iterators_.empty()) {
      // Always expose at least one (empty) partition.
      class EmptyIterator : public catalog::BatchIterator {
       public:
        Result<RecordBatchPtr> Next() override { return RecordBatchPtr(nullptr); }
      };
      iterators_.push_back(std::make_unique<EmptyIterator>());
    }
    if (request_.max_morsels > 0) {
      morsel_queue_ = std::make_shared<MorselQueue>();
      morsel_queue_->morsels = std::move(iterators_);
      iterators_.clear();
    }
    return Status::OK();
  }

  std::string table_name_;
  catalog::TableProviderPtr provider_;
  catalog::ScanRequest request_;
  SchemaPtr schema_;

  mutable std::mutex mu_;
  mutable bool opened_ = false;
  mutable Status open_status_;
  mutable std::vector<catalog::BatchIteratorPtr> iterators_;
  mutable std::shared_ptr<MorselQueue> morsel_queue_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_SCAN_EXEC_H_
