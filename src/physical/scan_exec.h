#ifndef FUSION_PHYSICAL_SCAN_EXEC_H_
#define FUSION_PHYSICAL_SCAN_EXEC_H_

#include <mutex>

#include "catalog/table_provider.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Leaf operator wrapping a TableProvider scan. The provider
/// receives the pushed projection/predicates/limit and decides its own
/// partitioning (paper §7.3).
class ScanExec : public ExecutionPlan {
 public:
  ScanExec(std::string table_name, catalog::TableProviderPtr provider,
           catalog::ScanRequest request, SchemaPtr output_schema)
      : table_name_(std::move(table_name)), provider_(std::move(provider)),
        request_(std::move(request)), schema_(std::move(output_schema)) {}

  std::string name() const override { return "ScanExec"; }
  SchemaPtr schema() const override { return schema_; }

  int output_partitions() const override {
    // A failed open is not dropped here: EnsureOpened caches the status
    // and the first ExecuteImpl returns it. Until the scan opens cleanly
    // this node reports a single partition.
    if (!EnsureOpened().ok()) return 1;
    return static_cast<int>(iterators_.size());
  }

  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr&) override {
    FUSION_RETURN_NOT_OK(EnsureOpened());
    std::lock_guard<std::mutex> lock(mu_);
    if (partition < 0 || partition >= static_cast<int>(iterators_.size()) ||
        iterators_[partition] == nullptr) {
      return Status::ExecutionError("scan partition already consumed or invalid");
    }
    return exec::StreamPtr(std::make_unique<exec::IteratorStream>(
        schema_, std::move(iterators_[partition])));
  }

  std::vector<OrderingInfo> output_ordering() const override {
    // Map the provider's declared order (paper §6.7) through the scan's
    // projection; each scan partition individually satisfies it.
    std::vector<OrderingInfo> out;
    for (const catalog::OrderedColumn& oc : provider_->sort_order()) {
      int idx = schema_->GetFieldIndex(oc.column);
      if (idx < 0) break;
      out.push_back({idx, oc.options});
    }
    return out;
  }

  std::string ToStringLine() const override {
    std::string out = "ScanExec: " + table_name_;
    if (!request_.predicates.empty()) {
      out += " pushdown=[";
      for (size_t i = 0; i < request_.predicates.size(); ++i) {
        if (i > 0) out += ", ";
        out += request_.predicates[i].ToString();
      }
      out += "]";
    }
    if (request_.limit >= 0) out += " limit=" + std::to_string(request_.limit);
    return out;
  }

  const catalog::ScanRequest& request() const { return request_; }
  const catalog::TableProviderPtr& provider() const { return provider_; }

 private:
  Status EnsureOpened() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (opened_) return open_status_;
    opened_ = true;
    auto result = provider_->Scan(request_);
    if (!result.ok()) {
      open_status_ = result.status();
      return open_status_;
    }
    iterators_ = std::move(*result);
    if (iterators_.empty()) {
      // Always expose at least one (empty) partition.
      class EmptyIterator : public catalog::BatchIterator {
       public:
        Result<RecordBatchPtr> Next() override { return RecordBatchPtr(nullptr); }
      };
      iterators_.push_back(std::make_unique<EmptyIterator>());
    }
    return Status::OK();
  }

  std::string table_name_;
  catalog::TableProviderPtr provider_;
  catalog::ScanRequest request_;
  SchemaPtr schema_;

  mutable std::mutex mu_;
  mutable bool opened_ = false;
  mutable Status open_status_;
  mutable std::vector<catalog::BatchIteratorPtr> iterators_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_SCAN_EXEC_H_
