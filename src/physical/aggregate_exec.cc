#include "physical/aggregate_exec.h"

#include "arrow/builder.h"
#include "arrow/ipc.h"
#include "compute/cast.h"
#include "compute/group_table.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "exec/memory_pool.h"

namespace fusion {
namespace physical {

namespace {

using logical::GroupedAccumulator;

/// In-memory grouping state: the vectorized group table (key -> dense
/// group id, keys arena-allocated) plus one accumulator per aggregate
/// covering all groups.
struct GroupingState {
  compute::GroupTable table;
  /// Global (no GROUP BY) aggregates bypass the table: one implicit
  /// group that exists once input has been seen.
  bool global_group = false;
  std::vector<std::unique_ptr<GroupedAccumulator>> accumulators;

  explicit GroupingState(std::vector<DataType> key_types)
      : table(std::move(key_types)) {}

  int64_t num_groups() const {
    if (table.key_types().empty()) return global_group ? 1 : 0;
    return table.num_groups();
  }

  int64_t SizeBytes() const {
    int64_t total = table.SizeBytes();
    for (const auto& acc : accumulators) total += acc->SizeBytes();
    return total;
  }
};

Result<std::vector<uint8_t>> EvaluateFilterMask(const PhysicalExprPtr& filter,
                                                const RecordBatch& batch) {
  std::vector<uint8_t> mask;
  if (filter == nullptr) return mask;
  FUSION_ASSIGN_OR_RAISE(auto arr, EvaluatePredicateMask(*filter, batch));
  const auto& bm = checked_cast<BooleanArray>(*arr);
  mask.resize(static_cast<size_t>(batch.num_rows()), 0);
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    mask[i] = bm.IsValid(i) && bm.Value(i) ? 1 : 0;
  }
  return mask;
}

}  // namespace

std::string HashAggregateExec::ToStringLine() const {
  std::string mode;
  switch (mode_) {
    case AggregateMode::kPartial: mode = "partial"; break;
    case AggregateMode::kFinal: mode = "final"; break;
    case AggregateMode::kSingle: mode = "single"; break;
  }
  std::string out = "HashAggregateExec(" + mode + "): groups=[";
  for (size_t i = 0; i < group_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_names_[i];
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].output_name;
  }
  out += "]";
  return out;
}

Result<exec::StreamPtr> HashAggregateExec::ExecuteImpl(int partition,
                                                   const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  SchemaPtr schema = schema_;
  const bool no_groups = group_exprs_.empty();

  std::vector<DataType> key_types;
  for (const auto& g : group_exprs_) key_types.push_back(g->type());

  auto make_state = [&]() -> Result<std::unique_ptr<GroupingState>> {
    auto state = std::make_unique<GroupingState>(key_types);
    for (const auto& agg : aggregates_) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      state->accumulators.push_back(std::move(acc));
    }
    return state;
  };
  FUSION_ASSIGN_OR_RAISE(auto state, make_state());

  std::string consumer = "agg-" + std::to_string(ctx->query_id) + "-" +
                         std::to_string(partition);
  exec::MemoryReservation reservation(ctx->env->memory_pool, consumer);
  std::vector<exec::SpillFilePtr> spill_files;
  auto spill_count = metrics_->Counter(exec::metric::kSpillCount, partition);
  auto spill_bytes = metrics_->Counter(exec::metric::kSpillBytes, partition);
  auto mem_reserved = metrics_->Gauge(exec::metric::kMemReservedBytes, partition);

  // Emit (group keys + per-aggregate output) for a state object. When
  // the column layout does not match schema_ (spill paths emit partial
  // state from a final-mode operator), an ad-hoc schema is built.
  auto emit = [&](GroupingState& s, bool partial_output)
      -> Result<std::vector<RecordBatchPtr>> {
    int64_t total = s.num_groups();
    if (total == 0 && no_groups) {
      // SQL: a global aggregate over empty input still yields one row.
      for (auto& acc : s.accumulators) acc->Resize(1);
      s.global_group = true;
      total = 1;
    }
    std::vector<ArrayPtr> key_columns;
    if (!no_groups) {
      FUSION_ASSIGN_OR_RAISE(key_columns, s.table.DecodeGroupKeys());
    }
    std::vector<ArrayPtr> agg_columns;
    for (size_t a = 0; a < s.accumulators.size(); ++a) {
      s.accumulators[a]->Resize(total);
      if (partial_output) {
        FUSION_ASSIGN_OR_RAISE(auto cols, s.accumulators[a]->PartialState());
        for (auto& c : cols) agg_columns.push_back(std::move(c));
      } else {
        FUSION_ASSIGN_OR_RAISE(auto col, s.accumulators[a]->Finish());
        agg_columns.push_back(std::move(col));
      }
    }
    std::vector<ArrayPtr> columns = std::move(key_columns);
    for (auto& c : agg_columns) columns.push_back(std::move(c));
    SchemaPtr out_schema = schema;
    if (static_cast<int>(columns.size()) != schema->num_fields()) {
      std::vector<Field> fields;
      for (size_t i = 0; i < columns.size(); ++i) {
        std::string field_name = i < group_names_.size()
                                     ? group_names_[i]
                                     : "__state_" + std::to_string(i);
        fields.emplace_back(std::move(field_name), columns[i]->type(), true);
      }
      out_schema = std::make_shared<Schema>(std::move(fields));
    }
    auto big = std::make_shared<RecordBatch>(out_schema, total, std::move(columns));
    return SliceBatch(big, ctx->config.batch_size);
  };

  auto spill = [&]() -> Status {
    // Serialize the current table as partial state and reset.
    for (const auto& agg : aggregates_) {
      if (!agg.function->supports_two_phase) {
        return Status::OutOfMemory(
            "aggregate '" + agg.function->name +
            "' cannot spill (no two-phase support); raise the memory limit");
      }
    }
    FUSION_ASSIGN_OR_RAISE(auto batches, emit(*state, /*partial_output=*/true));
    FUSION_ASSIGN_OR_RAISE(auto file, ctx->env->disk_manager->CreateTempFile("agg"));
    // Charge the run against the spill quota before writing so a full
    // disk surfaces as ResourcesExhausted rather than a short write.
    int64_t run_bytes = 0;
    for (const auto& b : batches) run_bytes += b->TotalBufferSize();
    FUSION_RETURN_NOT_OK(file->Reserve(run_bytes));
    // Spilled partial batches use the *partial* schema, which differs
    // from schema_ in final mode; serialize schemaless via IPC columns.
    ipc::FileWriter writer(file->path());
    FUSION_RETURN_NOT_OK(writer.Open());
    for (const auto& b : batches) {
      FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
    }
    FUSION_RETURN_NOT_OK(writer.Close());
    spill_files.push_back(std::move(file));
    spills_.fetch_add(1);
    spill_count->Add(1);
    for (const auto& b : batches) spill_bytes->Add(b->TotalBufferSize());
    FUSION_ASSIGN_OR_RAISE(state, make_state());
    return reservation.ResizeTo(0);
  };

  // Process one input batch into the grouping state. The same path
  // serves direct input (`from_partial` false), partial-state input in
  // final mode, and the spill-merge pass (which supplies its own
  // state-column `layout`). Scratch vectors persist across batches so
  // the per-batch work is hash + MapBatch with no allocation churn.
  std::vector<uint32_t> group_ids;
  std::vector<uint64_t> hashes;
  auto process = [&](GroupingState& s, const RecordBatch& batch,
                     bool from_partial,
                     const std::vector<AggregateInfo>& layout) -> Status {
    const int64_t n = batch.num_rows();
    if (no_groups) {
      group_ids.assign(static_cast<size_t>(n), 0);
      s.global_group = true;
    } else {
      std::vector<ArrayPtr> keys;
      if (from_partial) {
        // Key columns are the leading input columns.
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          keys.push_back(batch.column(static_cast<int>(g)));
        }
      } else {
        FUSION_ASSIGN_OR_RAISE(keys, EvaluateToArrays(group_exprs_, batch));
      }
      FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
      FUSION_RETURN_NOT_OK(s.table.MapBatch(keys, hashes, &group_ids));
    }
    const int64_t num_groups = s.num_groups();
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      s.accumulators[a]->Resize(num_groups);
      if (from_partial) {
        std::vector<ArrayPtr> state_cols;
        for (int idx : layout[a].state_columns) {
          state_cols.push_back(batch.column(idx));
        }
        FUSION_RETURN_NOT_OK(
            s.accumulators[a]->UpdateFromPartial(state_cols, group_ids));
      } else {
        const AggregateInfo& agg = layout[a];
        FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(agg.args, batch));
        FUSION_ASSIGN_OR_RAISE(auto filter_mask,
                               EvaluateFilterMask(agg.filter, batch));
        FUSION_RETURN_NOT_OK(s.accumulators[a]->Update(
            args, group_ids, filter_mask.empty() ? nullptr : filter_mask.data()));
      }
    }
    return Status::OK();
  };

  const bool input_is_partial = mode_ == AggregateMode::kFinal;
  int64_t batches_since_check = 0;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    FUSION_RETURN_NOT_OK(process(*state, *batch, input_is_partial, aggregates_));
    // SizeBytes walks per-group state; amortize by checking periodically
    // (this is what the paper means by tracking "the largest memory
    // consumers ... but not small ephemeral allocations", §5.5.4).
    if (++batches_since_check >= 16) {
      batches_since_check = 0;
      Status grow = reservation.ResizeTo(state->SizeBytes());
      if (!grow.ok()) {
        if (!grow.IsOutOfMemory()) return grow;
        FUSION_RETURN_NOT_OK(spill());
      }
      mem_reserved->SetMax(reservation.held());
    }
  }

  if (!spill_files.empty()) {
    // Re-aggregate the spilled partial runs together with the in-memory
    // remainder. Group cardinality after partial aggregation is normally
    // far below the input cardinality, so this pass fits in memory.
    FUSION_ASSIGN_OR_RAISE(auto mem_batches, emit(*state, /*partial_output=*/true));
    FUSION_ASSIGN_OR_RAISE(state, make_state());
    // Final-style merge needs state column indexing; compute it from the
    // partial layout: keys first, then each aggregate's state columns.
    std::vector<AggregateInfo> partial_layout = aggregates_;
    int col = static_cast<int>(group_exprs_.size());
    for (auto& agg : partial_layout) {
      agg.state_columns.clear();
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      for (size_t i = 0; i < acc->PartialTypes().size(); ++i) {
        agg.state_columns.push_back(col++);
      }
    }
    for (const auto& b : mem_batches) {
      // Partial batches from emit() carry schema_, but their layout is
      // the partial layout; re-wrap is unnecessary because the merge
      // indexes columns positionally.
      FUSION_RETURN_NOT_OK(process(*state, *b, /*from_partial=*/true,
                                   partial_layout));
    }
    for (const auto& file : spill_files) {
      ipc::FileReader reader(file->path());
      FUSION_RETURN_NOT_OK(reader.Open());
      for (;;) {
        FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
        if (batch == nullptr) break;
        FUSION_RETURN_NOT_OK(process(*state, *batch, /*from_partial=*/true,
                                     partial_layout));
      }
    }
  }

  const bool partial_output = mode_ == AggregateMode::kPartial && spill_files.empty();
  // If we spilled in partial mode, the merged state is already final-
  // grade partial state; emitting partial is still correct.
  FUSION_ASSIGN_OR_RAISE(auto out_batches,
                         emit(*state, mode_ == AggregateMode::kPartial));
  (void)partial_output;
  return exec::StreamPtr(
      std::make_unique<exec::VectorStream>(schema, std::move(out_batches)));
}

std::string StreamingAggregateExec::ToStringLine() const {
  std::string out = "StreamingAggregateExec(";
  out += mode_ == AggregateMode::kPartial ? "partial" : "single";
  out += "): groups=[";
  for (size_t i = 0; i < group_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_names_[i];
  }
  out += "]";
  return out;
}

Result<exec::StreamPtr> StreamingAggregateExec::ExecuteImpl(int partition,
                                                        const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input_stream, input_->Execute(partition, ctx));
  auto input = std::shared_ptr<exec::RecordBatchStream>(std::move(input_stream));
  SchemaPtr schema = schema_;
  const bool partial = mode_ == AggregateMode::kPartial;
  auto group_exprs = group_exprs_;
  auto aggregates = aggregates_;
  int64_t batch_size = ctx->config.batch_size;

  // Shared mutable stream state.
  struct State {
    // The in-flight group: one accumulator set sized for a single group,
    // plus the builders the finished groups are appended to.
    bool has_current = false;
    std::vector<ArrayPtr> current_key_arrays;  // single-row key snapshot
    std::vector<std::unique_ptr<logical::GroupedAccumulator>> accumulators;
    std::vector<std::unique_ptr<ArrayBuilder>> out_builders;
    int64_t pending_groups = 0;
    bool done = false;
  };
  auto state = std::make_shared<State>();

  auto make_accumulators = [aggregates]() -> Result<
      std::vector<std::unique_ptr<logical::GroupedAccumulator>>> {
    std::vector<std::unique_ptr<logical::GroupedAccumulator>> out;
    for (const auto& agg : aggregates) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      acc->Resize(1);
      out.push_back(std::move(acc));
    }
    return out;
  };
  auto make_builders = [schema]() -> Result<
      std::vector<std::unique_ptr<ArrayBuilder>>> {
    std::vector<std::unique_ptr<ArrayBuilder>> out;
    for (const Field& f : schema->fields()) {
      FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(f.type()));
      out.push_back(std::move(b));
    }
    return out;
  };

  FUSION_ASSIGN_OR_RAISE(state->out_builders, make_builders());

  // Close the in-flight group: append its key + results to the output
  // builders.
  auto flush_current = [state, partial]() -> Status {
    if (!state->has_current) return Status::OK();
    size_t col = 0;
    for (const auto& key : state->current_key_arrays) {
      state->out_builders[col++]->AppendFrom(*key, 0);
    }
    for (auto& acc : state->accumulators) {
      if (partial) {
        FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
        for (const auto& c : cols) {
          state->out_builders[col++]->AppendFrom(*c, 0);
        }
      } else {
        FUSION_ASSIGN_OR_RAISE(auto c, acc->Finish());
        state->out_builders[col++]->AppendFrom(*c, 0);
      }
    }
    state->has_current = false;
    state->accumulators.clear();
    ++state->pending_groups;
    return Status::OK();
  };

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [=]() mutable -> Result<RecordBatchPtr> {
        auto emit_pending = [&]() -> Result<RecordBatchPtr> {
          std::vector<ArrayPtr> columns;
          for (auto& b : state->out_builders) {
            FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
            columns.push_back(std::move(arr));
          }
          int64_t rows = state->pending_groups;
          state->pending_groups = 0;
          FUSION_ASSIGN_OR_RAISE(state->out_builders, make_builders());
          return std::make_shared<RecordBatch>(schema, rows, std::move(columns));
        };
        for (;;) {
          if (state->done) {
            if (state->pending_groups > 0) return emit_pending();
            return RecordBatchPtr(nullptr);
          }
          FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
          if (batch == nullptr) {
            state->done = true;
            FUSION_RETURN_NOT_OK(flush_current());
            continue;
          }
          if (batch->num_rows() == 0) continue;
          FUSION_ASSIGN_OR_RAISE(auto keys, EvaluateToArrays(group_exprs, *batch));
          std::vector<std::vector<ArrayPtr>> agg_args(aggregates.size());
          std::vector<std::vector<uint8_t>> filter_masks(aggregates.size());
          for (size_t a = 0; a < aggregates.size(); ++a) {
            FUSION_ASSIGN_OR_RAISE(agg_args[a],
                                   EvaluateToArrays(aggregates[a].args, *batch));
            FUSION_ASSIGN_OR_RAISE(filter_masks[a],
                                   EvaluateFilterMask(aggregates[a].filter, *batch));
          }
          const int64_t n = batch->num_rows();
          auto same_key = [&](int64_t row, const std::vector<ArrayPtr>& other,
                              int64_t other_row) {
            for (size_t k = 0; k < keys.size(); ++k) {
              if (!ArrayElementsEqual(*keys[k], row, *other[k], other_row)) {
                return false;
              }
            }
            return true;
          };
          // Walk key runs within the batch.
          int64_t start = 0;
          while (start < n) {
            int64_t end = start + 1;
            while (end < n && same_key(end, keys, start)) ++end;
            const bool continues =
                state->has_current && same_key(start, state->current_key_arrays, 0);
            if (!continues) {
              FUSION_RETURN_NOT_OK(flush_current());
              FUSION_ASSIGN_OR_RAISE(state->accumulators, make_accumulators());
              state->current_key_arrays.clear();
              for (const auto& k : keys) {
                FUSION_ASSIGN_OR_RAISE(auto one, compute::Take(*k, {start}));
                state->current_key_arrays.push_back(std::move(one));
              }
              state->has_current = true;
            }
            // Feed the run's rows into the single-group accumulators.
            std::vector<uint32_t> zeros(static_cast<size_t>(end - start), 0);
            for (size_t a = 0; a < aggregates.size(); ++a) {
              std::vector<ArrayPtr> sliced;
              for (const auto& arg : agg_args[a]) {
                sliced.push_back(arg->Slice(start, end - start));
              }
              std::vector<uint8_t> mask;
              if (!filter_masks[a].empty()) {
                mask.assign(filter_masks[a].begin() + start,
                            filter_masks[a].begin() + end);
              }
              FUSION_RETURN_NOT_OK(state->accumulators[a]->Update(
                  sliced, zeros, mask.empty() ? nullptr : mask.data()));
            }
            start = end;
          }
          if (state->pending_groups >= batch_size) return emit_pending();
        }
      }));
}

}  // namespace physical
}  // namespace fusion
