#include "physical/aggregate_exec.h"

#include <cstdlib>
#include <numeric>

#include "arrow/builder.h"
#include "arrow/ipc.h"
#include "compute/cast.h"
#include "compute/group_table.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"
#include "exec/memory_pool.h"

namespace fusion {
namespace physical {

namespace {

using logical::GroupedAccumulator;

/// In-memory grouping state: the vectorized group table (key -> dense
/// group id, keys arena-allocated) plus one accumulator per aggregate
/// covering all groups.
struct GroupingState {
  compute::GroupTable table;
  /// Global (no GROUP BY) aggregates bypass the table: one implicit
  /// group that exists once input has been seen.
  bool global_group = false;
  std::vector<std::unique_ptr<GroupedAccumulator>> accumulators;

  explicit GroupingState(std::vector<DataType> key_types)
      : table(std::move(key_types)) {}

  int64_t num_groups() const {
    if (table.key_types().empty()) return global_group ? 1 : 0;
    return table.num_groups();
  }

  int64_t SizeBytes() const {
    int64_t total = table.SizeBytes();
    for (const auto& acc : accumulators) total += acc->SizeBytes();
    return total;
  }
};

Result<std::vector<uint8_t>> EvaluateFilterMask(const PhysicalExprPtr& filter,
                                                const RecordBatch& batch) {
  std::vector<uint8_t> mask;
  if (filter == nullptr) return mask;
  FUSION_ASSIGN_OR_RAISE(auto arr, EvaluatePredicateMask(*filter, batch));
  const auto& bm = checked_cast<BooleanArray>(*arr);
  mask.resize(static_cast<size_t>(batch.num_rows()), 0);
  for (int64_t i = 0; i < batch.num_rows(); ++i) {
    mask[i] = bm.IsValid(i) && bm.Value(i) ? 1 : 0;
  }
  return mask;
}

}  // namespace

std::string HashAggregateExec::ToStringLine() const {
  std::string mode;
  switch (mode_) {
    case AggregateMode::kPartial: mode = "partial"; break;
    case AggregateMode::kFinal: mode = "final"; break;
    case AggregateMode::kSingle: mode = "single"; break;
  }
  std::string out = "HashAggregateExec(" + mode + "): groups=[";
  for (size_t i = 0; i < group_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_names_[i];
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].output_name;
  }
  out += "]";
  return out;
}

Result<exec::StreamPtr> HashAggregateExec::ExecuteImpl(int partition,
                                                   const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(partition, ctx));
  SchemaPtr schema = schema_;
  const bool no_groups = group_exprs_.empty();

  std::vector<DataType> key_types;
  for (const auto& g : group_exprs_) key_types.push_back(g->type());

  auto make_state = [&]() -> Result<std::unique_ptr<GroupingState>> {
    auto state = std::make_unique<GroupingState>(key_types);
    for (const auto& agg : aggregates_) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      state->accumulators.push_back(std::move(acc));
    }
    return state;
  };
  FUSION_ASSIGN_OR_RAISE(auto state, make_state());

  std::string consumer = "agg-" + std::to_string(ctx->query_id) + "-" +
                         std::to_string(partition);
  exec::MemoryReservation reservation(ctx->env->memory_pool, consumer);
  std::vector<exec::SpillFilePtr> spill_files;
  auto spill_count = metrics_->Counter(exec::metric::kSpillCount, partition);
  auto spill_bytes = metrics_->Counter(exec::metric::kSpillBytes, partition);
  auto mem_reserved = metrics_->Gauge(exec::metric::kMemReservedBytes, partition);

  // Emit (group keys + per-aggregate output) for a state object. When
  // the column layout does not match schema_ (spill paths emit partial
  // state from a final-mode operator), an ad-hoc schema is built.
  auto emit = [&](GroupingState& s, bool partial_output)
      -> Result<std::vector<RecordBatchPtr>> {
    int64_t total = s.num_groups();
    if (total == 0 && no_groups) {
      // SQL: a global aggregate over empty input still yields one row.
      for (auto& acc : s.accumulators) acc->Resize(1);
      s.global_group = true;
      total = 1;
    }
    std::vector<ArrayPtr> key_columns;
    if (!no_groups) {
      FUSION_ASSIGN_OR_RAISE(key_columns, s.table.DecodeGroupKeys());
    }
    std::vector<ArrayPtr> agg_columns;
    for (size_t a = 0; a < s.accumulators.size(); ++a) {
      s.accumulators[a]->Resize(total);
      if (partial_output) {
        FUSION_ASSIGN_OR_RAISE(auto cols, s.accumulators[a]->PartialState());
        for (auto& c : cols) agg_columns.push_back(std::move(c));
      } else {
        FUSION_ASSIGN_OR_RAISE(auto col, s.accumulators[a]->Finish());
        agg_columns.push_back(std::move(col));
      }
    }
    std::vector<ArrayPtr> columns = std::move(key_columns);
    for (auto& c : agg_columns) columns.push_back(std::move(c));
    SchemaPtr out_schema = schema;
    if (static_cast<int>(columns.size()) != schema->num_fields()) {
      std::vector<Field> fields;
      for (size_t i = 0; i < columns.size(); ++i) {
        std::string field_name = i < group_names_.size()
                                     ? group_names_[i]
                                     : "__state_" + std::to_string(i);
        fields.emplace_back(std::move(field_name), columns[i]->type(), true);
      }
      out_schema = std::make_shared<Schema>(std::move(fields));
    }
    auto big = std::make_shared<RecordBatch>(out_schema, total, std::move(columns));
    return SliceBatch(big, ctx->config.batch_size);
  };

  auto spill = [&]() -> Status {
    // Serialize the current table as partial state and reset.
    for (const auto& agg : aggregates_) {
      if (!agg.function->supports_two_phase) {
        return Status::OutOfMemory(
            "aggregate '" + agg.function->name +
            "' cannot spill (no two-phase support); raise the memory limit");
      }
    }
    FUSION_ASSIGN_OR_RAISE(auto batches, emit(*state, /*partial_output=*/true));
    FUSION_ASSIGN_OR_RAISE(auto file, ctx->env->disk_manager->CreateTempFile("agg"));
    // Charge the run against the spill quota before writing so a full
    // disk surfaces as ResourcesExhausted rather than a short write.
    int64_t run_bytes = 0;
    for (const auto& b : batches) run_bytes += b->TotalBufferSize();
    FUSION_RETURN_NOT_OK(file->Reserve(run_bytes));
    // Spilled partial batches use the *partial* schema, which differs
    // from schema_ in final mode; serialize schemaless via IPC columns.
    ipc::FileWriter writer(file->path());
    FUSION_RETURN_NOT_OK(writer.Open());
    for (const auto& b : batches) {
      FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
    }
    FUSION_RETURN_NOT_OK(writer.Close());
    spill_files.push_back(std::move(file));
    spills_.fetch_add(1);
    spill_count->Add(1);
    for (const auto& b : batches) spill_bytes->Add(b->TotalBufferSize());
    FUSION_ASSIGN_OR_RAISE(state, make_state());
    return reservation.ResizeTo(0);
  };

  // Process one input batch into the grouping state. The same path
  // serves direct input (`from_partial` false), partial-state input in
  // final mode, and the spill-merge pass (which supplies its own
  // state-column `layout`). Scratch vectors persist across batches so
  // the per-batch work is hash + MapBatch with no allocation churn.
  std::vector<uint32_t> group_ids;
  std::vector<uint64_t> hashes;
  auto process = [&](GroupingState& s, const RecordBatch& batch,
                     bool from_partial,
                     const std::vector<AggregateInfo>& layout) -> Status {
    const int64_t n = batch.num_rows();
    if (no_groups) {
      group_ids.assign(static_cast<size_t>(n), 0);
      s.global_group = true;
    } else {
      std::vector<ArrayPtr> keys;
      if (from_partial) {
        // Key columns are the leading input columns.
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          keys.push_back(batch.column(static_cast<int>(g)));
        }
      } else {
        FUSION_ASSIGN_OR_RAISE(keys, EvaluateToArrays(group_exprs_, batch));
      }
      FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
      FUSION_RETURN_NOT_OK(s.table.MapBatch(keys, hashes, &group_ids));
    }
    const int64_t num_groups = s.num_groups();
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      s.accumulators[a]->Resize(num_groups);
      if (from_partial) {
        std::vector<ArrayPtr> state_cols;
        for (int idx : layout[a].state_columns) {
          state_cols.push_back(batch.column(idx));
        }
        FUSION_RETURN_NOT_OK(
            s.accumulators[a]->UpdateFromPartial(state_cols, group_ids));
      } else {
        const AggregateInfo& agg = layout[a];
        FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(agg.args, batch));
        FUSION_ASSIGN_OR_RAISE(auto filter_mask,
                               EvaluateFilterMask(agg.filter, batch));
        FUSION_RETURN_NOT_OK(s.accumulators[a]->Update(
            args, group_ids, filter_mask.empty() ? nullptr : filter_mask.data()));
      }
    }
    return Status::OK();
  };

  const bool input_is_partial = mode_ == AggregateMode::kFinal;
  int64_t batches_since_check = 0;
  for (;;) {
    FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    FUSION_RETURN_NOT_OK(process(*state, *batch, input_is_partial, aggregates_));
    // SizeBytes walks per-group state; amortize by checking periodically
    // (this is what the paper means by tracking "the largest memory
    // consumers ... but not small ephemeral allocations", §5.5.4).
    if (++batches_since_check >= 16) {
      batches_since_check = 0;
      Status grow = reservation.ResizeTo(state->SizeBytes());
      if (!grow.ok()) {
        if (!grow.IsOutOfMemory()) return grow;
        FUSION_RETURN_NOT_OK(spill());
      }
      mem_reserved->SetMax(reservation.held());
    }
  }

  if (!spill_files.empty()) {
    // Re-aggregate the spilled partial runs together with the in-memory
    // remainder. Group cardinality after partial aggregation is normally
    // far below the input cardinality, so this pass fits in memory.
    FUSION_ASSIGN_OR_RAISE(auto mem_batches, emit(*state, /*partial_output=*/true));
    FUSION_ASSIGN_OR_RAISE(state, make_state());
    // Final-style merge needs state column indexing; compute it from the
    // partial layout: keys first, then each aggregate's state columns.
    std::vector<AggregateInfo> partial_layout = aggregates_;
    int col = static_cast<int>(group_exprs_.size());
    for (auto& agg : partial_layout) {
      agg.state_columns.clear();
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      for (size_t i = 0; i < acc->PartialTypes().size(); ++i) {
        agg.state_columns.push_back(col++);
      }
    }
    for (const auto& b : mem_batches) {
      // Partial batches from emit() carry schema_, but their layout is
      // the partial layout; re-wrap is unnecessary because the merge
      // indexes columns positionally.
      FUSION_RETURN_NOT_OK(process(*state, *b, /*from_partial=*/true,
                                   partial_layout));
    }
    for (const auto& file : spill_files) {
      ipc::FileReader reader(file->path());
      FUSION_RETURN_NOT_OK(reader.Open());
      for (;;) {
        FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
        if (batch == nullptr) break;
        FUSION_RETURN_NOT_OK(process(*state, *batch, /*from_partial=*/true,
                                     partial_layout));
      }
    }
  }

  const bool partial_output = mode_ == AggregateMode::kPartial && spill_files.empty();
  // If we spilled in partial mode, the merged state is already final-
  // grade partial state; emitting partial is still correct.
  FUSION_ASSIGN_OR_RAISE(auto out_batches,
                         emit(*state, mode_ == AggregateMode::kPartial));
  (void)partial_output;
  return exec::StreamPtr(
      std::make_unique<exec::VectorStream>(schema, std::move(out_batches)));
}

namespace {

/// How the adaptive bypass is decided: from observed cardinality (auto),
/// never (off), or from the first row (force; tests).
enum class BypassMode { kAuto, kOff, kForce };

BypassMode BypassModeFromEnv() {
  const char* env = std::getenv("FUSION_AGG_BYPASS");
  if (env == nullptr) return BypassMode::kAuto;
  if (std::string_view(env) == "off") return BypassMode::kOff;
  if (std::string_view(env) == "force") return BypassMode::kForce;
  return BypassMode::kAuto;
}

}  // namespace

/// Phase-1 result shared by all merge partitions.
struct PartitionedAggregateExec::BuildState {
  /// One pre-aggregation task's output.
  struct Partial {
    /// The task's thread-local group table (keys + stored hashes).
    std::unique_ptr<compute::GroupTable> table;
    /// Per-aggregate serialized partial state, row g = group g.
    std::vector<std::vector<ArrayPtr>> state_arrays;
    /// Group ids routed to each radix bucket (bucket_groups[p] feeds
    /// merge partition p).
    std::vector<std::vector<uint32_t>> bucket_groups;
    /// Bypassed rows as per-row partial-state batches, pre-split by
    /// radix bucket.
    std::vector<std::vector<RecordBatchPtr>> bypass_batches;
    /// Held until the merge phase has consumed this task's state.
    std::unique_ptr<exec::MemoryReservation> reservation;
  };

  std::vector<Partial> partials;
  /// Partial-layout batches spilled under memory pressure; buckets are
  /// mixed, so every merge partition filters them by hash.
  std::vector<exec::SpillFilePtr> spill_files;
  std::mutex spill_mu;

  std::vector<DataType> key_types;
  /// Layout of partial-state batches: keys first, then each aggregate's
  /// state columns (used for bypass and spilled batches).
  std::vector<AggregateInfo> partial_layout;
  SchemaPtr partial_schema;

  /// Cooperative-build coordination: every merge driver claims input
  /// partitions from next_input and bumps inputs_done after each one
  /// (claimed-but-skipped on failure still counts, so inputs_done always
  /// reaches num_inputs). The first error wins; later claims drain as
  /// no-ops.
  int num_inputs = 0;
  std::atomic<int> next_input{0};
  std::atomic<int> inputs_done{0};
  std::atomic<bool> build_failed{false};
  std::mutex error_mu;
  Status build_error;
};

std::string PartitionedAggregateExec::ToStringLine() const {
  std::string out = "PartitionedAggregateExec: groups=[";
  for (size_t i = 0; i < group_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_names_[i];
  }
  out += "] aggs=[";
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates_[i].output_name;
  }
  out += "]";
  return out;
}

Status PartitionedAggregateExec::EnsureBuilt(const ExecContextPtr& ctx) {
  std::shared_ptr<BuildState> bs;
  {
    // The mutex guards only the (cheap) one-time state setup and the
    // final publication — never held across input execution, so a driver
    // re-entering here on a lent scheduler thread cannot self-deadlock.
    std::lock_guard<std::mutex> lock(build_mu_);
    if (built_) return build_status_;
    if (build_state_ == nullptr) {
      auto init = [&]() -> Status {
        auto state = std::make_shared<BuildState>();
        for (const auto& g : group_exprs_) state->key_types.push_back(g->type());

        // Partial-state layout/schema shared by bypass and spilled batches.
        std::vector<Field> partial_fields;
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          partial_fields.emplace_back(group_names_[g], group_exprs_[g]->type(),
                                      true);
        }
        state->partial_layout = aggregates_;
        int state_col = static_cast<int>(group_exprs_.size());
        for (auto& agg : state->partial_layout) {
          FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
          agg.state_columns.clear();
          for (DataType t : acc->PartialTypes()) {
            partial_fields.emplace_back("__state_" + std::to_string(state_col), t,
                                        true);
            agg.state_columns.push_back(state_col++);
          }
        }
        state->partial_schema = std::make_shared<Schema>(std::move(partial_fields));
        state->num_inputs = input_->output_partitions();
        state->partials.resize(static_cast<size_t>(state->num_inputs));
        build_state_ = std::move(state);
        return Status::OK();
      };
      Status init_status = init();
      if (!init_status.ok()) {
        built_ = true;
        build_status_ = init_status;
        return build_status_;
      }
    }
    bs = build_state_;
  }

  const uint32_t buckets = static_cast<uint32_t>(num_partitions_);
  const BypassMode mode = BypassModeFromEnv();
  const double bypass_ratio = ctx->config.agg_bypass_ratio;
  const int64_t probe_rows = ctx->config.agg_bypass_probe_rows;

  auto build_one = [&, bs](int p) -> Status {
    BuildState::Partial& out = bs->partials[p];
    auto partial_groups = metrics_->Counter(exec::metric::kPartialGroups, p);
    auto bypass_rows = metrics_->Counter(exec::metric::kBypassRows, p);
    auto spill_count = metrics_->Counter(exec::metric::kSpillCount, p);
    auto spill_bytes = metrics_->Counter(exec::metric::kSpillBytes, p);
    auto mem_reserved = metrics_->Gauge(exec::metric::kMemReservedBytes, p);

    out.table = std::make_unique<compute::GroupTable>(bs->key_types);
    out.bypass_batches.assign(buckets, {});
    out.reservation = std::make_unique<exec::MemoryReservation>(
        ctx->env->memory_pool, "aggpart-" + std::to_string(ctx->query_id) +
                                   "-build-" + std::to_string(p));
    std::vector<std::unique_ptr<GroupedAccumulator>> accumulators;
    for (const auto& agg : aggregates_) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      accumulators.push_back(std::move(acc));
    }

    // Serialize the table + accumulators as partial-layout batches.
    auto emit_partial = [&]() -> Result<std::vector<RecordBatchPtr>> {
      const int64_t total = out.table->num_groups();
      FUSION_ASSIGN_OR_RAISE(auto columns, out.table->DecodeGroupKeys());
      for (auto& acc : accumulators) {
        acc->Resize(total);
        FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
        for (auto& c : cols) columns.push_back(std::move(c));
      }
      auto big = std::make_shared<RecordBatch>(bs->partial_schema, total,
                                               std::move(columns));
      return SliceBatch(big, ctx->config.batch_size);
    };

    auto write_spill = [&](const std::vector<RecordBatchPtr>& batches) -> Status {
      for (const auto& agg : aggregates_) {
        if (!agg.function->supports_two_phase) {
          return Status::OutOfMemory(
              "aggregate '" + agg.function->name +
              "' cannot spill (no two-phase support); raise the memory limit");
        }
      }
      FUSION_ASSIGN_OR_RAISE(auto file,
                             ctx->env->disk_manager->CreateTempFile("agg"));
      int64_t run_bytes = 0;
      for (const auto& b : batches) run_bytes += b->TotalBufferSize();
      FUSION_RETURN_NOT_OK(file->Reserve(run_bytes));
      ipc::FileWriter writer(file->path());
      FUSION_RETURN_NOT_OK(writer.Open());
      for (const auto& b : batches) {
        FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
      }
      FUSION_RETURN_NOT_OK(writer.Close());
      {
        std::lock_guard<std::mutex> spill_lock(bs->spill_mu);
        bs->spill_files.push_back(std::move(file));
      }
      spills_.fetch_add(1);
      spill_count->Add(1);
      spill_bytes->Add(run_bytes);
      return Status::OK();
    };

    FUSION_ASSIGN_OR_RAISE(auto input, input_->Execute(p, ctx));
    std::vector<uint64_t> hashes;
    std::vector<uint32_t> group_ids;
    bool bypass = mode == BypassMode::kForce;
    bool decided = mode != BypassMode::kAuto;
    int64_t rows_seen = 0;
    int64_t buffered_bytes = 0;
    int64_t batches_since_check = 0;
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
      if (batch == nullptr) break;
      const int64_t n = batch->num_rows();
      if (n == 0) continue;
      FUSION_ASSIGN_OR_RAISE(auto keys, EvaluateToArrays(group_exprs_, *batch));
      if (!bypass) {
        FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
        FUSION_RETURN_NOT_OK(out.table->MapBatch(keys, hashes, &group_ids));
        const int64_t num_groups = out.table->num_groups();
        for (size_t a = 0; a < aggregates_.size(); ++a) {
          const AggregateInfo& agg = aggregates_[a];
          accumulators[a]->Resize(num_groups);
          FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(agg.args, *batch));
          FUSION_ASSIGN_OR_RAISE(auto mask, EvaluateFilterMask(agg.filter, *batch));
          FUSION_RETURN_NOT_OK(accumulators[a]->Update(
              args, group_ids, mask.empty() ? nullptr : mask.data()));
        }
        rows_seen += n;
        if (!decided && rows_seen >= probe_rows) {
          decided = true;
          // Pre-aggregation is only worth its probes if it collapses
          // rows; at >= ratio groups per row it degrades to passthrough.
          bypass = static_cast<double>(num_groups) >=
                   bypass_ratio * static_cast<double>(rows_seen);
        }
        if (++batches_since_check >= 16) {
          batches_since_check = 0;
          int64_t held = out.table->SizeBytes() + buffered_bytes;
          for (const auto& acc : accumulators) held += acc->SizeBytes();
          Status grow = out.reservation->ResizeTo(held);
          if (!grow.ok()) {
            if (!grow.IsOutOfMemory()) return grow;
            FUSION_ASSIGN_OR_RAISE(auto partial_batches, emit_partial());
            FUSION_RETURN_NOT_OK(write_spill(partial_batches));
            out.table = std::make_unique<compute::GroupTable>(bs->key_types);
            accumulators.clear();
            for (const auto& agg : aggregates_) {
              FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
              accumulators.push_back(std::move(acc));
            }
            FUSION_RETURN_NOT_OK(out.reservation->ResizeTo(buffered_bytes));
          }
          mem_reserved->SetMax(out.reservation->held());
        }
        continue;
      }

      // Bypass: every row becomes its own group of one; serialize the
      // per-row partial state and radix-split by key hash so the merge
      // phase can route rows without a repartition exchange.
      bypass_rows->Add(n);
      FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
      std::vector<ArrayPtr> columns = keys;
      std::vector<uint32_t> iota(static_cast<size_t>(n));
      std::iota(iota.begin(), iota.end(), 0);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        const AggregateInfo& agg = aggregates_[a];
        FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
        acc->Resize(n);
        FUSION_ASSIGN_OR_RAISE(auto args, EvaluateToArrays(agg.args, *batch));
        FUSION_ASSIGN_OR_RAISE(auto mask, EvaluateFilterMask(agg.filter, *batch));
        FUSION_RETURN_NOT_OK(
            acc->Update(args, iota, mask.empty() ? nullptr : mask.data()));
        FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
        for (auto& c : cols) columns.push_back(std::move(c));
      }
      std::vector<std::vector<int64_t>> bucket_rows(buckets);
      for (int64_t r = 0; r < n; ++r) {
        bucket_rows[compute::GroupTable::RadixBucket(hashes[r], buckets)]
            .push_back(r);
      }
      for (uint32_t b = 0; b < buckets; ++b) {
        if (bucket_rows[b].empty()) continue;
        std::vector<ArrayPtr> taken;
        taken.reserve(columns.size());
        for (const auto& c : columns) {
          FUSION_ASSIGN_OR_RAISE(auto t, compute::Take(*c, bucket_rows[b]));
          taken.push_back(std::move(t));
        }
        auto out_batch = std::make_shared<RecordBatch>(
            bs->partial_schema, static_cast<int64_t>(bucket_rows[b].size()),
            std::move(taken));
        buffered_bytes += out_batch->TotalBufferSize();
        out.bypass_batches[b].push_back(std::move(out_batch));
      }
      if (++batches_since_check >= 16) {
        batches_since_check = 0;
        int64_t held = out.table->SizeBytes() + buffered_bytes;
        for (const auto& acc : accumulators) held += acc->SizeBytes();
        Status grow = out.reservation->ResizeTo(held);
        if (!grow.ok()) {
          if (!grow.IsOutOfMemory()) return grow;
          // Flush the buffered passthrough batches; the merge phase
          // re-routes spilled rows by recomputing their hashes.
          std::vector<RecordBatchPtr> flush;
          for (auto& bucket : out.bypass_batches) {
            for (auto& fb : bucket) flush.push_back(std::move(fb));
            bucket.clear();
          }
          FUSION_RETURN_NOT_OK(write_spill(flush));
          buffered_bytes = 0;
          int64_t held_now = out.table->SizeBytes();
          for (const auto& acc : accumulators) held_now += acc->SizeBytes();
          FUSION_RETURN_NOT_OK(out.reservation->ResizeTo(held_now));
        }
        mem_reserved->SetMax(out.reservation->held());
      }
    }

    // Seal the table: serialize accumulator state once and route each
    // group to its radix bucket by the stored hash.
    const int64_t num_groups = out.table->num_groups();
    partial_groups->Add(num_groups);
    for (auto& acc : accumulators) {
      acc->Resize(num_groups);
      FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
      out.state_arrays.push_back(std::move(cols));
    }
    out.bucket_groups.assign(buckets, {});
    for (uint32_t g = 0; g < static_cast<uint32_t>(num_groups); ++g) {
      out.bucket_groups[compute::GroupTable::RadixBucket(
                            out.table->group_hash(g), buckets)]
          .push_back(g);
    }
    return Status::OK();
  };

  // Participate: claim and pre-aggregate input partitions until none
  // remain unclaimed. After the first failure, later claims drain as
  // no-ops so inputs_done still reaches num_inputs.
  const exec::TaskGroupPtr& group = ctx->EnsureTaskGroup();
  for (;;) {
    const int p = bs->next_input.fetch_add(1, std::memory_order_relaxed);
    if (p >= bs->num_inputs) break;
    if (!bs->build_failed.load(std::memory_order_acquire)) {
      Status st = build_one(p);
      if (!st.ok()) {
        std::lock_guard<std::mutex> elock(bs->error_mu);
        if (bs->build_error.ok()) bs->build_error = st;
        bs->build_failed.store(true, std::memory_order_release);
      }
    }
    bs->inputs_done.fetch_add(1, std::memory_order_acq_rel);
    group->NotifyProgress();
  }

  // Wait for claims still in flight on other drivers, lending this
  // thread to the query's other ready tasks meanwhile. Epoch protocol:
  // snapshot the epoch, re-check the condition, then help-or-park —
  // NotifyProgress() after the last inputs_done bump invalidates any
  // stale epoch, so no wakeup is lost.
  while (bs->inputs_done.load(std::memory_order_acquire) < bs->num_inputs) {
    FUSION_RETURN_NOT_OK(ctx->CheckCancelled());
    const uint64_t epoch = group->progress_epoch();
    if (bs->inputs_done.load(std::memory_order_acquire) >= bs->num_inputs) break;
    group->HelpOrWait(epoch, ctx->cancel.get());
  }

  std::lock_guard<std::mutex> lock(build_mu_);
  if (!built_) {
    built_ = true;
    std::lock_guard<std::mutex> elock(bs->error_mu);
    build_status_ = bs->build_error;
  }
  return build_status_;
}

Result<exec::StreamPtr> PartitionedAggregateExec::ExecuteImpl(
    int partition, const ExecContextPtr& ctx) {
  if (group_exprs_.empty()) {
    return Status::Internal("PartitionedAggregateExec requires group keys");
  }
  FUSION_RETURN_NOT_OK(EnsureBuilt(ctx));
  auto bs = build_state_;
  const uint32_t buckets = static_cast<uint32_t>(num_partitions_);

  compute::GroupTable table(bs->key_types);
  std::vector<std::unique_ptr<GroupedAccumulator>> accumulators;
  auto reset_accumulators = [&]() -> Status {
    accumulators.clear();
    for (const auto& agg : aggregates_) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      accumulators.push_back(std::move(acc));
    }
    return Status::OK();
  };
  FUSION_RETURN_NOT_OK(reset_accumulators());

  exec::MemoryReservation reservation(
      ctx->env->memory_pool, "aggpart-" + std::to_string(ctx->query_id) +
                                 "-merge-" + std::to_string(partition));
  auto spill_count = metrics_->Counter(exec::metric::kSpillCount, partition);
  auto spill_bytes = metrics_->Counter(exec::metric::kSpillBytes, partition);
  auto mem_reserved = metrics_->Gauge(exec::metric::kMemReservedBytes, partition);
  std::vector<exec::SpillFilePtr> merge_spills;

  // Merge one partial-layout batch (bypass, spilled, or re-spilled rows):
  // keys lead, state columns follow bs->partial_layout.
  std::vector<uint64_t> hashes;
  std::vector<uint32_t> group_ids;
  auto merge_partial_batch = [&](const RecordBatch& batch) -> Status {
    std::vector<ArrayPtr> keys;
    for (size_t g = 0; g < group_exprs_.size(); ++g) {
      keys.push_back(batch.column(static_cast<int>(g)));
    }
    FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
    FUSION_RETURN_NOT_OK(table.MapBatch(keys, hashes, &group_ids));
    const int64_t num_groups = table.num_groups();
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      accumulators[a]->Resize(num_groups);
      std::vector<ArrayPtr> state_cols;
      for (int idx : bs->partial_layout[a].state_columns) {
        state_cols.push_back(batch.column(idx));
      }
      FUSION_RETURN_NOT_OK(
          accumulators[a]->UpdateFromPartial(state_cols, group_ids));
    }
    return Status::OK();
  };

  // Serialize the merge state as partial-layout batches (spill path).
  auto emit_merge_partial = [&]() -> Result<std::vector<RecordBatchPtr>> {
    const int64_t total = table.num_groups();
    FUSION_ASSIGN_OR_RAISE(auto columns, table.DecodeGroupKeys());
    for (auto& acc : accumulators) {
      acc->Resize(total);
      FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
      for (auto& c : cols) columns.push_back(std::move(c));
    }
    auto big = std::make_shared<RecordBatch>(bs->partial_schema, total,
                                             std::move(columns));
    return SliceBatch(big, ctx->config.batch_size);
  };

  int64_t merges_since_check = 0;
  auto check_memory = [&]() -> Status {
    if (++merges_since_check < 16) return Status::OK();
    merges_since_check = 0;
    int64_t held = table.SizeBytes();
    for (const auto& acc : accumulators) held += acc->SizeBytes();
    Status grow = reservation.ResizeTo(held);
    if (grow.ok()) {
      mem_reserved->SetMax(reservation.held());
      return Status::OK();
    }
    if (!grow.IsOutOfMemory()) return grow;
    FUSION_ASSIGN_OR_RAISE(auto batches, emit_merge_partial());
    FUSION_ASSIGN_OR_RAISE(auto file, ctx->env->disk_manager->CreateTempFile("agg"));
    int64_t run_bytes = 0;
    for (const auto& b : batches) run_bytes += b->TotalBufferSize();
    FUSION_RETURN_NOT_OK(file->Reserve(run_bytes));
    ipc::FileWriter writer(file->path());
    FUSION_RETURN_NOT_OK(writer.Open());
    for (const auto& b : batches) {
      FUSION_RETURN_NOT_OK(writer.WriteBatch(*b));
    }
    FUSION_RETURN_NOT_OK(writer.Close());
    merge_spills.push_back(std::move(file));
    spills_.fetch_add(1);
    spill_count->Add(1);
    spill_bytes->Add(run_bytes);
    table = compute::GroupTable(bs->key_types);
    FUSION_RETURN_NOT_OK(reset_accumulators());
    return reservation.ResizeTo(0);
  };

  // Merge accumulated GroupTable state: probe this bucket's groups
  // directly by stored hash + arena bytes, then fold their serialized
  // accumulator rows in by gather.
  std::vector<uint32_t> target_ids;
  std::vector<int64_t> take_indices;
  static const std::vector<uint32_t> kNoGroups;
  for (BuildState::Partial& part : bs->partials) {
    const std::vector<uint32_t>& gids =
        part.bucket_groups.empty() ? kNoGroups : part.bucket_groups[partition];
    if (!gids.empty()) {
      FUSION_RETURN_NOT_OK(table.MergeFrom(*part.table, gids, &target_ids));
      const int64_t num_groups = table.num_groups();
      take_indices.assign(gids.begin(), gids.end());
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        accumulators[a]->Resize(num_groups);
        std::vector<ArrayPtr> state_cols;
        for (const auto& col : part.state_arrays[a]) {
          FUSION_ASSIGN_OR_RAISE(auto t, compute::Take(*col, take_indices));
          state_cols.push_back(std::move(t));
        }
        FUSION_RETURN_NOT_OK(
            accumulators[a]->UpdateFromPartial(state_cols, target_ids));
      }
      FUSION_RETURN_NOT_OK(check_memory());
    }
    if (!part.bypass_batches.empty()) {
      for (const auto& batch : part.bypass_batches[partition]) {
        FUSION_RETURN_NOT_OK(merge_partial_batch(*batch));
        FUSION_RETURN_NOT_OK(check_memory());
      }
    }
  }

  // Spilled partial runs hold rows of every bucket; keep only ours.
  for (const auto& file : bs->spill_files) {
    ipc::FileReader reader(file->path());
    FUSION_RETURN_NOT_OK(reader.Open());
    for (;;) {
      FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
      if (batch == nullptr) break;
      std::vector<ArrayPtr> keys;
      for (size_t g = 0; g < group_exprs_.size(); ++g) {
        keys.push_back(batch->column(static_cast<int>(g)));
      }
      FUSION_RETURN_NOT_OK(compute::HashColumns(keys, &hashes));
      take_indices.clear();
      for (int64_t r = 0; r < batch->num_rows(); ++r) {
        if (compute::GroupTable::RadixBucket(hashes[r], buckets) ==
            static_cast<uint32_t>(partition)) {
          take_indices.push_back(r);
        }
      }
      if (take_indices.empty()) continue;
      FUSION_ASSIGN_OR_RAISE(auto mine, compute::TakeBatch(*batch, take_indices));
      FUSION_RETURN_NOT_OK(merge_partial_batch(*mine));
      FUSION_RETURN_NOT_OK(check_memory());
    }
  }

  // Re-merge anything this partition spilled while merging (rows are
  // already all ours; no further spilling on this pass).
  if (!merge_spills.empty()) {
    FUSION_ASSIGN_OR_RAISE(auto mem_batches, emit_merge_partial());
    table = compute::GroupTable(bs->key_types);
    FUSION_RETURN_NOT_OK(reset_accumulators());
    for (const auto& b : mem_batches) {
      FUSION_RETURN_NOT_OK(merge_partial_batch(*b));
    }
    for (const auto& file : merge_spills) {
      ipc::FileReader reader(file->path());
      FUSION_RETURN_NOT_OK(reader.Open());
      for (;;) {
        FUSION_ASSIGN_OR_RAISE(auto batch, reader.Next());
        if (batch == nullptr) break;
        FUSION_RETURN_NOT_OK(merge_partial_batch(*batch));
      }
    }
  }

  // Emit the final output for this bucket.
  const int64_t total = table.num_groups();
  FUSION_ASSIGN_OR_RAISE(auto columns, table.DecodeGroupKeys());
  for (auto& acc : accumulators) {
    acc->Resize(total);
    FUSION_ASSIGN_OR_RAISE(auto col, acc->Finish());
    columns.push_back(std::move(col));
  }
  auto big = std::make_shared<RecordBatch>(schema_, total, std::move(columns));
  return exec::StreamPtr(std::make_unique<exec::VectorStream>(
      schema_, SliceBatch(big, ctx->config.batch_size)));
}

std::string StreamingAggregateExec::ToStringLine() const {
  std::string out = "StreamingAggregateExec(";
  out += mode_ == AggregateMode::kPartial ? "partial" : "single";
  out += "): groups=[";
  for (size_t i = 0; i < group_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_names_[i];
  }
  out += "]";
  return out;
}

Result<exec::StreamPtr> StreamingAggregateExec::ExecuteImpl(int partition,
                                                        const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto input_stream, input_->Execute(partition, ctx));
  auto input = std::shared_ptr<exec::RecordBatchStream>(std::move(input_stream));
  SchemaPtr schema = schema_;
  const bool partial = mode_ == AggregateMode::kPartial;
  auto group_exprs = group_exprs_;
  auto aggregates = aggregates_;
  int64_t batch_size = ctx->config.batch_size;

  // Shared mutable stream state.
  struct State {
    // The in-flight group: one accumulator set sized for a single group,
    // plus the builders the finished groups are appended to.
    bool has_current = false;
    std::vector<ArrayPtr> current_key_arrays;  // single-row key snapshot
    std::vector<std::unique_ptr<logical::GroupedAccumulator>> accumulators;
    std::vector<std::unique_ptr<ArrayBuilder>> out_builders;
    int64_t pending_groups = 0;
    bool done = false;
  };
  auto state = std::make_shared<State>();

  auto make_accumulators = [aggregates]() -> Result<
      std::vector<std::unique_ptr<logical::GroupedAccumulator>>> {
    std::vector<std::unique_ptr<logical::GroupedAccumulator>> out;
    for (const auto& agg : aggregates) {
      FUSION_ASSIGN_OR_RAISE(auto acc, agg.function->create(agg.arg_types));
      acc->Resize(1);
      out.push_back(std::move(acc));
    }
    return out;
  };
  auto make_builders = [schema]() -> Result<
      std::vector<std::unique_ptr<ArrayBuilder>>> {
    std::vector<std::unique_ptr<ArrayBuilder>> out;
    for (const Field& f : schema->fields()) {
      FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(f.type()));
      out.push_back(std::move(b));
    }
    return out;
  };

  FUSION_ASSIGN_OR_RAISE(state->out_builders, make_builders());

  // Close the in-flight group: append its key + results to the output
  // builders.
  auto flush_current = [state, partial]() -> Status {
    if (!state->has_current) return Status::OK();
    size_t col = 0;
    for (const auto& key : state->current_key_arrays) {
      state->out_builders[col++]->AppendFrom(*key, 0);
    }
    for (auto& acc : state->accumulators) {
      if (partial) {
        FUSION_ASSIGN_OR_RAISE(auto cols, acc->PartialState());
        for (const auto& c : cols) {
          state->out_builders[col++]->AppendFrom(*c, 0);
        }
      } else {
        FUSION_ASSIGN_OR_RAISE(auto c, acc->Finish());
        state->out_builders[col++]->AppendFrom(*c, 0);
      }
    }
    state->has_current = false;
    state->accumulators.clear();
    ++state->pending_groups;
    return Status::OK();
  };

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [=]() mutable -> Result<RecordBatchPtr> {
        auto emit_pending = [&]() -> Result<RecordBatchPtr> {
          std::vector<ArrayPtr> columns;
          for (auto& b : state->out_builders) {
            FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
            columns.push_back(std::move(arr));
          }
          int64_t rows = state->pending_groups;
          state->pending_groups = 0;
          FUSION_ASSIGN_OR_RAISE(state->out_builders, make_builders());
          return std::make_shared<RecordBatch>(schema, rows, std::move(columns));
        };
        for (;;) {
          if (state->done) {
            if (state->pending_groups > 0) return emit_pending();
            return RecordBatchPtr(nullptr);
          }
          FUSION_ASSIGN_OR_RAISE(auto batch, input->Next());
          if (batch == nullptr) {
            state->done = true;
            FUSION_RETURN_NOT_OK(flush_current());
            continue;
          }
          if (batch->num_rows() == 0) continue;
          FUSION_ASSIGN_OR_RAISE(auto keys, EvaluateToArrays(group_exprs, *batch));
          std::vector<std::vector<ArrayPtr>> agg_args(aggregates.size());
          std::vector<std::vector<uint8_t>> filter_masks(aggregates.size());
          for (size_t a = 0; a < aggregates.size(); ++a) {
            FUSION_ASSIGN_OR_RAISE(agg_args[a],
                                   EvaluateToArrays(aggregates[a].args, *batch));
            FUSION_ASSIGN_OR_RAISE(filter_masks[a],
                                   EvaluateFilterMask(aggregates[a].filter, *batch));
          }
          const int64_t n = batch->num_rows();
          auto same_key = [&](int64_t row, const std::vector<ArrayPtr>& other,
                              int64_t other_row) {
            for (size_t k = 0; k < keys.size(); ++k) {
              if (!ArrayElementsEqual(*keys[k], row, *other[k], other_row)) {
                return false;
              }
            }
            return true;
          };
          // Walk key runs within the batch.
          int64_t start = 0;
          while (start < n) {
            int64_t end = start + 1;
            while (end < n && same_key(end, keys, start)) ++end;
            const bool continues =
                state->has_current && same_key(start, state->current_key_arrays, 0);
            if (!continues) {
              FUSION_RETURN_NOT_OK(flush_current());
              FUSION_ASSIGN_OR_RAISE(state->accumulators, make_accumulators());
              state->current_key_arrays.clear();
              for (const auto& k : keys) {
                FUSION_ASSIGN_OR_RAISE(auto one, compute::Take(*k, {start}));
                state->current_key_arrays.push_back(std::move(one));
              }
              state->has_current = true;
            }
            // Feed the run's rows into the single-group accumulators.
            std::vector<uint32_t> zeros(static_cast<size_t>(end - start), 0);
            for (size_t a = 0; a < aggregates.size(); ++a) {
              std::vector<ArrayPtr> sliced;
              for (const auto& arg : agg_args[a]) {
                sliced.push_back(arg->Slice(start, end - start));
              }
              std::vector<uint8_t> mask;
              if (!filter_masks[a].empty()) {
                mask.assign(filter_masks[a].begin() + start,
                            filter_masks[a].begin() + end);
              }
              FUSION_RETURN_NOT_OK(state->accumulators[a]->Update(
                  sliced, zeros, mask.empty() ? nullptr : mask.data()));
            }
            start = end;
          }
          if (state->pending_groups >= batch_size) return emit_pending();
        }
      }));
}

}  // namespace physical
}  // namespace fusion
