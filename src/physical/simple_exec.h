#ifndef FUSION_PHYSICAL_SIMPLE_EXEC_H_
#define FUSION_PHYSICAL_SIMPLE_EXEC_H_

#include <atomic>

#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// Streaming WHERE: evaluates a boolean PhysicalExpr per batch and keeps
/// selected rows.
class FilterExec : public ExecutionPlan {
 public:
  FilterExec(ExecPlanPtr input, PhysicalExprPtr predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}

  std::string name() const override { return "FilterExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override {
    return input_->output_ordering();  // filtering preserves order
  }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return "FilterExec: " + predicate_->ToString();
  }

 private:
  ExecPlanPtr input_;
  PhysicalExprPtr predicate_;
};

/// Streaming SELECT-list evaluation.
class ProjectionExec : public ExecutionPlan {
 public:
  ProjectionExec(ExecPlanPtr input, std::vector<PhysicalExprPtr> exprs,
                 SchemaPtr output_schema)
      : input_(std::move(input)), exprs_(std::move(exprs)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "ProjectionExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override;
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  const std::vector<PhysicalExprPtr>& exprs() const { return exprs_; }

 private:
  ExecPlanPtr input_;
  std::vector<PhysicalExprPtr> exprs_;
  SchemaPtr schema_;
};

/// skip/fetch on a single input partition.
class LimitExec : public ExecutionPlan {
 public:
  LimitExec(ExecPlanPtr input, int64_t skip, int64_t fetch)
      : input_(std::move(input)), skip_(skip), fetch_(fetch) {}

  std::string name() const override { return "LimitExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override {
    return input_->output_ordering();
  }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return "LimitExec: skip=" + std::to_string(skip_) +
           " fetch=" + std::to_string(fetch_);
  }

 private:
  ExecPlanPtr input_;
  int64_t skip_;
  int64_t fetch_;
};

/// Re-chunks small batches (e.g. after selective filters) up to the
/// session batch size, reducing per-batch overhead downstream.
class CoalesceBatchesExec : public ExecutionPlan {
 public:
  explicit CoalesceBatchesExec(ExecPlanPtr input) : input_(std::move(input)) {}

  std::string name() const override { return "CoalesceBatchesExec"; }
  SchemaPtr schema() const override { return input_->schema(); }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override {
    return input_->output_ordering();
  }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  ExecPlanPtr input_;
};

/// Concatenates children partition lists (UNION ALL).
class UnionExec : public ExecutionPlan {
 public:
  explicit UnionExec(std::vector<ExecPlanPtr> inputs) : inputs_(std::move(inputs)) {}

  std::string name() const override { return "UnionExec"; }
  SchemaPtr schema() const override { return inputs_[0]->schema(); }
  int output_partitions() const override {
    int total = 0;
    for (const auto& i : inputs_) total += i->output_partitions();
    return total;
  }
  std::vector<ExecPlanPtr> children() const override { return inputs_; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  std::vector<ExecPlanPtr> inputs_;
};

/// Literal VALUES rows.
class ValuesExec : public ExecutionPlan {
 public:
  ValuesExec(SchemaPtr schema, RecordBatchPtr batch)
      : schema_(std::move(schema)), batch_(std::move(batch)) {}

  std::string name() const override { return "ValuesExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  Result<exec::StreamPtr> ExecuteImpl(int, const ExecContextPtr&) override {
    return exec::StreamPtr(
        std::make_unique<exec::VectorStream>(schema_, std::vector{batch_}));
  }

 private:
  SchemaPtr schema_;
  RecordBatchPtr batch_;
};

/// Zero- or one-row empty relation (SELECT without FROM).
class EmptyExec : public ExecutionPlan {
 public:
  EmptyExec(SchemaPtr schema, bool produce_one_row)
      : schema_(std::move(schema)), produce_one_row_(produce_one_row) {}

  std::string name() const override { return "EmptyExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  Result<exec::StreamPtr> ExecuteImpl(int, const ExecContextPtr&) override {
    std::vector<RecordBatchPtr> batches;
    if (produce_one_row_) {
      batches.push_back(RecordBatch::MakeEmpty(schema_, 1));
    }
    return exec::StreamPtr(
        std::make_unique<exec::VectorStream>(schema_, std::move(batches)));
  }

 private:
  SchemaPtr schema_;
  bool produce_one_row_;
};

/// Emits the plan description for EXPLAIN.
class ExplainExec : public ExecutionPlan {
 public:
  ExplainExec(SchemaPtr schema, std::string logical_text, std::string physical_text)
      : schema_(std::move(schema)), logical_text_(std::move(logical_text)),
        physical_text_(std::move(physical_text)) {}

  std::string name() const override { return "ExplainExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  Result<exec::StreamPtr> ExecuteImpl(int, const ExecContextPtr&) override;

 private:
  SchemaPtr schema_;
  std::string logical_text_;
  std::string physical_text_;
};

/// \brief EXPLAIN ANALYZE (the analogue of DataFusion's AnalyzeExec):
/// executes its input to completion, discards the result rows, and
/// emits the physical plan annotated with each operator's runtime
/// metrics (output_rows, elapsed_compute, spills).
class AnalyzeExec : public ExecutionPlan {
 public:
  AnalyzeExec(SchemaPtr schema, ExecPlanPtr input)
      : schema_(std::move(schema)), input_(std::move(input)) {}

  std::string name() const override { return "AnalyzeExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override { return "AnalyzeExec"; }

 private:
  SchemaPtr schema_;
  ExecPlanPtr input_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_SIMPLE_EXEC_H_
