#include "physical/physical_expr.h"

#include "arrow/builder.h"
#include "compute/arithmetic.h"
#include "compute/boolean.h"
#include "compute/cast.h"
#include "compute/compare.h"
#include "compute/kernel_util.h"
#include "logical/expr_eval.h"

namespace fusion {
namespace physical {

namespace {

using logical::BinaryOp;
using logical::Expr;
using logical::ExprPtr;

class LiteralExpr : public PhysicalExpr {
 public:
  explicit LiteralExpr(Scalar value) : value_(std::move(value)) {}

  DataType type() const override { return value_.type(); }
  Result<ColumnarValue> Evaluate(const RecordBatch&) const override {
    return ColumnarValue(value_);
  }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Scalar value_;
};

class BinaryExpr : public PhysicalExpr {
 public:
  BinaryExpr(BinaryOp op, PhysicalExprPtr left, PhysicalExprPtr right, DataType type)
      : op_(op), left_(std::move(left)), right_(std::move(right)), type_(type) {}

  DataType type() const override { return type_; }

  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue l, left_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(ColumnarValue r, right_->Evaluate(batch));
    // Scalar-scalar: evaluate once.
    if (l.is_scalar() && r.is_scalar()) {
      FUSION_ASSIGN_OR_RAISE(Scalar out,
                             logical::EvaluateBinaryScalar(op_, l.scalar(),
                                                           r.scalar()));
      return ColumnarValue(std::move(out));
    }
    switch (op_) {
      case BinaryOp::kAnd:
      case BinaryOp::kOr: {
        FUSION_ASSIGN_OR_RAISE(auto la, l.ToArray(batch.num_rows()));
        FUSION_ASSIGN_OR_RAISE(auto ra, r.ToArray(batch.num_rows()));
        FUSION_ASSIGN_OR_RAISE(auto out, op_ == BinaryOp::kAnd
                                             ? compute::And(*la, *ra)
                                             : compute::Or(*la, *ra));
        return ColumnarValue(std::move(out));
      }
      case BinaryOp::kEq:
      case BinaryOp::kNeq:
      case BinaryOp::kLt:
      case BinaryOp::kLtEq:
      case BinaryOp::kGt:
      case BinaryOp::kGtEq: {
        compute::CompareOp op;
        switch (op_) {
          case BinaryOp::kEq: op = compute::CompareOp::kEq; break;
          case BinaryOp::kNeq: op = compute::CompareOp::kNeq; break;
          case BinaryOp::kLt: op = compute::CompareOp::kLt; break;
          case BinaryOp::kLtEq: op = compute::CompareOp::kLtEq; break;
          case BinaryOp::kGt: op = compute::CompareOp::kGt; break;
          default: op = compute::CompareOp::kGtEq;
        }
        // Array-scalar fast path avoids materializing the literal.
        if (r.is_scalar()) {
          FUSION_ASSIGN_OR_RAISE(auto out,
                                 compute::CompareScalar(op, *l.array(), r.scalar()));
          return ColumnarValue(std::move(out));
        }
        if (l.is_scalar()) {
          // flip: scalar op array -> array flipped-op scalar
          compute::CompareOp flipped;
          switch (op) {
            case compute::CompareOp::kLt: flipped = compute::CompareOp::kGt; break;
            case compute::CompareOp::kLtEq: flipped = compute::CompareOp::kGtEq; break;
            case compute::CompareOp::kGt: flipped = compute::CompareOp::kLt; break;
            case compute::CompareOp::kGtEq: flipped = compute::CompareOp::kLtEq; break;
            default: flipped = op;
          }
          FUSION_ASSIGN_OR_RAISE(
              auto out, compute::CompareScalar(flipped, *r.array(), l.scalar()));
          return ColumnarValue(std::move(out));
        }
        FUSION_ASSIGN_OR_RAISE(auto out, compute::Compare(op, *l.array(), *r.array()));
        return ColumnarValue(std::move(out));
      }
      case BinaryOp::kStringConcat: {
        FUSION_ASSIGN_OR_RAISE(auto la, l.ToArray(batch.num_rows()));
        FUSION_ASSIGN_OR_RAISE(auto ra, r.ToArray(batch.num_rows()));
        FUSION_ASSIGN_OR_RAISE(auto out, compute::ConcatStrings(*la, *ra));
        return ColumnarValue(std::move(out));
      }
      default: {
        compute::ArithmeticOp op;
        switch (op_) {
          case BinaryOp::kPlus: op = compute::ArithmeticOp::kAdd; break;
          case BinaryOp::kMinus: op = compute::ArithmeticOp::kSubtract; break;
          case BinaryOp::kMultiply: op = compute::ArithmeticOp::kMultiply; break;
          case BinaryOp::kDivide: op = compute::ArithmeticOp::kDivide; break;
          default: op = compute::ArithmeticOp::kModulo;
        }
        if (r.is_scalar()) {
          FUSION_ASSIGN_OR_RAISE(
              auto out, compute::ArithmeticScalar(op, *l.array(), r.scalar()));
          return ColumnarValue(std::move(out));
        }
        if (l.is_scalar()) {
          FUSION_ASSIGN_OR_RAISE(
              auto out, compute::ScalarArithmetic(op, l.scalar(), *r.array()));
          return ColumnarValue(std::move(out));
        }
        FUSION_ASSIGN_OR_RAISE(auto out,
                               compute::Arithmetic(op, *l.array(), *r.array()));
        return ColumnarValue(std::move(out));
      }
    }
  }

  std::string ToString() const override {
    return left_->ToString() + " " + logical::BinaryOpName(op_) + " " +
           right_->ToString();
  }

 private:
  BinaryOp op_;
  PhysicalExprPtr left_;
  PhysicalExprPtr right_;
  DataType type_;
};

class NotExpr : public PhysicalExpr {
 public:
  explicit NotExpr(PhysicalExprPtr child) : child_(std::move(child)) {}

  DataType type() const override { return boolean(); }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    FUSION_ASSIGN_OR_RAISE(auto out, compute::Not(*arr));
    return ColumnarValue(std::move(out));
  }
  std::string ToString() const override { return "NOT " + child_->ToString(); }

 private:
  PhysicalExprPtr child_;
};

class NegativeExpr : public PhysicalExpr {
 public:
  NegativeExpr(PhysicalExprPtr child, DataType type)
      : child_(std::move(child)), type_(type) {}

  DataType type() const override { return type_; }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    FUSION_ASSIGN_OR_RAISE(auto out, compute::Negate(*arr));
    return ColumnarValue(std::move(out));
  }
  std::string ToString() const override { return "(- " + child_->ToString() + ")"; }

 private:
  PhysicalExprPtr child_;
  DataType type_;
};

class IsNullPhysExpr : public PhysicalExpr {
 public:
  IsNullPhysExpr(PhysicalExprPtr child, bool negated)
      : child_(std::move(child)), negated_(negated) {}

  DataType type() const override { return boolean(); }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    return ColumnarValue(negated_ ? compute::IsNotNull(*arr)
                                  : compute::IsNull(*arr));
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  PhysicalExprPtr child_;
  bool negated_;
};

class CastPhysExpr : public PhysicalExpr {
 public:
  CastPhysExpr(PhysicalExprPtr child, DataType target)
      : child_(std::move(child)), target_(target) {}

  DataType type() const override { return target_; }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    if (v.is_scalar()) {
      FUSION_ASSIGN_OR_RAISE(Scalar out, v.scalar().CastTo(target_));
      return ColumnarValue(std::move(out));
    }
    FUSION_ASSIGN_OR_RAISE(auto out, compute::Cast(*v.array(), target_));
    return ColumnarValue(std::move(out));
  }
  std::string ToString() const override {
    return "CAST(" + child_->ToString() + " AS " + target_.ToString() + ")";
  }

 private:
  PhysicalExprPtr child_;
  DataType target_;
};

class InListPhysExpr : public PhysicalExpr {
 public:
  InListPhysExpr(PhysicalExprPtr child, std::vector<Scalar> values, bool negated)
      : child_(std::move(child)), values_(std::move(values)), negated_(negated) {}

  DataType type() const override { return boolean(); }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    FUSION_ASSIGN_OR_RAISE(auto mask, compute::InList(*arr, values_));
    if (!negated_) return ColumnarValue(std::move(mask));
    FUSION_ASSIGN_OR_RAISE(auto inverted, compute::Not(*mask));
    return ColumnarValue(std::move(inverted));
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " NOT IN (...)" : " IN (...)");
  }

 private:
  PhysicalExprPtr child_;
  std::vector<Scalar> values_;
  bool negated_;
};

class LikePhysExpr : public PhysicalExpr {
 public:
  LikePhysExpr(PhysicalExprPtr child, std::string pattern, bool negated,
               bool case_insensitive)
      : child_(std::move(child)), matcher_(std::move(pattern), case_insensitive),
        negated_(negated) {}

  DataType type() const override { return boolean(); }
  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, child_->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    FUSION_ASSIGN_OR_RAISE(auto out, compute::Like(*arr, matcher_, negated_));
    return ColumnarValue(std::move(out));
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
           matcher_.pattern() + "'";
  }

 private:
  PhysicalExprPtr child_;
  compute::LikeMatcher matcher_;
  bool negated_;
};

class CasePhysExpr : public PhysicalExpr {
 public:
  CasePhysExpr(std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> when_then,
               PhysicalExprPtr else_expr, DataType type)
      : when_then_(std::move(when_then)), else_expr_(std::move(else_expr)),
        type_(type) {}

  DataType type() const override { return type_; }

  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    const int64_t n = batch.num_rows();
    FUSION_ASSIGN_OR_RAISE(auto builder, MakeBuilder(type_));
    builder->Reserve(n);
    // Evaluate all branches once (columnar), then select per row.
    std::vector<ArrayPtr> conditions;
    std::vector<ArrayPtr> values;
    for (const auto& [when, then] : when_then_) {
      FUSION_ASSIGN_OR_RAISE(ColumnarValue c, when->Evaluate(batch));
      FUSION_ASSIGN_OR_RAISE(auto ca, c.ToArray(n));
      conditions.push_back(std::move(ca));
      FUSION_ASSIGN_OR_RAISE(ColumnarValue v, then->Evaluate(batch));
      FUSION_ASSIGN_OR_RAISE(auto va, v.ToArray(n));
      FUSION_ASSIGN_OR_RAISE(va, compute::Cast(*va, type_));
      values.push_back(std::move(va));
    }
    ArrayPtr else_values;
    if (else_expr_ != nullptr) {
      FUSION_ASSIGN_OR_RAISE(ColumnarValue v, else_expr_->Evaluate(batch));
      FUSION_ASSIGN_OR_RAISE(else_values, v.ToArray(n));
      FUSION_ASSIGN_OR_RAISE(else_values, compute::Cast(*else_values, type_));
    }
    for (int64_t i = 0; i < n; ++i) {
      bool done = false;
      for (size_t b = 0; b < conditions.size(); ++b) {
        const auto& cond = checked_cast<BooleanArray>(*conditions[b]);
        if (cond.IsValid(i) && cond.Value(i)) {
          builder->AppendFrom(*values[b], i);
          done = true;
          break;
        }
      }
      if (!done) {
        if (else_values != nullptr) {
          builder->AppendFrom(*else_values, i);
        } else {
          builder->AppendNull();
        }
      }
    }
    FUSION_ASSIGN_OR_RAISE(auto out, builder->Finish());
    return ColumnarValue(std::move(out));
  }

  std::string ToString() const override { return "CASE ... END"; }

 private:
  std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> when_then_;
  PhysicalExprPtr else_expr_;
  DataType type_;
};

class ScalarFunctionPhysExpr : public PhysicalExpr {
 public:
  ScalarFunctionPhysExpr(logical::ScalarFunctionPtr fn,
                         std::vector<PhysicalExprPtr> args, DataType type)
      : fn_(std::move(fn)), args_(std::move(args)), type_(type) {}

  DataType type() const override { return type_; }

  Result<ColumnarValue> Evaluate(const RecordBatch& batch) const override {
    std::vector<ColumnarValue> arg_values;
    arg_values.reserve(args_.size());
    for (const auto& arg : args_) {
      FUSION_ASSIGN_OR_RAISE(ColumnarValue v, arg->Evaluate(batch));
      arg_values.push_back(std::move(v));
    }
    return fn_->impl(arg_values, batch.num_rows());
  }

  std::string ToString() const override { return fn_->name + "(...)"; }

 private:
  logical::ScalarFunctionPtr fn_;
  std::vector<PhysicalExprPtr> args_;
  DataType type_;
};

}  // namespace

PhysicalExprPtr MakeCastExpr(PhysicalExprPtr child, DataType target) {
  return std::make_shared<CastPhysExpr>(std::move(child), target);
}

Result<PhysicalExprPtr> CreatePhysicalExpr(const ExprPtr& expr,
                                           const logical::PlanSchema& input) {
  switch (expr->kind) {
    case Expr::Kind::kColumn: {
      FUSION_ASSIGN_OR_RAISE(int idx, input.IndexOf(expr->qualifier, expr->name));
      return PhysicalExprPtr(std::make_shared<ColumnExpr>(
          expr->name, idx, input.field(idx).type()));
    }
    case Expr::Kind::kLiteral:
      return PhysicalExprPtr(std::make_shared<LiteralExpr>(expr->literal));
    case Expr::Kind::kAlias:
      return CreatePhysicalExpr(expr->children[0], input);
    case Expr::Kind::kBinary: {
      FUSION_ASSIGN_OR_RAISE(auto left, CreatePhysicalExpr(expr->children[0], input));
      FUSION_ASSIGN_OR_RAISE(auto right, CreatePhysicalExpr(expr->children[1], input));
      FUSION_ASSIGN_OR_RAISE(DataType type, expr->GetType(input));
      // Insert implicit casts so kernel operand types match. Decimal
      // arithmetic is exempt: the kernel consumes operands at their own
      // scales (multiplication's result scale is s1+s2, which neither
      // operand can be cast to without changing the value).
      if (logical::IsArithmeticOp(expr->op) && !type.is_temporal() &&
          !type.is_decimal()) {
        if (left->type() != type && !left->type().is_null()) {
          left = std::make_shared<CastPhysExpr>(std::move(left), type);
        }
        if (right->type() != type && !right->type().is_null()) {
          right = std::make_shared<CastPhysExpr>(std::move(right), type);
        }
      } else if (logical::IsComparisonOp(expr->op) &&
                 left->type() != right->type()) {
        FUSION_ASSIGN_OR_RAISE(DataType common,
                               compute::CommonType(left->type(), right->type()));
        if (left->type() != common) {
          left = std::make_shared<CastPhysExpr>(std::move(left), common);
        }
        if (right->type() != common) {
          right = std::make_shared<CastPhysExpr>(std::move(right), common);
        }
      }
      return PhysicalExprPtr(std::make_shared<BinaryExpr>(
          expr->op, std::move(left), std::move(right), type));
    }
    case Expr::Kind::kNot: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      return PhysicalExprPtr(std::make_shared<NotExpr>(std::move(child)));
    }
    case Expr::Kind::kNegative: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      DataType type = child->type();
      return PhysicalExprPtr(
          std::make_shared<NegativeExpr>(std::move(child), type));
    }
    case Expr::Kind::kIsNull: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      return PhysicalExprPtr(std::make_shared<IsNullPhysExpr>(std::move(child),
                                                              false));
    }
    case Expr::Kind::kIsNotNull: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      return PhysicalExprPtr(std::make_shared<IsNullPhysExpr>(std::move(child),
                                                              true));
    }
    case Expr::Kind::kCast: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      return PhysicalExprPtr(
          std::make_shared<CastPhysExpr>(std::move(child), expr->cast_type));
    }
    case Expr::Kind::kInList: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      std::vector<Scalar> values;
      for (size_t i = 1; i < expr->children.size(); ++i) {
        FUSION_ASSIGN_OR_RAISE(Scalar v,
                               logical::EvaluateConstantExpr(expr->children[i]));
        values.push_back(std::move(v));
      }
      return PhysicalExprPtr(std::make_shared<InListPhysExpr>(
          std::move(child), std::move(values), expr->negated));
    }
    case Expr::Kind::kLike: {
      FUSION_ASSIGN_OR_RAISE(auto child, CreatePhysicalExpr(expr->children[0], input));
      FUSION_ASSIGN_OR_RAISE(Scalar pattern,
                             logical::EvaluateConstantExpr(expr->children[1]));
      if (pattern.is_null() || !pattern.type().is_string()) {
        return Status::NotImplemented("LIKE pattern must be a string literal");
      }
      return PhysicalExprPtr(std::make_shared<LikePhysExpr>(
          std::move(child), pattern.string_value(), expr->negated,
          expr->case_insensitive));
    }
    case Expr::Kind::kCase: {
      std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> when_then;
      size_t num_whens = expr->children.size() / 2;
      for (size_t i = 0; i < num_whens; ++i) {
        FUSION_ASSIGN_OR_RAISE(auto when,
                               CreatePhysicalExpr(expr->children[i * 2], input));
        FUSION_ASSIGN_OR_RAISE(auto then,
                               CreatePhysicalExpr(expr->children[i * 2 + 1], input));
        when_then.emplace_back(std::move(when), std::move(then));
      }
      PhysicalExprPtr else_expr;
      if (expr->case_has_else) {
        FUSION_ASSIGN_OR_RAISE(else_expr,
                               CreatePhysicalExpr(expr->children.back(), input));
      }
      FUSION_ASSIGN_OR_RAISE(DataType type, expr->GetType(input));
      return PhysicalExprPtr(std::make_shared<CasePhysExpr>(
          std::move(when_then), std::move(else_expr), type));
    }
    case Expr::Kind::kScalarFunction: {
      std::vector<PhysicalExprPtr> args;
      for (const auto& arg : expr->children) {
        FUSION_ASSIGN_OR_RAISE(auto a, CreatePhysicalExpr(arg, input));
        args.push_back(std::move(a));
      }
      FUSION_ASSIGN_OR_RAISE(DataType type, expr->GetType(input));
      return PhysicalExprPtr(std::make_shared<ScalarFunctionPhysExpr>(
          expr->scalar_function, std::move(args), type));
    }
    case Expr::Kind::kAggregate:
      return Status::PlanError(
          "aggregate expression outside an Aggregate node: " + expr->ToString());
    case Expr::Kind::kWindow:
      return Status::PlanError("window expression outside a Window node: " +
                               expr->ToString());
    case Expr::Kind::kScalarSubquery:
      return Status::Internal(
          "scalar subquery should have been replaced during physical planning");
  }
  return Status::Internal("unhandled expr kind in CreatePhysicalExpr");
}

Result<std::vector<ArrayPtr>> EvaluateToArrays(
    const std::vector<PhysicalExprPtr>& exprs, const RecordBatch& batch) {
  std::vector<ArrayPtr> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) {
    FUSION_ASSIGN_OR_RAISE(ColumnarValue v, e->Evaluate(batch));
    FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
    out.push_back(std::move(arr));
  }
  return out;
}

Result<ArrayPtr> EvaluatePredicateMask(const PhysicalExpr& predicate,
                                       const RecordBatch& batch) {
  FUSION_ASSIGN_OR_RAISE(ColumnarValue v, predicate.Evaluate(batch));
  FUSION_ASSIGN_OR_RAISE(auto arr, v.ToArray(batch.num_rows()));
  if (!arr->type().is_bool()) {
    return Status::ExecutionError("predicate did not evaluate to boolean");
  }
  return arr;
}

}  // namespace physical
}  // namespace fusion
