#ifndef FUSION_PHYSICAL_AGGREGATE_EXEC_H_
#define FUSION_PHYSICAL_AGGREGATE_EXEC_H_

#include "logical/functions.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// Phase of a (possibly two-phase) aggregation (paper §6.3).
enum class AggregateMode {
  kPartial,  ///< per-partition pre-aggregation emitting partial state
  kFinal,    ///< merges partial state (after hash repartitioning)
  kSingle,   ///< one-shot aggregation (single partition input)
};

/// One aggregate computation within a HashAggregateExec.
struct AggregateInfo {
  logical::AggregateFunctionPtr function;
  std::vector<PhysicalExprPtr> args;     // evaluated in kPartial/kSingle
  PhysicalExprPtr filter;                // optional FILTER(WHERE ...) mask
  std::vector<DataType> arg_types;
  DataType output_type;
  std::string output_name;
  /// kFinal: indices of this aggregate's state columns in the input.
  std::vector<int> state_columns;
};

/// \brief Two-phase parallel partitioned hash aggregation (paper §6.3):
/// vectorized group-key encoding + accumulator updates, spill-to-disk
/// when the memory budget is exceeded, and a streaming fast path for
/// input already ordered on the group keys.
class HashAggregateExec : public ExecutionPlan {
 public:
  HashAggregateExec(ExecPlanPtr input, AggregateMode mode,
                    std::vector<PhysicalExprPtr> group_exprs,
                    std::vector<std::string> group_names,
                    std::vector<AggregateInfo> aggregates, SchemaPtr output_schema)
      : input_(std::move(input)), mode_(mode), group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)), aggregates_(std::move(aggregates)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "HashAggregateExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  AggregateMode mode() const { return mode_; }
  int64_t spill_count() const { return spills_.load(); }

 private:
  ExecPlanPtr input_;
  AggregateMode mode_;
  std::vector<PhysicalExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggregateInfo> aggregates_;
  SchemaPtr schema_;
  std::atomic<int64_t> spills_{0};
};

/// \brief Adaptive two-phase partitioned aggregation (paper §6.3) with a
/// radix-partitioned state merge instead of a row-level repartition
/// exchange. Phase 1 (EnsureBuilt, one task per input partition) pre-
/// aggregates into a thread-local GroupTable, adaptively degrading to
/// passthrough when the observed group cardinality approaches the input
/// row count: after `agg_bypass_probe_rows` rows, a task whose
/// groups/rows ratio is >= `agg_bypass_ratio` stops probing its table
/// and forwards rows as per-row partial state. Phase 2 (one merge per
/// output partition) routes each accumulated group by the radix bucket
/// of its stored 64-bit key hash and merges arena-backed entries
/// directly via GroupTable::MergeFrom — keys are never re-encoded and
/// rows never cross a BatchQueue. Either phase spills partial-state
/// batches to disk under memory pressure.
class PartitionedAggregateExec : public ExecutionPlan {
 public:
  PartitionedAggregateExec(ExecPlanPtr input,
                           std::vector<PhysicalExprPtr> group_exprs,
                           std::vector<std::string> group_names,
                           std::vector<AggregateInfo> aggregates,
                           SchemaPtr output_schema, int num_partitions)
      : input_(std::move(input)), group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)), aggregates_(std::move(aggregates)),
        schema_(std::move(output_schema)),
        num_partitions_(num_partitions < 1 ? 1 : num_partitions) {}

  std::string name() const override { return "PartitionedAggregateExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return num_partitions_; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  int64_t spill_count() const { return spills_.load(); }

 private:
  struct BuildState;

  /// Run phase 1 cooperatively: every merge-partition driver that lands
  /// here claims unbuilt input partitions from a shared atomic counter
  /// and pre-aggregates them on its own thread; drivers with nothing
  /// left to claim lend their thread to the query's other ready tasks
  /// (TaskGroup::HelpOrWait) until the last claim settles. No thread
  /// ever blocks on a lock while work remains, so the scheduler's
  /// deadlock-freedom contract holds even on a single-worker pool
  /// (a driver run on a lent thread re-enters here and just helps).
  Status EnsureBuilt(const ExecContextPtr& ctx);

  ExecPlanPtr input_;
  std::vector<PhysicalExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggregateInfo> aggregates_;
  SchemaPtr schema_;
  int num_partitions_;
  std::atomic<int64_t> spills_{0};

  std::mutex build_mu_;
  bool built_ = false;
  Status build_status_;
  std::shared_ptr<BuildState> build_state_;
};

/// \brief Streaming aggregation for input already ordered on the group
/// keys (paper §6.3's "fully ordered group keys" fast path and §6.7's
/// streaming Hash Aggregation): no hash table, one group in flight,
/// groups emitted incrementally as their key run ends — bounded memory
/// regardless of group cardinality.
class StreamingAggregateExec : public ExecutionPlan {
 public:
  StreamingAggregateExec(ExecPlanPtr input, AggregateMode mode,
                         std::vector<PhysicalExprPtr> group_exprs,
                         std::vector<std::string> group_names,
                         std::vector<AggregateInfo> aggregates,
                         SchemaPtr output_schema)
      : input_(std::move(input)), mode_(mode), group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)), aggregates_(std::move(aggregates)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "StreamingAggregateExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override {
    // Group columns come out in key order (they are the leading output
    // columns, one run each).
    std::vector<OrderingInfo> in = input_->output_ordering();
    std::vector<OrderingInfo> out;
    for (size_t i = 0; i < group_exprs_.size() && i < in.size(); ++i) {
      out.push_back({static_cast<int>(i), in[i].options});
    }
    return out;
  }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

 private:
  ExecPlanPtr input_;
  AggregateMode mode_;
  std::vector<PhysicalExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggregateInfo> aggregates_;
  SchemaPtr schema_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_AGGREGATE_EXEC_H_
