#ifndef FUSION_PHYSICAL_AGGREGATE_EXEC_H_
#define FUSION_PHYSICAL_AGGREGATE_EXEC_H_

#include "logical/functions.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// Phase of a (possibly two-phase) aggregation (paper §6.3).
enum class AggregateMode {
  kPartial,  ///< per-partition pre-aggregation emitting partial state
  kFinal,    ///< merges partial state (after hash repartitioning)
  kSingle,   ///< one-shot aggregation (single partition input)
};

/// One aggregate computation within a HashAggregateExec.
struct AggregateInfo {
  logical::AggregateFunctionPtr function;
  std::vector<PhysicalExprPtr> args;     // evaluated in kPartial/kSingle
  PhysicalExprPtr filter;                // optional FILTER(WHERE ...) mask
  std::vector<DataType> arg_types;
  DataType output_type;
  std::string output_name;
  /// kFinal: indices of this aggregate's state columns in the input.
  std::vector<int> state_columns;
};

/// \brief Two-phase parallel partitioned hash aggregation (paper §6.3):
/// vectorized group-key encoding + accumulator updates, spill-to-disk
/// when the memory budget is exceeded, and a streaming fast path for
/// input already ordered on the group keys.
class HashAggregateExec : public ExecutionPlan {
 public:
  HashAggregateExec(ExecPlanPtr input, AggregateMode mode,
                    std::vector<PhysicalExprPtr> group_exprs,
                    std::vector<std::string> group_names,
                    std::vector<AggregateInfo> aggregates, SchemaPtr output_schema)
      : input_(std::move(input)), mode_(mode), group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)), aggregates_(std::move(aggregates)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "HashAggregateExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

  AggregateMode mode() const { return mode_; }
  int64_t spill_count() const { return spills_.load(); }

 private:
  ExecPlanPtr input_;
  AggregateMode mode_;
  std::vector<PhysicalExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggregateInfo> aggregates_;
  SchemaPtr schema_;
  std::atomic<int64_t> spills_{0};
};

/// \brief Streaming aggregation for input already ordered on the group
/// keys (paper §6.3's "fully ordered group keys" fast path and §6.7's
/// streaming Hash Aggregation): no hash table, one group in flight,
/// groups emitted incrementally as their key run ends — bounded memory
/// regardless of group cardinality.
class StreamingAggregateExec : public ExecutionPlan {
 public:
  StreamingAggregateExec(ExecPlanPtr input, AggregateMode mode,
                         std::vector<PhysicalExprPtr> group_exprs,
                         std::vector<std::string> group_names,
                         std::vector<AggregateInfo> aggregates,
                         SchemaPtr output_schema)
      : input_(std::move(input)), mode_(mode), group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)), aggregates_(std::move(aggregates)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "StreamingAggregateExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return input_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  std::vector<OrderingInfo> output_ordering() const override {
    // Group columns come out in key order (they are the leading output
    // columns, one run each).
    std::vector<OrderingInfo> in = input_->output_ordering();
    std::vector<OrderingInfo> out;
    for (size_t i = 0; i < group_exprs_.size() && i < in.size(); ++i) {
      out.push_back({static_cast<int>(i), in[i].options});
    }
    return out;
  }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

 private:
  ExecPlanPtr input_;
  AggregateMode mode_;
  std::vector<PhysicalExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<AggregateInfo> aggregates_;
  SchemaPtr schema_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_AGGREGATE_EXEC_H_
