#ifndef FUSION_PHYSICAL_SYMMETRIC_HASH_JOIN_EXEC_H_
#define FUSION_PHYSICAL_SYMMETRIC_HASH_JOIN_EXEC_H_

#include "logical/plan.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// \brief Symmetric hash join (paper §6.4): both inputs stream; each
/// incoming batch probes the hash table accumulated from the *other*
/// side and is then inserted into its own side's table. Produces output
/// incrementally without waiting for either input to finish — the
/// streaming-engine join (Synnada/Arroyo use cases in §3).
///
/// Inner equi-joins only; selected when
/// SessionConfig::enable_symmetric_hash_join is set.
class SymmetricHashJoinExec : public ExecutionPlan {
 public:
  SymmetricHashJoinExec(ExecPlanPtr left, ExecPlanPtr right,
                        std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on,
                        PhysicalExprPtr filter, SchemaPtr output_schema)
      : left_(std::move(left)), right_(std::move(right)), on_(std::move(on)),
        filter_(std::move(filter)), schema_(std::move(output_schema)) {}

  std::string name() const override { return "SymmetricHashJoinExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {left_, right_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return "SymmetricHashJoinExec: Inner (streaming both sides)";
  }

 private:
  ExecPlanPtr left_;
  ExecPlanPtr right_;
  std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on_;
  PhysicalExprPtr filter_;
  SchemaPtr schema_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_SYMMETRIC_HASH_JOIN_EXEC_H_
