#include "physical/exchange_exec.h"

#include <chrono>
#include <limits>
#include <utility>

#include "arrow/builder.h"
#include "common/hash_util.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"

namespace fusion {
namespace physical {

BatchQueue::BatchQueue(size_t capacity, exec::CancellationTokenPtr token,
                       exec::TaskGroupPtr group,
                       exec::MetricValuePtr queue_wait_ns)
    : capacity_(capacity), token_(std::move(token)), group_(std::move(group)),
      queue_wait_ns_(std::move(queue_wait_ns)) {
  if (token_ != nullptr) {
    // Event-driven cancellation: Cancel()/deadline latch notifies every
    // blocked wait and parked producer immediately (no poll ticks).
    listener_id_ = token_->AddListener([this] {
      std::vector<exec::Waker> wakers;
      {
        std::lock_guard<std::mutex> lock(mu_);
        WakeAllLocked(&wakers);
      }
      for (auto& w : wakers) w.Wake();
      if (group_ != nullptr) group_->NotifyProgress();
    });
  }
}

BatchQueue::~BatchQueue() {
  // Returns only after any in-flight listener call completed, so the
  // callback's `this` capture cannot dangle.
  if (token_ != nullptr) token_->RemoveListener(listener_id_);
}

void BatchQueue::WakeAllLocked(std::vector<exec::Waker>* wakers) {
  not_full_.notify_all();
  not_empty_.notify_all();
  wakers->swap(push_waiters_);
}

void BatchQueue::Push(RecordBatchPtr batch) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (queue_.size() >= capacity_ && !finished_ && !closed_.load() &&
           !Cancelled()) {
      if (token_ != nullptr && token_->has_deadline()) {
        not_full_.wait_until(lock, token_->deadline_time());
      } else {
        not_full_.wait(lock);
      }
    }
    // Consumer gone or query cancelled: drop so the producer winds down.
    if (finished_ || closed_.load() || Cancelled()) return;
    queue_.push_back(std::move(batch));
  }
  not_empty_.notify_one();
  if (group_ != nullptr) group_->NotifyProgress();
}

bool BatchQueue::PushOrPark(RecordBatchPtr* batch, const exec::Waker& waker) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (finished_ || closed_.load() || Cancelled()) {
      batch->reset();  // consumer gone; drop and wind down
      return true;
    }
    if (queue_.size() >= capacity_) {
      // Full: park instead of holding a scheduler worker. The waker is
      // registered under the queue lock, so the consumer edge that
      // frees a slot cannot miss it.
      push_waiters_.push_back(waker);
      return false;
    }
    queue_.push_back(std::move(*batch));
    batch->reset();
  }
  not_empty_.notify_one();
  if (group_ != nullptr) group_->NotifyProgress();
  return true;
}

void BatchQueue::PushError(Status status) {
  std::vector<exec::Waker> wakers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_.ok()) error_ = std::move(status);
    finished_ = true;
    WakeAllLocked(&wakers);
  }
  for (auto& w : wakers) w.Wake();
  if (group_ != nullptr) group_->NotifyProgress();
}

void BatchQueue::ProducerDone() {
  if (producers_.fetch_sub(1) == 1) {
    std::vector<exec::Waker> wakers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      finished_ = true;
      WakeAllLocked(&wakers);
    }
    for (auto& w : wakers) w.Wake();
    if (group_ != nullptr) group_->NotifyProgress();
  }
}

void BatchQueue::Close() {
  std::vector<exec::Waker> wakers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true);
    queue_.clear();
    WakeAllLocked(&wakers);
  }
  for (auto& w : wakers) w.Wake();
  if (group_ != nullptr) group_->NotifyProgress();
}

Result<RecordBatchPtr> BatchQueue::Pop() {
  int64_t waited_ns = 0;
  auto record_wait = [&] {
    if (queue_wait_ns_ != nullptr && waited_ns > 0) {
      queue_wait_ns_->Add(waited_ns);
    }
  };
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Epoch first, predicate second: an edge firing after the predicate
    // check bumps the epoch past `epoch`, so HelpOrWait below returns
    // immediately instead of sleeping through the wakeup.
    uint64_t epoch = group_ != nullptr ? group_->progress_epoch() : 0;
    if (!error_.ok()) {
      record_wait();
      return error_;
    }
    // A producer error (the root cause) wins over cancellation;
    // otherwise surface Cancelled promptly instead of draining batches.
    if (Cancelled()) {
      record_wait();
      // CheckStatus latches the token and fires its listeners — one of
      // which is this queue's own and locks mu_ — so release mu_ first.
      lock.unlock();
      return token_->CheckStatus();
    }
    if (!queue_.empty()) {
      RecordBatchPtr batch = std::move(queue_.front());
      queue_.pop_front();
      exec::Waker waker;
      if (!push_waiters_.empty()) {
        // not_full edge: hand the freed slot to the oldest parked
        // producer.
        waker = push_waiters_.front();
        push_waiters_.erase(push_waiters_.begin());
      }
      lock.unlock();
      not_full_.notify_one();
      if (waker.valid()) waker.Wake();
      record_wait();
      return batch;
    }
    if (finished_ || closed_.load()) {
      record_wait();
      return RecordBatchPtr(nullptr);
    }
    // Empty and still producing: lend this thread to the query's other
    // tasks (usually the producers we are waiting on) or sleep until an
    // edge fires; with an armed deadline the sleep is bounded by it.
    auto start = std::chrono::steady_clock::now();
    bool blocked = true;
    if (group_ != nullptr) {
      lock.unlock();
      // Time spent *running* a borrowed task is productive work, not
      // queue pressure; only genuine sleeps count toward queue_wait_ns.
      blocked = !group_->HelpOrWait(epoch, token_.get());
      lock.lock();
    } else if (token_ != nullptr && token_->has_deadline()) {
      not_empty_.wait_until(lock, token_->deadline_time());
    } else {
      not_empty_.wait(lock);
    }
    if (blocked) {
      waited_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    }
  }
}

namespace {

/// Closes the queue when the consumer stream is destroyed, so producer
/// tasks abandoned mid-stream (e.g. by LIMIT) drop their batches and
/// wind down instead of filling a queue nobody reads.
struct QueueCloser {
  std::shared_ptr<BatchQueue> queue;
  ~QueueCloser() {
    if (queue != nullptr) queue->Close();
  }
};

/// State of one repartition producer task: pulls its input partition
/// and routes batches into the per-output-partition queues. The queues
/// are unbounded (Push never blocks), so the task yields every
/// kBatchesPerPoll batches instead: without that cap, a consumer
/// help-running this task from Pop would be held for the producer's
/// entire lifetime — and closing the queues (what stops the producer)
/// may require that very consumer to return first.
struct RepartitionProducer {
  static constexpr int kBatchesPerPoll = 256;

  ExecPlanPtr input;
  ExecContextPtr ctx;
  int partition = 0;
  std::vector<std::shared_ptr<BatchQueue>> queues;
  RepartitionExec::Mode mode{};
  std::vector<PhysicalExprPtr> hash_keys;
  int m = 0;
  exec::StreamPtr stream;
  bool opened = false;
  int64_t next = 0;
  std::vector<uint64_t> hashes;

  void Fail(const Status& st) {
    for (const auto& q : queues) q->PushError(st);
  }

  exec::TaskStatus Finish() {
    stream.reset();
    for (const auto& q : queues) q->ProducerDone();
    return exec::TaskStatus::kDone;
  }

  exec::TaskStatus Poll(const exec::Waker& waker) {
    if (!opened) {
      auto stream_res = input->Execute(partition, ctx);
      if (!stream_res.ok()) {
        Fail(stream_res.status());
        return Finish();
      }
      stream = std::move(*stream_res);
      next = partition;  // stagger round-robin start per producer
      opened = true;
    }
    for (int budget = 0; budget < kBatchesPerPoll; ++budget) {
      bool all_closed = true;
      for (const auto& q : queues) {
        if (!q->closed()) {
          all_closed = false;
          break;
        }
      }
      if (all_closed) return Finish();
      auto batch_res = stream->Next();
      if (!batch_res.ok()) {
        Fail(batch_res.status());
        return Finish();
      }
      RecordBatchPtr batch = std::move(*batch_res);
      if (batch == nullptr) return Finish();
      if (batch->num_rows() == 0) continue;
      if (mode == RepartitionExec::Mode::kRoundRobin) {
        queues[next % m]->Push(std::move(batch));
        ++next;
        continue;
      }
      // Hash repartitioning: route each row by key hash.
      std::vector<ArrayPtr> keys;
      for (const auto& k : hash_keys) {
        auto v = k->Evaluate(*batch);
        if (!v.ok()) {
          Fail(v.status());
          return Finish();
        }
        auto arr = v->ToArray(batch->num_rows());
        if (!arr.ok()) {
          Fail(arr.status());
          return Finish();
        }
        keys.push_back(std::move(*arr));
      }
      Status st = compute::HashColumns(keys, &hashes);
      if (!st.ok()) {
        Fail(st);
        return Finish();
      }
      std::vector<std::vector<int64_t>> indices(m);
      for (int64_t r = 0; r < batch->num_rows(); ++r) {
        // Remix before the modulo: downstream group/join tables index
        // slots by these same hashes, and routing on the raw value
        // would hand each final-phase table keys from a single residue
        // class, clustering its open-addressing probes.
        indices[hash_util::HashInt64(hashes[r]) % m].push_back(r);
      }
      for (int p = 0; p < m; ++p) {
        if (indices[p].empty()) continue;
        auto part = compute::TakeBatch(*batch, indices[p]);
        if (!part.ok()) {
          Fail(part.status());
          return Finish();
        }
        queues[p]->Push(std::move(*part));
      }
    }
    // Budget spent: yield so helping threads (a consumer inside Pop)
    // get their stack back. Self-wake re-enqueues the task.
    waker.Wake();
    return exec::TaskStatus::kParked;
  }
};

/// State of one coalesce producer task: pulls its input partition and
/// pushes into the shared bounded queue, parking on backpressure.
struct CoalesceProducer {
  ExecPlanPtr input;
  ExecContextPtr ctx;
  int partition = 0;
  std::shared_ptr<BatchQueue> queue;
  exec::StreamPtr stream;
  bool opened = false;
  RecordBatchPtr pending;  // batch awaiting a queue slot while parked

  exec::TaskStatus Poll(const exec::Waker& waker) {
    if (!opened) {
      auto stream_res = input->Execute(partition, ctx);
      if (!stream_res.ok()) {
        queue->PushError(stream_res.status());
        queue->ProducerDone();
        return exec::TaskStatus::kDone;
      }
      stream = std::move(*stream_res);
      opened = true;
    }
    for (;;) {
      if (pending != nullptr) {
        if (!queue->PushOrPark(&pending, waker)) {
          return exec::TaskStatus::kParked;
        }
      }
      if (queue->closed()) break;
      auto batch = stream->Next();
      if (!batch.ok()) {
        queue->PushError(batch.status());
        break;
      }
      if (*batch == nullptr) break;
      pending = std::move(*batch);
    }
    stream.reset();
    queue->ProducerDone();
    return exec::TaskStatus::kDone;
  }
};

}  // namespace

Result<exec::StreamPtr> CoalescePartitionsExec::ExecuteImpl(int partition,
                                                        const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("CoalescePartitionsExec has a single partition");
  }
  const int n = input_->output_partitions();
  if (n == 1) return input_->Execute(0, ctx);

  const auto& group = ctx->EnsureTaskGroup();
  auto queue = std::make_shared<BatchQueue>(
      static_cast<size_t>(2 * n), ctx->cancel, group,
      metrics_->Time(exec::metric::kQueueWaitNs, 0));
  {
    // Unwind hook: TaskGroup::Finish() closes the queue so parked
    // producers wake (and drop) even if the consumer never drained it.
    std::weak_ptr<BatchQueue> weak_queue = queue;
    group->AddUnwindHook([weak_queue] {
      if (auto q = weak_queue.lock()) q->Close();
    });
  }
  metrics_->Counter(exec::metric::kTasksSpawned, 0)->Add(n);
  for (int i = 0; i < n; ++i) queue->AddProducer();
  // One help generation for the batch: producers of one exchange can
  // reach the same shared-build claims upstream (scheduler invariant 4).
  const uint64_t help_gen = group->NextHelpGen();
  for (int i = 0; i < n; ++i) {
    auto state = std::make_shared<CoalesceProducer>();
    state->input = input_;
    state->ctx = ctx;
    state->partition = i;
    state->queue = queue;
    group->SpawnResumable(
        [state](const exec::Waker& waker) { return state->Poll(waker); },
        help_gen);
  }
  auto closer = std::make_shared<QueueCloser>();
  closer->queue = queue;
  SchemaPtr schema = input_->schema();
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [queue, closer]() -> Result<RecordBatchPtr> { return queue->Pop(); }));
}

RepartitionExec::~RepartitionExec() {
  // Unblock producers abandoned by early-terminating consumers; the
  // queues (and any still-running producer tasks) hold shared_ptrs, so
  // this only signals, never dangles.
  for (const auto& q : queues_) q->Close();
}

Status RepartitionExec::StartProducers(const ExecContextPtr& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return start_status_;
  started_ = true;
  const auto& group = ctx->EnsureTaskGroup();
  const int n = input_->output_partitions();
  queues_.reserve(num_partitions_);
  for (int i = 0; i < num_partitions_; ++i) {
    // Repartition queues are unbounded: output partitions may be
    // consumed serially (e.g. a merge opening sorted inputs one by one),
    // and bounded backpressure for partition B would park producers
    // forever while partition A's consumer still waits for
    // end-of-stream. Memory is bounded by the repartitioned data itself;
    // DataFusion's channels make the same trade and gate memory via the
    // pool. Push on an unbounded queue never blocks, so these producers
    // run to completion without parking.
    queues_.push_back(std::make_shared<BatchQueue>(
        std::numeric_limits<size_t>::max(), ctx->cancel, group,
        metrics_->Time(exec::metric::kQueueWaitNs, i)));
    for (int p = 0; p < n; ++p) queues_[i]->AddProducer();
  }
  {
    std::vector<std::weak_ptr<BatchQueue>> weak_queues(queues_.begin(),
                                                       queues_.end());
    group->AddUnwindHook([weak_queues] {
      for (const auto& wq : weak_queues) {
        if (auto q = wq.lock()) q->Close();
      }
    });
  }
  metrics_->Counter(exec::metric::kTasksSpawned)->Add(n);
  auto queues = queues_;
  // Shared help generation: these producers drive the same upstream
  // operator instances and may wait on each other's shared-build claims
  // (partitioned aggregation inputs), so they must never nest on one
  // stack (scheduler invariant 4).
  const uint64_t help_gen = group->NextHelpGen();
  for (int i = 0; i < n; ++i) {
    auto state = std::make_shared<RepartitionProducer>();
    state->input = input_;
    state->ctx = ctx;
    state->partition = i;
    state->queues = queues;
    state->mode = mode_;
    state->hash_keys = hash_keys_;
    state->m = num_partitions_;
    group->SpawnResumable(
        [state](const exec::Waker& waker) { return state->Poll(waker); },
        help_gen);
  }
  return Status::OK();
}

Result<exec::StreamPtr> RepartitionExec::ExecuteImpl(int partition,
                                                 const ExecContextPtr& ctx) {
  FUSION_RETURN_NOT_OK(StartProducers(ctx));
  if (partition < 0 || partition >= num_partitions_) {
    return Status::ExecutionError("RepartitionExec: partition out of range");
  }
  auto queue = queues_[partition];
  SchemaPtr schema = input_->schema();
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [queue]() -> Result<RecordBatchPtr> { return queue->Pop(); }));
}

}  // namespace physical
}  // namespace fusion
