#include "physical/exchange_exec.h"

#include <limits>

#include "arrow/builder.h"
#include "common/hash_util.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"

namespace fusion {
namespace physical {

void BatchQueue::Push(RecordBatchPtr batch) {
  std::unique_lock<std::mutex> lock(mu_);
  Wait(not_full_, lock, [this] {
    return queue_.size() < capacity_ || finished_ || closed_.load();
  });
  // Consumer gone or query cancelled: drop so the producer can wind down.
  if (finished_ || closed_.load() || Cancelled()) return;
  queue_.push_back(std::move(batch));
  not_empty_.notify_one();
}

void BatchQueue::PushError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (error_.ok()) error_ = std::move(status);
  finished_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

void BatchQueue::ProducerDone() {
  if (producers_.fetch_sub(1) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
}

void BatchQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_.store(true);
  queue_.clear();
  not_empty_.notify_all();
  not_full_.notify_all();
}

Result<RecordBatchPtr> BatchQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  Wait(not_empty_, lock,
       [this] { return !queue_.empty() || finished_ || closed_.load(); });
  if (!error_.ok()) return error_;
  // A producer error (the root cause) wins over cancellation; otherwise
  // surface Cancelled promptly instead of draining remaining batches.
  if (Cancelled()) return token_->CheckStatus();
  if (queue_.empty()) return RecordBatchPtr(nullptr);
  RecordBatchPtr batch = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return batch;
}

namespace {

/// Shared state that keeps producer threads alive until the consumer
/// stream is destroyed; closes the queue first so producers abandoned
/// mid-stream (e.g. by LIMIT) unblock and exit.
struct ProducerGroup {
  std::shared_ptr<BatchQueue> queue;
  std::vector<std::thread> threads;
  ~ProducerGroup() {
    if (queue != nullptr) queue->Close();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }
};

}  // namespace

Result<exec::StreamPtr> CoalescePartitionsExec::ExecuteImpl(int partition,
                                                        const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("CoalescePartitionsExec has a single partition");
  }
  const int n = input_->output_partitions();
  if (n == 1) return input_->Execute(0, ctx);

  auto queue =
      std::make_shared<BatchQueue>(static_cast<size_t>(2 * n), ctx->cancel);
  auto group = std::make_shared<ProducerGroup>();
  group->queue = queue;
  for (int i = 0; i < n; ++i) queue->AddProducer();
  for (int i = 0; i < n; ++i) {
    auto input = input_;
    group->threads.emplace_back([input, i, ctx, queue]() {
      auto stream_res = input->Execute(i, ctx);
      if (!stream_res.ok()) {
        queue->PushError(stream_res.status());
        queue->ProducerDone();
        return;
      }
      auto stream = std::move(*stream_res);
      while (!queue->closed()) {
        auto batch = stream->Next();
        if (!batch.ok()) {
          queue->PushError(batch.status());
          break;
        }
        if (*batch == nullptr) break;
        queue->Push(std::move(*batch));
      }
      queue->ProducerDone();
    });
  }
  SchemaPtr schema = input_->schema();
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [queue, group]() -> Result<RecordBatchPtr> { return queue->Pop(); }));
}

RepartitionExec::~RepartitionExec() {
  // Unblock producers abandoned by early-terminating consumers.
  for (const auto& q : queues_) q->Close();
  for (auto& t : producers_) {
    if (t.joinable()) t.join();
  }
}

Status RepartitionExec::StartProducers(const ExecContextPtr& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return start_status_;
  started_ = true;
  const int n = input_->output_partitions();
  queues_.reserve(num_partitions_);
  for (int i = 0; i < num_partitions_; ++i) {
    // Repartition queues are unbounded: output partitions may be
    // consumed serially (e.g. a merge opening sorted inputs one by one),
    // and a bounded queue for partition B would deadlock producers while
    // partition A's consumer still waits for end-of-stream. Memory is
    // bounded by the repartitioned data itself; DataFusion's channels
    // make the same trade and gate memory via the pool.
    queues_.push_back(std::make_shared<BatchQueue>(
        std::numeric_limits<size_t>::max(), ctx->cancel));
    for (int p = 0; p < n; ++p) queues_[i]->AddProducer();
  }
  auto queues = queues_;
  for (int i = 0; i < n; ++i) {
    auto input = input_;
    Mode mode = mode_;
    auto hash_keys = hash_keys_;
    int m = num_partitions_;
    producers_.emplace_back([input, i, ctx, queues, mode, hash_keys, m]() {
      auto fail = [&](const Status& st) {
        for (const auto& q : queues) q->PushError(st);
      };
      auto stream_res = input->Execute(i, ctx);
      if (!stream_res.ok()) {
        fail(stream_res.status());
        for (const auto& q : queues) q->ProducerDone();
        return;
      }
      auto stream = std::move(*stream_res);
      int64_t next = i;  // stagger round-robin start per producer
      std::vector<uint64_t> hashes;
      for (;;) {
        bool all_closed = true;
        for (const auto& q : queues) {
          if (!q->closed()) {
            all_closed = false;
            break;
          }
        }
        if (all_closed) break;
        auto batch_res = stream->Next();
        if (!batch_res.ok()) {
          fail(batch_res.status());
          break;
        }
        RecordBatchPtr batch = std::move(*batch_res);
        if (batch == nullptr) break;
        if (batch->num_rows() == 0) continue;
        if (mode == Mode::kRoundRobin) {
          queues[next % m]->Push(std::move(batch));
          ++next;
          continue;
        }
        // Hash repartitioning: route each row by key hash.
        std::vector<ArrayPtr> keys;
        bool ok = true;
        for (const auto& k : hash_keys) {
          auto v = k->Evaluate(*batch);
          if (!v.ok()) {
            fail(v.status());
            ok = false;
            break;
          }
          auto arr = v->ToArray(batch->num_rows());
          if (!arr.ok()) {
            fail(arr.status());
            ok = false;
            break;
          }
          keys.push_back(std::move(*arr));
        }
        if (!ok) break;
        Status st = compute::HashColumns(keys, &hashes);
        if (!st.ok()) {
          fail(st);
          break;
        }
        std::vector<std::vector<int64_t>> indices(m);
        for (int64_t r = 0; r < batch->num_rows(); ++r) {
          // Remix before the modulo: downstream group/join tables index
          // slots by these same hashes, and routing on the raw value
          // would hand each final-phase table keys from a single residue
          // class, clustering its open-addressing probes.
          indices[hash_util::HashInt64(hashes[r]) % m].push_back(r);
        }
        for (int p = 0; p < m; ++p) {
          if (indices[p].empty()) continue;
          auto part = compute::TakeBatch(*batch, indices[p]);
          if (!part.ok()) {
            fail(part.status());
            ok = false;
            break;
          }
          queues[p]->Push(std::move(*part));
        }
        if (!ok) break;
      }
      for (const auto& q : queues) q->ProducerDone();
    });
  }
  return Status::OK();
}

Result<exec::StreamPtr> RepartitionExec::ExecuteImpl(int partition,
                                                 const ExecContextPtr& ctx) {
  FUSION_RETURN_NOT_OK(StartProducers(ctx));
  if (partition < 0 || partition >= num_partitions_) {
    return Status::ExecutionError("RepartitionExec: partition out of range");
  }
  auto queue = queues_[partition];
  SchemaPtr schema = input_->schema();
  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema, [queue]() -> Result<RecordBatchPtr> { return queue->Pop(); }));
}

}  // namespace physical
}  // namespace fusion
