#include "physical/execution_plan.h"

#include <mutex>
#include <sstream>

namespace fusion {
namespace physical {

std::string ExecutionPlan::ToString() const {
  std::ostringstream out;
  std::function<void(const ExecutionPlan&, int)> render = [&](const ExecutionPlan& p,
                                                              int indent) {
    for (int i = 0; i < indent; ++i) out << "  ";
    out << p.ToStringLine() << " [" << p.output_partitions() << " partitions]\n";
    for (const auto& c : p.children()) render(*c, indent + 1);
  };
  render(*this, 0);
  return out.str();
}

Result<std::vector<RecordBatchPtr>> ExecuteCollect(const ExecPlanPtr& plan,
                                                   const ExecContextPtr& ctx) {
  const int partitions = plan->output_partitions();
  std::vector<std::vector<RecordBatchPtr>> results(partitions);
  std::mutex error_mu;

  std::vector<std::function<Status()>> tasks;
  tasks.reserve(partitions);
  for (int p = 0; p < partitions; ++p) {
    tasks.push_back([&, p]() -> Status {
      FUSION_ASSIGN_OR_RAISE(auto stream, plan->Execute(p, ctx));
      FUSION_ASSIGN_OR_RAISE(results[p], exec::CollectStream(stream.get()));
      return Status::OK();
    });
  }
  FUSION_RETURN_NOT_OK(ctx->env->pool()->RunAll(std::move(tasks)));

  std::vector<RecordBatchPtr> out;
  for (auto& part : results) {
    for (auto& b : part) out.push_back(std::move(b));
  }
  return out;
}

Result<int64_t> ExecuteCountRows(const ExecPlanPtr& plan, const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto batches, ExecuteCollect(plan, ctx));
  int64_t rows = 0;
  for (const auto& b : batches) rows += b->num_rows();
  return rows;
}

}  // namespace physical
}  // namespace fusion
