#include "physical/execution_plan.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <mutex>
#include <sstream>

#include "compute/cast.h"

namespace fusion {
namespace physical {

const exec::TaskGroupPtr& ExecContext::EnsureTaskGroup() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (task_group == nullptr) task_group = env->scheduler()->MakeGroup();
  return task_group;
}

const exec::RuntimeFilterRegistryPtr& ExecContext::EnsureRuntimeFilters() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (runtime_filters == nullptr) {
    runtime_filters = std::make_shared<exec::RuntimeFilterRegistry>();
  }
  return runtime_filters;
}

Result<exec::StreamPtr> ExecutionPlan::Execute(int partition,
                                               const ExecContextPtr& ctx) {
  // Don't start opening (which may collect an entire build side) for a
  // query that is already cancelled or past its deadline.
  FUSION_RETURN_NOT_OK(ctx->CheckCancelled());
  auto rows = metrics_->Counter(exec::metric::kOutputRows, partition);
  auto batches = metrics_->Counter(exec::metric::kOutputBatches, partition);
  auto elapsed = metrics_->Time(exec::metric::kElapsedNs, partition);
  auto dict_rows = metrics_->Counter(exec::metric::kDictRows, partition);
  // Opening the stream can itself be heavy (hash join builds, sorts);
  // charge it to the same elapsed metric as Next().
  exec::ScopedTimer open_timer(elapsed);
  FUSION_ASSIGN_OR_RAISE(auto stream, ExecuteImpl(partition, ctx));
  open_timer.Stop();
  exec::StreamPtr out = std::make_unique<exec::InstrumentedStream>(
      std::move(stream), std::move(rows), std::move(batches), std::move(elapsed),
      std::move(dict_rows));
  // Every operator boundary of a cancellable query checks the token, so
  // a Cancel() lands within one batch wherever execution currently is.
  if (ctx->cancel != nullptr) {
    out = std::make_unique<exec::CancelCheckStream>(std::move(out), ctx->cancel);
  }
  return out;
}

std::string ExecutionPlan::ToString() const {
  std::ostringstream out;
  std::function<void(const ExecutionPlan&, int)> render = [&](const ExecutionPlan& p,
                                                              int indent) {
    for (int i = 0; i < indent; ++i) out << "  ";
    out << p.ToStringLine() << " [" << p.output_partitions() << " partitions]\n";
    for (const auto& c : p.children()) render(*c, indent + 1);
  };
  render(*this, 0);
  return out.str();
}

Result<std::vector<RecordBatchPtr>> ExecuteCollect(const ExecPlanPtr& plan,
                                                   const ExecContextPtr& ctx) {
  const int partitions = plan->output_partitions();
  std::vector<std::vector<RecordBatchPtr>> results(partitions);

  auto drive = [&](int p) -> Status {
    FUSION_ASSIGN_OR_RAISE(auto stream, plan->Execute(p, ctx));
    FUSION_ASSIGN_OR_RAISE(results[p], exec::CollectStream(stream.get()));
    return Status::OK();
  };
  if (partitions == 1) {
    // Single partition: drive it inline; no scheduler round-trip.
    FUSION_RETURN_NOT_OK(drive(0));
  } else {
    // Partition drivers are tasks in the query's group on the shared
    // scheduler. RunAll lends this thread to the group while it waits
    // (the fairness floor), so collect works — and stays deadlock-free —
    // from any thread, including nested inside another group task
    // (subquery resolution, EXPLAIN ANALYZE).
    std::vector<std::function<Status()>> tasks;
    tasks.reserve(partitions);
    for (int p = 0; p < partitions; ++p) {
      tasks.push_back([&drive, p] { return drive(p); });
    }
    FUSION_RETURN_NOT_OK(ctx->EnsureTaskGroup()->RunAll(std::move(tasks)));
  }

  std::vector<RecordBatchPtr> out;
  for (auto& part : results) {
    // Query results leave the engine here; consumers (result comparison,
    // CSV/IPC export, clients) expect plain arrays, so any columns still
    // carrying dictionary codes are densified at this final boundary.
    for (auto& b : part) out.push_back(compute::EnsureDenseBatch(std::move(b)));
  }
  return out;
}

PlanMetricsNode CollectMetrics(const ExecutionPlan& plan) {
  PlanMetricsNode node;
  node.name = plan.name();
  node.description = plan.ToStringLine();
  const auto& m = *plan.metrics();
  node.output_rows = m.AggregatedValue(exec::metric::kOutputRows);
  node.output_batches = m.AggregatedValue(exec::metric::kOutputBatches);
  node.elapsed_ns = m.AggregatedValue(exec::metric::kElapsedNs);
  node.spill_count = m.AggregatedValue(exec::metric::kSpillCount);
  node.spill_bytes = m.AggregatedValue(exec::metric::kSpillBytes);
  node.mem_reserved_bytes = m.AggregatedValue(exec::metric::kMemReservedBytes);
  node.dict_rows = m.AggregatedValue(exec::metric::kDictRows);
  node.queue_wait_ns = m.AggregatedValue(exec::metric::kQueueWaitNs);
  node.tasks_spawned = m.AggregatedValue(exec::metric::kTasksSpawned);
  node.partial_groups = m.AggregatedValue(exec::metric::kPartialGroups);
  node.bypass_rows = m.AggregatedValue(exec::metric::kBypassRows);
  node.morsels_stolen = m.AggregatedValue(exec::metric::kMorselsStolen);
  node.rf_build_ns = m.AggregatedValue(exec::metric::kRfBuildNs);
  node.rf_checked_rows = m.AggregatedValue(exec::metric::kRfCheckedRows);
  node.rf_pruned_rows = m.AggregatedValue(exec::metric::kRfPrunedRows);
  int64_t children_elapsed = 0;
  for (const auto& c : plan.children()) {
    node.children.push_back(CollectMetrics(*c));
    children_elapsed += node.children.back().elapsed_ns;
  }
  // Pull-based streams nest their children's time; the difference is
  // this operator's own compute. Operators that overlap children on
  // producer threads (exchanges) can measure less than their children —
  // clamp to zero rather than report negative time.
  node.elapsed_compute_ns = std::max<int64_t>(0, node.elapsed_ns - children_elapsed);
  return node;
}

std::string RenderAnnotatedPlan(const ExecutionPlan& plan) {
  std::ostringstream out;
  std::function<void(const ExecutionPlan&, int)> render =
      [&](const ExecutionPlan& p, int indent) {
        PlanMetricsNode m = CollectMetrics(p);
        for (int i = 0; i < indent; ++i) out << "  ";
        out << p.ToStringLine() << ", metrics=[output_rows=" << m.output_rows
            << ", output_batches=" << m.output_batches << ", elapsed_compute="
            << exec::FormatDuration(m.elapsed_compute_ns);
        if (m.spill_count > 0) {
          out << ", spill_count=" << m.spill_count
              << ", spill_bytes=" << m.spill_bytes;
        }
        if (m.mem_reserved_bytes > 0) {
          out << ", mem_reserved_bytes=" << m.mem_reserved_bytes;
        }
        if (m.dict_rows > 0) {
          out << ", dict_rows=" << m.dict_rows
              << ", dense_rows=" << (m.output_rows - m.dict_rows);
        }
        if (m.tasks_spawned > 0) {
          out << ", tasks_spawned=" << m.tasks_spawned
              << ", queue_wait=" << exec::FormatDuration(m.queue_wait_ns);
        }
        if (m.partial_groups > 0 || m.bypass_rows > 0) {
          out << ", partial_groups=" << m.partial_groups
              << ", bypass_rows=" << m.bypass_rows;
        }
        if (m.morsels_stolen > 0) {
          out << ", morsels_stolen=" << m.morsels_stolen;
        }
        if (m.rf_build_ns > 0) {
          out << ", rf_build=" << exec::FormatDuration(m.rf_build_ns);
        }
        if (m.rf_checked_rows > 0) {
          char sel[32];
          std::snprintf(sel, sizeof(sel), "%.3f",
                        static_cast<double>(m.rf_pruned_rows) /
                            static_cast<double>(m.rf_checked_rows));
          out << ", rf_pruned_rows=" << m.rf_pruned_rows
              << ", rf_selectivity=" << sel;
        }
        out << "]\n";
        for (const auto& c : p.children()) render(*c, indent + 1);
      };
  render(plan, 0);
  return out.str();
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void MetricsNodeToJson(const PlanMetricsNode& node, std::string* out) {
  *out += "{\"operator\":\"";
  AppendJsonEscaped(out, node.name);
  *out += "\",\"description\":\"";
  AppendJsonEscaped(out, node.description);
  *out += "\",\"output_rows\":" + std::to_string(node.output_rows);
  *out += ",\"output_batches\":" + std::to_string(node.output_batches);
  *out += ",\"elapsed_ns\":" + std::to_string(node.elapsed_ns);
  *out += ",\"elapsed_compute_ns\":" + std::to_string(node.elapsed_compute_ns);
  if (node.spill_count > 0) {
    *out += ",\"spill_count\":" + std::to_string(node.spill_count);
    *out += ",\"spill_bytes\":" + std::to_string(node.spill_bytes);
  }
  if (node.mem_reserved_bytes > 0) {
    *out += ",\"mem_reserved_bytes\":" + std::to_string(node.mem_reserved_bytes);
  }
  if (node.dict_rows > 0) {
    *out += ",\"dict_rows\":" + std::to_string(node.dict_rows);
    *out += ",\"dense_rows\":" + std::to_string(node.output_rows - node.dict_rows);
  }
  if (node.tasks_spawned > 0) {
    *out += ",\"tasks_spawned\":" + std::to_string(node.tasks_spawned);
    *out += ",\"queue_wait_ns\":" + std::to_string(node.queue_wait_ns);
  }
  if (node.partial_groups > 0 || node.bypass_rows > 0) {
    *out += ",\"partial_groups\":" + std::to_string(node.partial_groups);
    *out += ",\"bypass_rows\":" + std::to_string(node.bypass_rows);
  }
  if (node.morsels_stolen > 0) {
    *out += ",\"morsels_stolen\":" + std::to_string(node.morsels_stolen);
  }
  if (node.rf_build_ns > 0) {
    *out += ",\"rf_build_ns\":" + std::to_string(node.rf_build_ns);
  }
  if (node.rf_checked_rows > 0) {
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.3f",
                  static_cast<double>(node.rf_pruned_rows) /
                      static_cast<double>(node.rf_checked_rows));
    *out += ",\"rf_checked_rows\":" + std::to_string(node.rf_checked_rows);
    *out += ",\"rf_pruned_rows\":" + std::to_string(node.rf_pruned_rows);
    *out += ",\"rf_selectivity\":";
    *out += sel;
  }
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    MetricsNodeToJson(node.children[i], out);
  }
  *out += "]}";
}

}  // namespace

std::string PlanMetricsToJson(const PlanMetricsNode& node) {
  std::string out;
  MetricsNodeToJson(node, &out);
  return out;
}

Result<int64_t> ExecuteCountRows(const ExecPlanPtr& plan, const ExecContextPtr& ctx) {
  FUSION_ASSIGN_OR_RAISE(auto batches, ExecuteCollect(plan, ctx));
  int64_t rows = 0;
  for (const auto& b : batches) rows += b->num_rows();
  return rows;
}

}  // namespace physical
}  // namespace fusion
