#include "physical/planner.h"

#include <set>

#include "arrow/builder.h"
#include "compute/cast.h"
#include "logical/expr_eval.h"
#include "logical/interval_analysis.h"
#include "optimizer/cardinality.h"
#include "optimizer/optimizer.h"
#include "optimizer/predicate_lowering.h"
#include "physical/aggregate_exec.h"
#include "physical/exchange_exec.h"
#include "physical/hash_join_exec.h"
#include "physical/other_joins.h"
#include "physical/scan_exec.h"
#include "physical/simple_exec.h"
#include "physical/sort_exec.h"
#include "physical/symmetric_hash_join_exec.h"
#include "physical/window_exec.h"

namespace fusion {
namespace physical {

using logical::Expr;
using logical::ExprPtr;
using logical::JoinKind;
using logical::LogicalPlan;
using logical::PlanKind;
using logical::PlanPtr;
using logical::PlanSchema;

namespace {

/// Physical output schema from a logical plan schema.
SchemaPtr PhysicalSchema(const PlanSchema& schema) { return schema.schema(); }

ExecPlanPtr CoalesceToOne(ExecPlanPtr input) {
  if (input->output_partitions() == 1) return input;
  return std::make_shared<CoalescePartitionsExec>(std::move(input));
}

/// Does the input's known ordering satisfy the requested sort prefix?
bool OrderingSatisfies(const std::vector<OrderingInfo>& have,
                       const std::vector<PhysicalSortExpr>& want) {
  if (want.size() > have.size()) return false;
  for (size_t i = 0; i < want.size(); ++i) {
    auto* col = dynamic_cast<const ColumnExpr*>(want[i].expr.get());
    if (col == nullptr) return false;
    if (have[i].column != col->index()) return false;
    if (have[i].options.descending != want[i].options.descending) return false;
    if (have[i].options.nulls_first != want[i].options.nulls_first) return false;
  }
  return true;
}

/// If output column `idx` of `node` is fed unchanged by a table scan,
/// return that scan node and the column's name in the scan's output
/// schema; nullptr otherwise. Used to pick the scan that receives a
/// join's runtime Bloom filter.
///
/// Limits (scan limit, sort fetch) block tracing: filtering below a
/// limit changes which rows the limit keeps, so results would diverge
/// from the unfiltered plan. Tracing through an intermediate join is
/// safe for any join kind: every output row it derives from (or
/// null-pads because of) a pruned scan row carries either the pruned
/// key value or NULL in the traced column, and the receiving join —
/// which only gets a filter for RF-safe kinds — drops both. Operators
/// where pruning one row can change surviving rows' values (windows,
/// aggregates, unions) stop the trace.
const LogicalPlan* TraceColumnToScan(const PlanPtr& node, int idx,
                                     std::string* column) {
  if (idx < 0 || idx >= node->schema().num_fields()) return nullptr;
  switch (node->kind) {
    case PlanKind::kTableScan:
      if (node->scan_limit >= 0) return nullptr;
      *column = node->schema().schema()->field(idx).name();
      return node.get();
    case PlanKind::kFilter:
    case PlanKind::kSubqueryAlias:
      return TraceColumnToScan(node->child(0), idx, column);
    case PlanKind::kSort:
      if (node->fetch >= 0) return nullptr;
      return TraceColumnToScan(node->child(0), idx, column);
    case PlanKind::kProjection: {
      if (idx >= static_cast<int>(node->exprs.size())) return nullptr;
      const ExprPtr& u = logical::Unalias(node->exprs[idx]);
      if (u->kind != Expr::Kind::kColumn) return nullptr;
      auto child_idx = node->child(0)->schema().IndexOf(u->qualifier, u->name);
      if (!child_idx.ok()) return nullptr;
      return TraceColumnToScan(node->child(0), *child_idx, column);
    }
    case PlanKind::kJoin: {
      // Semi/anti joins expose only the preserved side's schema.
      if (node->join_kind == JoinKind::kLeftSemi ||
          node->join_kind == JoinKind::kLeftAnti) {
        return TraceColumnToScan(node->child(0), idx, column);
      }
      if (node->join_kind == JoinKind::kRightSemi ||
          node->join_kind == JoinKind::kRightAnti) {
        return TraceColumnToScan(node->child(1), idx, column);
      }
      const int left_fields = node->child(0)->schema().num_fields();
      if (idx < left_fields) {
        return TraceColumnToScan(node->child(0), idx, column);
      }
      return TraceColumnToScan(node->child(1), idx - left_fields, column);
    }
    default:
      return nullptr;
  }
}

}  // namespace

Result<ExprPtr> PhysicalPlanner::ResolveSubqueries(const ExprPtr& expr) {
  return logical::TransformExpr(expr, [this](const ExprPtr& e) -> Result<ExprPtr> {
    if (e->kind != Expr::Kind::kScalarSubquery) return e;
    auto subplan = std::static_pointer_cast<LogicalPlan>(e->subquery_plan);
    // Subquery plans are stored unoptimized; run the default rule set
    // (critically: filter pushdown turns comma joins into hash joins).
    FUSION_ASSIGN_OR_RAISE(subplan,
                           optimizer::Optimizer::Default().Optimize(subplan));
    PhysicalPlanner sub_planner(ctx_);
    FUSION_ASSIGN_OR_RAISE(auto exec_plan, sub_planner.CreatePlan(subplan));
    FUSION_ASSIGN_OR_RAISE(auto batches, ExecuteCollect(exec_plan, ctx_));
    int64_t rows = 0;
    Scalar value = Scalar::Null(e->cast_type);
    for (const auto& b : batches) {
      for (int64_t r = 0; r < b->num_rows(); ++r) {
        if (++rows > 1) {
          return Status::ExecutionError("scalar subquery produced more than one row");
        }
        value = Scalar::FromArray(*b->column(0), r);
      }
    }
    return logical::Lit(std::move(value));
  });
}

Result<ExecPlanPtr> PhysicalPlanner::CreatePlan(const PlanPtr& plan) {
  return Plan(plan);
}

Result<ExecPlanPtr> PhysicalPlanner::Plan(const PlanPtr& plan) {
  switch (plan->kind) {
    case PlanKind::kTableScan:
      return PlanScan(plan);
    case PlanKind::kProjection: {
      FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
      std::vector<PhysicalExprPtr> exprs;
      for (const auto& e : plan->exprs) {
        FUSION_ASSIGN_OR_RAISE(auto resolved, ResolveSubqueries(e));
        FUSION_ASSIGN_OR_RAISE(auto pe,
                               CreatePhysicalExpr(resolved,
                                                  plan->child(0)->schema()));
        exprs.push_back(std::move(pe));
      }
      return ExecPlanPtr(std::make_shared<ProjectionExec>(
          std::move(input), std::move(exprs), PhysicalSchema(plan->schema())));
    }
    case PlanKind::kFilter: {
      FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
      FUSION_ASSIGN_OR_RAISE(auto resolved, ResolveSubqueries(plan->predicate));
      FUSION_ASSIGN_OR_RAISE(
          auto predicate, CreatePhysicalExpr(resolved, plan->child(0)->schema()));
      ExecPlanPtr filter =
          std::make_shared<FilterExec>(std::move(input), std::move(predicate));
      // Selective filters shrink batches; re-chunk for downstream ops.
      return ExecPlanPtr(std::make_shared<CoalesceBatchesExec>(std::move(filter)));
    }
    case PlanKind::kLimit: {
      FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
      return ExecPlanPtr(std::make_shared<LimitExec>(CoalesceToOne(std::move(input)),
                                                     plan->skip, plan->fetch));
    }
    case PlanKind::kSort:
      return PlanSort(plan);
    case PlanKind::kAggregate:
      return PlanAggregate(plan);
    case PlanKind::kDistinct:
      return PlanDistinct(plan);
    case PlanKind::kJoin:
      return PlanJoin(plan);
    case PlanKind::kWindow:
      return PlanWindow(plan);
    case PlanKind::kUnion: {
      std::vector<ExecPlanPtr> inputs;
      for (const auto& c : plan->children) {
        FUSION_ASSIGN_OR_RAISE(auto input, Plan(c));
        inputs.push_back(std::move(input));
      }
      return ExecPlanPtr(std::make_shared<UnionExec>(std::move(inputs)));
    }
    case PlanKind::kSubqueryAlias:
      return Plan(plan->child(0));
    case PlanKind::kValues: {
      std::vector<std::unique_ptr<ArrayBuilder>> builders;
      SchemaPtr schema = PhysicalSchema(plan->schema());
      for (const Field& f : schema->fields()) {
        FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(f.type()));
        builders.push_back(std::move(b));
      }
      for (const auto& row : plan->values_rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          FUSION_ASSIGN_OR_RAISE(Scalar v, logical::EvaluateConstantExpr(row[c]));
          FUSION_ASSIGN_OR_RAISE(v, v.CastTo(schema->field(static_cast<int>(c)).type()));
          if (v.is_null()) {
            builders[c]->AppendNull();
          } else {
            FUSION_ASSIGN_OR_RAISE(auto arr, v.MakeArray(1));
            builders[c]->AppendFrom(*arr, 0);
          }
        }
      }
      std::vector<ArrayPtr> columns;
      for (auto& b : builders) {
        FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
        columns.push_back(std::move(arr));
      }
      auto batch = std::make_shared<RecordBatch>(
          schema, static_cast<int64_t>(plan->values_rows.size()),
          std::move(columns));
      return ExecPlanPtr(std::make_shared<ValuesExec>(schema, std::move(batch)));
    }
    case PlanKind::kEmptyRelation:
      return ExecPlanPtr(std::make_shared<EmptyExec>(PhysicalSchema(plan->schema()),
                                                     plan->produce_one_row));
    case PlanKind::kExplain: {
      FUSION_ASSIGN_OR_RAISE(auto child_exec, Plan(plan->child(0)));
      if (plan->explain_analyze) {
        return ExecPlanPtr(std::make_shared<AnalyzeExec>(
            PhysicalSchema(plan->schema()), std::move(child_exec)));
      }
      return ExecPlanPtr(std::make_shared<ExplainExec>(
          PhysicalSchema(plan->schema()), plan->child(0)->ToString(),
          child_exec->ToString()));
    }
  }
  return Status::Internal("unhandled logical plan kind");
}

Result<ExecPlanPtr> PhysicalPlanner::PlanScan(const PlanPtr& plan) {
  catalog::ScanRequest request;
  request.projection = plan->scan_projection;
  request.limit = plan->scan_limit;
  request.target_partitions = ctx_->config.target_partitions;
  // Morsel-driven scans: hand out fine-grained chunks from a shared
  // queue so a skewed static split cannot serialize the pipeline.
  // Ordered providers keep static splits (stealing interleaves chunks
  // and would void the per-partition ordering); limited scans too (a
  // morsel per unit would re-apply the limit per chunk).
  if (ctx_->config.enable_morsel_scan && ctx_->config.target_partitions > 1 &&
      plan->scan_limit < 0 && plan->provider->sort_order().empty()) {
    request.max_morsels = ctx_->config.target_partitions * 4;
  }
  if (ctx_->config.enable_predicate_pushdown) {
    for (const auto& f : plan->scan_filters) {
      auto lowered = optimizer::TryLowerPredicate(f);
      if (lowered) request.predicates.push_back(std::move(*lowered));
    }
  }
  // Serving-layer context: the shared decoded-batch cache plus this
  // query's task group/token, so file scans can coalesce decodes and
  // park cooperatively while waiting on another query's decode.
  request.buffer_cache = ctx_->env != nullptr ? ctx_->env->buffer_cache : nullptr;
  request.task_group = ctx_->task_group;
  request.cancel = ctx_->cancel;
  auto pending = pending_runtime_filters_.find(plan.get());
  if (pending != pending_runtime_filters_.end()) {
    request.runtime_filters = std::move(pending->second);
    pending_runtime_filters_.erase(pending);
  }
  return ExecPlanPtr(std::make_shared<ScanExec>(plan->table_name, plan->provider,
                                                std::move(request),
                                                PhysicalSchema(plan->schema())));
}

Result<ExecPlanPtr> PhysicalPlanner::PlanSort(const PlanPtr& plan) {
  FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
  std::vector<PhysicalSortExpr> sort_exprs;
  for (const auto& se : plan->sort_exprs) {
    PhysicalSortExpr pse;
    FUSION_ASSIGN_OR_RAISE(pse.expr,
                           CreatePhysicalExpr(se.expr, plan->child(0)->schema()));
    pse.options = se.options;
    sort_exprs.push_back(std::move(pse));
  }
  // Sort elimination (paper §6.7): skip the sort if the input already
  // delivers the requested order in a single partition.
  if (input->output_partitions() == 1 &&
      OrderingSatisfies(input->output_ordering(), sort_exprs)) {
    if (plan->fetch >= 0) {
      return ExecPlanPtr(
          std::make_shared<LimitExec>(std::move(input), 0, plan->fetch));
    }
    return input;
  }
  ExecPlanPtr sorted = std::make_shared<SortExec>(std::move(input), sort_exprs,
                                                  plan->fetch);
  if (sorted->output_partitions() > 1) {
    sorted = std::make_shared<SortPreservingMergeExec>(std::move(sorted),
                                                       sort_exprs);
    if (plan->fetch >= 0) {
      // Per-partition TopK keeps fetch rows each; enforce globally.
      sorted = std::make_shared<LimitExec>(std::move(sorted), 0, plan->fetch);
    }
  }
  return sorted;
}

Result<ExecPlanPtr> PhysicalPlanner::PlanAggregate(const PlanPtr& plan) {
  FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
  const PlanSchema& in_schema = plan->child(0)->schema();

  std::vector<PhysicalExprPtr> group_exprs;
  std::vector<std::string> group_names;
  for (const auto& g : plan->group_exprs) {
    FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(g, in_schema));
    group_exprs.push_back(std::move(pe));
    group_names.push_back(g->DisplayName());
  }

  std::vector<AggregateInfo> aggregates;
  bool all_two_phase = true;
  for (const auto& a : plan->aggr_exprs) {
    const ExprPtr& agg = logical::Unalias(a);
    AggregateInfo info;
    info.function = agg->aggregate_function;
    info.output_name = a->DisplayName();
    for (const auto& arg : agg->children) {
      FUSION_ASSIGN_OR_RAISE(auto resolved, ResolveSubqueries(arg));
      FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(resolved, in_schema));
      info.arg_types.push_back(pe->type());
      info.args.push_back(std::move(pe));
    }
    if (agg->filter != nullptr) {
      FUSION_ASSIGN_OR_RAISE(info.filter, CreatePhysicalExpr(agg->filter, in_schema));
    }
    FUSION_ASSIGN_OR_RAISE(info.output_type, agg->GetType(in_schema));
    if (!info.function->supports_two_phase) all_two_phase = false;
    aggregates.push_back(std::move(info));
  }

  SchemaPtr final_schema = PhysicalSchema(plan->schema());

  // Ordered-group fast path (paper §6.3/§6.7): when the input already
  // delivers rows grouped by the key columns (its ordering prefix covers
  // the group columns), aggregate streaming with one group in flight.
  auto groups_ordered = [&](const ExecPlanPtr& in) {
    if (group_exprs.empty()) return false;
    auto ordering = in->output_ordering();
    if (ordering.size() < group_exprs.size()) return false;
    std::set<int> group_cols;
    for (const auto& g : group_exprs) {
      auto* col = dynamic_cast<const ColumnExpr*>(g.get());
      if (col == nullptr) return false;
      group_cols.insert(col->index());
    }
    std::set<int> prefix_cols;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      prefix_cols.insert(ordering[i].column);
    }
    return group_cols == prefix_cols;
  };

  const bool two_phase = all_two_phase && ctx_->config.enable_partial_aggregation &&
                         input->output_partitions() > 1;
  if (!two_phase) {
    ExecPlanPtr single_input = CoalesceToOne(std::move(input));
    if (groups_ordered(single_input)) {
      return ExecPlanPtr(std::make_shared<StreamingAggregateExec>(
          std::move(single_input), AggregateMode::kSingle, group_exprs,
          group_names, aggregates, final_schema));
    }
    // Single-phase over a single stream.
    return ExecPlanPtr(std::make_shared<HashAggregateExec>(
        std::move(single_input), AggregateMode::kSingle, group_exprs,
        group_names, aggregates, final_schema));
  }

  // Grouped two-phase: merge thread-local GroupTable state through a
  // radix partition of the stored key hashes (no row-level repartition
  // exchange, no key re-encode). The repartition pipeline below remains
  // as the ablation fallback and serves global (no-group) aggregates.
  if (!group_exprs.empty() && ctx_->config.enable_partitioned_aggregation) {
    return ExecPlanPtr(std::make_shared<PartitionedAggregateExec>(
        std::move(input), group_exprs, group_names, aggregates, final_schema,
        ctx_->config.target_partitions));
  }

  // Partial schema: group columns followed by each aggregate's state.
  std::vector<Field> partial_fields;
  for (size_t g = 0; g < group_exprs.size(); ++g) {
    partial_fields.emplace_back(group_names[g], group_exprs[g]->type(), true);
  }
  std::vector<AggregateInfo> final_aggs = aggregates;
  int state_col = static_cast<int>(group_exprs.size());
  for (size_t a = 0; a < aggregates.size(); ++a) {
    FUSION_ASSIGN_OR_RAISE(auto acc,
                           aggregates[a].function->create(aggregates[a].arg_types));
    final_aggs[a].state_columns.clear();
    for (DataType t : acc->PartialTypes()) {
      partial_fields.emplace_back("__state_" + std::to_string(state_col), t, true);
      final_aggs[a].state_columns.push_back(state_col++);
    }
  }
  auto partial_schema = std::make_shared<Schema>(std::move(partial_fields));

  ExecPlanPtr partial = std::make_shared<HashAggregateExec>(
      std::move(input), AggregateMode::kPartial, group_exprs, group_names,
      aggregates, partial_schema);

  ExecPlanPtr distributed;
  if (group_exprs.empty()) {
    distributed = CoalesceToOne(std::move(partial));
  } else {
    // Hash-repartition on the group keys (now the leading columns).
    std::vector<PhysicalExprPtr> keys;
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      keys.push_back(std::make_shared<ColumnExpr>(
          group_names[g], static_cast<int>(g), group_exprs[g]->type()));
    }
    distributed = std::make_shared<RepartitionExec>(
        std::move(partial), ctx_->config.target_partitions,
        RepartitionExec::Mode::kHash, std::move(keys));
  }

  // Final-mode group exprs reference the leading partial columns.
  std::vector<PhysicalExprPtr> final_groups;
  for (size_t g = 0; g < group_exprs.size(); ++g) {
    final_groups.push_back(std::make_shared<ColumnExpr>(
        group_names[g], static_cast<int>(g), group_exprs[g]->type()));
  }
  return ExecPlanPtr(std::make_shared<HashAggregateExec>(
      std::move(distributed), AggregateMode::kFinal, final_groups, group_names,
      final_aggs, final_schema));
}

Result<ExecPlanPtr> PhysicalPlanner::PlanDistinct(const PlanPtr& plan) {
  FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
  SchemaPtr schema = PhysicalSchema(plan->schema());
  std::vector<PhysicalExprPtr> group_exprs;
  std::vector<std::string> group_names;
  for (int i = 0; i < schema->num_fields(); ++i) {
    group_exprs.push_back(std::make_shared<ColumnExpr>(
        schema->field(i).name(), i, schema->field(i).type()));
    group_names.push_back(schema->field(i).name());
  }
  if (input->output_partitions() > 1) {
    if (ctx_->config.enable_partitioned_aggregation && !group_exprs.empty()) {
      return ExecPlanPtr(std::make_shared<PartitionedAggregateExec>(
          std::move(input), group_exprs, group_names,
          std::vector<AggregateInfo>{}, schema, ctx_->config.target_partitions));
    }
    ExecPlanPtr partial = std::make_shared<HashAggregateExec>(
        std::move(input), AggregateMode::kPartial, group_exprs, group_names,
        std::vector<AggregateInfo>{}, schema);
    std::vector<PhysicalExprPtr> keys = group_exprs;
    ExecPlanPtr repart = std::make_shared<RepartitionExec>(
        std::move(partial), ctx_->config.target_partitions,
        RepartitionExec::Mode::kHash, std::move(keys));
    return ExecPlanPtr(std::make_shared<HashAggregateExec>(
        std::move(repart), AggregateMode::kFinal, group_exprs, group_names,
        std::vector<AggregateInfo>{}, schema));
  }
  return ExecPlanPtr(std::make_shared<HashAggregateExec>(
      std::move(input), AggregateMode::kSingle, group_exprs, group_names,
      std::vector<AggregateInfo>{}, schema));
}

Result<ExecPlanPtr> PhysicalPlanner::PlanJoin(const PlanPtr& plan) {
  const PlanPtr& left = plan->child(0);
  const PlanPtr& right = plan->child(1);
  SchemaPtr out_schema = PhysicalSchema(plan->schema());

  if (plan->join_kind == JoinKind::kCross && plan->join_on.empty() &&
      plan->join_filter == nullptr) {
    FUSION_ASSIGN_OR_RAISE(auto left_exec, Plan(left));
    FUSION_ASSIGN_OR_RAISE(auto right_exec, Plan(right));
    return ExecPlanPtr(std::make_shared<CrossJoinExec>(
        std::move(left_exec), std::move(right_exec), out_schema));
  }

  PlanSchema combined = left->schema().Concat(right->schema());

  if (plan->join_on.empty()) {
    // Non-equi join: nested loops.
    FUSION_ASSIGN_OR_RAISE(auto left_exec, Plan(left));
    FUSION_ASSIGN_OR_RAISE(auto right_exec, Plan(right));
    PhysicalExprPtr filter;
    if (plan->join_filter != nullptr) {
      FUSION_ASSIGN_OR_RAISE(filter, CreatePhysicalExpr(plan->join_filter, combined));
    }
    return ExecPlanPtr(std::make_shared<NestedLoopJoinExec>(
        std::move(left_exec), std::move(right_exec), plan->join_kind,
        std::move(filter), out_schema));
  }

  // Streaming symmetric hash join (paper §6.4), opt-in: both sides
  // stream, neither is fully buffered before output begins.
  if (ctx_->config.enable_symmetric_hash_join &&
      plan->join_kind == JoinKind::kInner && !plan->join_on.empty()) {
    FUSION_ASSIGN_OR_RAISE(auto left_exec, Plan(left));
    FUSION_ASSIGN_OR_RAISE(auto right_exec, Plan(right));
    std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on;
    for (const auto& [l, r] : plan->join_on) {
      FUSION_ASSIGN_OR_RAISE(auto lk, CreatePhysicalExpr(l, left->schema()));
      FUSION_ASSIGN_OR_RAISE(auto rk, CreatePhysicalExpr(r, right->schema()));
      if (lk->type() != rk->type()) {
        FUSION_ASSIGN_OR_RAISE(DataType common,
                               compute::CommonType(lk->type(), rk->type()));
        if (lk->type() != common) lk = MakeCastExpr(std::move(lk), common);
        if (rk->type() != common) rk = MakeCastExpr(std::move(rk), common);
      }
      on.emplace_back(std::move(lk), std::move(rk));
    }
    PhysicalExprPtr filter;
    if (plan->join_filter != nullptr) {
      FUSION_ASSIGN_OR_RAISE(filter, CreatePhysicalExpr(plan->join_filter, combined));
    }
    return ExecPlanPtr(std::make_shared<SymmetricHashJoinExec>(
        CoalesceToOne(std::move(left_exec)), CoalesceToOne(std::move(right_exec)),
        std::move(on), std::move(filter), out_schema));
  }

  // Equi join: hash join. Build on the smaller side (paper §6.4), with
  // NDV-aware cardinality estimates. Decided BEFORE planning children so
  // runtime-filter channels can be registered on probe-side scans (a
  // scan may open its provider while its parents plan).
  JoinKind kind = plan->join_kind;
  const double est_left = optimizer::EstimateRows(left);
  const double est_right = optimizer::EstimateRows(right);
  bool build_is_left = true;
  switch (kind) {
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti:
      // Preserved side is left; stream it, build on right.
      build_is_left = false;
      break;
    case JoinKind::kRightSemi:
    case JoinKind::kRightAnti:
      build_is_left = true;
      break;
    default:
      build_is_left = est_left <= est_right;
      break;
  }
  JoinKind exec_kind = kind;
  if (!build_is_left) {
    // Flip the join type to match the swapped orientation.
    switch (kind) {
      case JoinKind::kInner:
      case JoinKind::kCross:
      case JoinKind::kFull:
        break;
      case JoinKind::kLeft: exec_kind = JoinKind::kRight; break;
      case JoinKind::kRight: exec_kind = JoinKind::kLeft; break;
      case JoinKind::kLeftSemi: exec_kind = JoinKind::kRightSemi; break;
      case JoinKind::kLeftAnti: exec_kind = JoinKind::kRightAnti; break;
      case JoinKind::kRightSemi: exec_kind = JoinKind::kLeftSemi; break;
      case JoinKind::kRightAnti: exec_kind = JoinKind::kLeftAnti; break;
    }
  }
  const double est_build = build_is_left ? est_left : est_right;
  const double est_probe = build_is_left ? est_right : est_left;

  // Sideways information passing: mark selective builds with runtime
  // Bloom-filter channels to probe-side scans. Only join kinds where a
  // probe row without a build match contributes nothing to the output
  // may prune probe rows early; kRight/kFull/kRightAnti emit exactly
  // those rows and are excluded. Keys that would need a cast are
  // skipped (both sides must hash identical bytes).
  std::vector<std::pair<int, exec::RuntimeFilterPtr>> rf_created;
  {
    const std::string& mode = ctx_->config.runtime_filter_mode;
    bool rf_on = mode != "off";
    if (mode == "auto" &&
        !(est_build <= static_cast<double>(ctx_->config.rf_max_build_rows) &&
          est_probe >= ctx_->config.rf_min_probe_ratio * est_build)) {
      rf_on = false;
    }
    const bool safe_kind = exec_kind == JoinKind::kInner ||
                           exec_kind == JoinKind::kLeft ||
                           exec_kind == JoinKind::kLeftSemi ||
                           exec_kind == JoinKind::kLeftAnti ||
                           exec_kind == JoinKind::kRightSemi;
    if (rf_on && safe_kind) {
      const PlanPtr& build_plan = build_is_left ? left : right;
      const PlanPtr& probe_plan = build_is_left ? right : left;
      for (size_t k = 0; k < plan->join_on.size(); ++k) {
        const ExprPtr& build_key =
            build_is_left ? plan->join_on[k].first : plan->join_on[k].second;
        const ExprPtr& probe_key =
            build_is_left ? plan->join_on[k].second : plan->join_on[k].first;
        auto bt = build_key->GetType(build_plan->schema());
        auto pt = probe_key->GetType(probe_plan->schema());
        if (!bt.ok() || !pt.ok() || *bt != *pt) continue;
        const ExprPtr& u = logical::Unalias(probe_key);
        if (u->kind != Expr::Kind::kColumn) continue;
        auto idx = probe_plan->schema().IndexOf(u->qualifier, u->name);
        if (!idx.ok()) continue;
        std::string column;
        const LogicalPlan* scan = TraceColumnToScan(probe_plan, *idx, &column);
        if (scan == nullptr) continue;
        auto rf = ctx_->EnsureRuntimeFilters()->Create(column);
        pending_runtime_filters_[scan].push_back({column, rf});
        rf_created.emplace_back(static_cast<int>(k), std::move(rf));
      }
    }
  }

  FUSION_ASSIGN_OR_RAISE(auto left_exec, Plan(left));
  FUSION_ASSIGN_OR_RAISE(auto right_exec, Plan(right));

  // Join algorithm selection (paper §6.4/§6.7): when both inputs already
  // deliver the key columns in ascending order (e.g. scans of key-sorted
  // files), a merge join avoids building a hash table.
  {
    auto keys_ordered = [&](const ExecPlanPtr& input, const PlanPtr& side,
                            bool use_right_keys) {
      std::vector<PhysicalSortExpr> want;
      for (const auto& [l, r] : plan->join_on) {
        PhysicalSortExpr pse;
        auto pe = CreatePhysicalExpr(use_right_keys ? r : l, side->schema());
        if (!pe.ok()) return false;
        pse.expr = *pe;
        want.push_back(std::move(pse));
      }
      return OrderingSatisfies(input->output_ordering(), want);
    };
    const bool smj_kind = plan->join_kind == JoinKind::kInner ||
                          plan->join_kind == JoinKind::kLeft ||
                          plan->join_kind == JoinKind::kRight ||
                          plan->join_kind == JoinKind::kFull ||
                          plan->join_kind == JoinKind::kLeftSemi ||
                          plan->join_kind == JoinKind::kLeftAnti;
    if (smj_kind && !plan->join_on.empty() &&
        left_exec->output_partitions() == 1 &&
        right_exec->output_partitions() == 1 &&
        keys_ordered(left_exec, left, false) &&
        keys_ordered(right_exec, right, true)) {
      // The scans below already carry the runtime-filter channels; a
      // merge join never publishes, so release them to pass-through.
      for (auto& [key_index, rf] : rf_created) rf->Bypass();
      std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on;
      for (const auto& [l, r] : plan->join_on) {
        FUSION_ASSIGN_OR_RAISE(auto lk, CreatePhysicalExpr(l, left->schema()));
        FUSION_ASSIGN_OR_RAISE(auto rk, CreatePhysicalExpr(r, right->schema()));
        on.emplace_back(std::move(lk), std::move(rk));
      }
      PhysicalExprPtr filter;
      if (plan->join_filter != nullptr) {
        FUSION_ASSIGN_OR_RAISE(filter,
                               CreatePhysicalExpr(plan->join_filter, combined));
      }
      return ExecPlanPtr(std::make_shared<SortMergeJoinExec>(
          std::move(left_exec), std::move(right_exec), plan->join_kind,
          std::move(on), std::move(filter), out_schema));
    }
  }

  std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on;
  PhysicalExprPtr filter;
  ExecPlanPtr build_exec, probe_exec;
  bool needs_restore_projection = false;
  PlanSchema exec_combined = combined;

  auto compile_keys = [&](const PlanSchema& build_schema,
                          const PlanSchema& probe_schema,
                          bool keys_flipped) -> Status {
    for (const auto& [l, r] : plan->join_on) {
      const ExprPtr& build_key = keys_flipped ? r : l;
      const ExprPtr& probe_key = keys_flipped ? l : r;
      FUSION_ASSIGN_OR_RAISE(auto bk, CreatePhysicalExpr(build_key, build_schema));
      FUSION_ASSIGN_OR_RAISE(auto pk, CreatePhysicalExpr(probe_key, probe_schema));
      if (bk->type() != pk->type()) {
        FUSION_ASSIGN_OR_RAISE(DataType common,
                               compute::CommonType(bk->type(), pk->type()));
        if (bk->type() != common) {
          bk = MakeCastExpr(std::move(bk), common);
        }
        if (pk->type() != common) {
          pk = MakeCastExpr(std::move(pk), common);
        }
      }
      on.emplace_back(std::move(bk), std::move(pk));
    }
    return Status::OK();
  };

  if (build_is_left) {
    build_exec = left_exec;
    probe_exec = right_exec;
    FUSION_RETURN_NOT_OK(compile_keys(left->schema(), right->schema(), false));
    exec_combined = left->schema().Concat(right->schema());
  } else {
    build_exec = right_exec;
    probe_exec = left_exec;
    FUSION_RETURN_NOT_OK(compile_keys(right->schema(), left->schema(), true));
    exec_combined = right->schema().Concat(left->schema());
    needs_restore_projection = kind == JoinKind::kInner || kind == JoinKind::kLeft ||
                               kind == JoinKind::kRight || kind == JoinKind::kFull ||
                               kind == JoinKind::kCross;
  }

  if (plan->join_filter != nullptr) {
    FUSION_ASSIGN_OR_RAISE(filter,
                           CreatePhysicalExpr(plan->join_filter, exec_combined));
  }

  // Exec output schema is build ++ probe (or the preserved side for
  // semi/anti joins).
  SchemaPtr exec_schema;
  switch (exec_kind) {
    case JoinKind::kLeftSemi:
    case JoinKind::kLeftAnti:
      exec_schema = build_exec->schema();
      break;
    case JoinKind::kRightSemi:
    case JoinKind::kRightAnti:
      exec_schema = probe_exec->schema();
      break;
    default:
      exec_schema = exec_combined.schema();
  }

  auto hash_join = std::make_shared<HashJoinExec>(
      std::move(build_exec), std::move(probe_exec), exec_kind, std::move(on),
      std::move(filter), exec_schema);
  hash_join->SetEstimatedRows(
      est_build, est_probe,
      optimizer::EstimateJoinRows(left, right, plan->join_on, kind));
  if (!rf_created.empty()) {
    hash_join->SetRuntimeFilterExpectedRows(static_cast<int64_t>(
        std::min(est_build, 1e15)));
    for (auto& [key_index, rf] : rf_created) {
      hash_join->AddRuntimeFilter(key_index, std::move(rf));
    }
  }
  ExecPlanPtr join = std::move(hash_join);

  if (needs_restore_projection) {
    // Reorder (right ++ left) back to (left ++ right).
    std::vector<PhysicalExprPtr> restore;
    const int right_cols = right->schema().num_fields();
    const int left_cols = left->schema().num_fields();
    for (int i = 0; i < left_cols; ++i) {
      restore.push_back(std::make_shared<ColumnExpr>(
          exec_schema->field(right_cols + i).name(), right_cols + i,
          exec_schema->field(right_cols + i).type()));
    }
    for (int i = 0; i < right_cols; ++i) {
      restore.push_back(std::make_shared<ColumnExpr>(
          exec_schema->field(i).name(), i, exec_schema->field(i).type()));
    }
    join = std::make_shared<ProjectionExec>(std::move(join), std::move(restore),
                                            out_schema);
  }
  return join;
}

Result<ExecPlanPtr> PhysicalPlanner::PlanWindow(const PlanPtr& plan) {
  FUSION_ASSIGN_OR_RAISE(auto input, Plan(plan->child(0)));
  const PlanSchema& in_schema = plan->child(0)->schema();
  std::vector<WindowExprInfo> infos;
  for (const auto& e : plan->exprs) {
    const ExprPtr& w = logical::Unalias(e);
    if (w->kind != Expr::Kind::kWindow) {
      return Status::PlanError("Window node contains non-window expression");
    }
    WindowExprInfo info;
    info.function = w->window_function;
    info.output_name = e->DisplayName();
    FUSION_ASSIGN_OR_RAISE(info.output_type, w->GetType(in_schema));
    for (const auto& arg : w->children) {
      FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(arg, in_schema));
      info.args.push_back(std::move(pe));
    }
    if (w->window_spec != nullptr) {
      for (const auto& p : w->window_spec->partition_by) {
        FUSION_ASSIGN_OR_RAISE(auto pe, CreatePhysicalExpr(p, in_schema));
        info.partition_by.push_back(std::move(pe));
      }
      for (const auto& o : w->window_spec->order_by) {
        PhysicalSortExpr pse;
        FUSION_ASSIGN_OR_RAISE(pse.expr, CreatePhysicalExpr(o.expr, in_schema));
        pse.options = o.options;
        info.order_by.push_back(std::move(pse));
      }
      info.frame = w->window_spec->frame;
    }
    infos.push_back(std::move(info));
  }
  return ExecPlanPtr(std::make_shared<WindowExec>(
      CoalesceToOne(std::move(input)), std::move(infos),
      PhysicalSchema(plan->schema())));
}

}  // namespace physical
}  // namespace fusion
