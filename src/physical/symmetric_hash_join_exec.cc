#include "physical/symmetric_hash_join_exec.h"

#include "arrow/builder.h"
#include "compute/group_table.h"
#include "compute/hash_kernels.h"
#include "compute/selection.h"

namespace fusion {
namespace physical {

namespace {

/// One side's accumulated state: all batches seen so far plus a flat
/// hash table over (batch index, row) entries, chained per key hash.
struct SideState {
  std::vector<RecordBatchPtr> batches;
  std::vector<std::vector<ArrayPtr>> keys;  // per batch, evaluated key columns
  compute::HashChainTable table;
  std::vector<std::pair<int32_t, int32_t>> entries;  // id -> (batch, row)
  std::vector<int64_t> next;                         // id -> chain link
  bool exhausted = false;
};

bool RowKeysEqual(const std::vector<ArrayPtr>& a, int64_t ai,
                  const std::vector<ArrayPtr>& b, int64_t bi) {
  for (size_t k = 0; k < a.size(); ++k) {
    if (a[k]->IsNull(ai) || b[k]->IsNull(bi)) return false;
    if (!ArrayElementsEqual(*a[k], ai, *b[k], bi)) return false;
  }
  return true;
}

}  // namespace

Result<exec::StreamPtr> SymmetricHashJoinExec::ExecuteImpl(int partition,
                                                       const ExecContextPtr& ctx) {
  if (partition != 0) {
    return Status::ExecutionError("SymmetricHashJoinExec has a single partition");
  }
  FUSION_ASSIGN_OR_RAISE(auto left_stream, left_->Execute(0, ctx));
  FUSION_ASSIGN_OR_RAISE(auto right_stream, right_->Execute(0, ctx));

  struct State {
    std::shared_ptr<exec::RecordBatchStream> inputs[2];
    SideState sides[2];
    int next_side = 0;  // alternate pulls for balanced progress
  };
  auto state = std::make_shared<State>();
  state->inputs[0] = std::move(left_stream);
  state->inputs[1] = std::move(right_stream);

  std::vector<PhysicalExprPtr> key_exprs[2];
  for (const auto& [l, r] : on_) {
    key_exprs[0].push_back(l);
    key_exprs[1].push_back(r);
  }
  auto keys0 = key_exprs[0];
  auto keys1 = key_exprs[1];
  SchemaPtr schema = schema_;
  auto filter = filter_;
  const int left_cols = left_->schema()->num_fields();
  const int right_cols = right_->schema()->num_fields();

  return exec::StreamPtr(std::make_unique<exec::GeneratorStream>(
      schema,
      [state, keys0, keys1, schema, filter, left_cols,
       right_cols]() -> Result<RecordBatchPtr> {
        for (;;) {
          if (state->sides[0].exhausted && state->sides[1].exhausted) {
            return RecordBatchPtr(nullptr);
          }
          // Pull from the next non-exhausted side.
          int side = state->next_side;
          if (state->sides[side].exhausted) side ^= 1;
          state->next_side = side ^ 1;

          FUSION_ASSIGN_OR_RAISE(auto batch, state->inputs[side]->Next());
          if (batch == nullptr) {
            state->sides[side].exhausted = true;
            continue;
          }
          if (batch->num_rows() == 0) continue;

          const auto& my_keys_exprs = side == 0 ? keys0 : keys1;
          FUSION_ASSIGN_OR_RAISE(auto my_keys,
                                 EvaluateToArrays(my_keys_exprs, *batch));
          std::vector<uint64_t> hashes;
          FUSION_RETURN_NOT_OK(compute::HashColumns(my_keys, &hashes));

          // 1. Probe the other side's accumulated table.
          SideState& other = state->sides[side ^ 1];
          std::vector<int64_t> my_idx;
          std::vector<std::pair<int32_t, int32_t>> other_idx;
          for (int64_t r = 0; r < batch->num_rows(); ++r) {
            for (int64_t e = other.table.Find(hashes[r]); e >= 0;
                 e = other.next[e]) {
              auto [ob, orow] = other.entries[e];
              if (RowKeysEqual(my_keys, r, other.keys[ob], orow)) {
                my_idx.push_back(r);
                other_idx.push_back(other.entries[e]);
              }
            }
          }

          // 2. Insert this batch into our own table.
          SideState& mine = state->sides[side];
          int32_t my_batch_index = static_cast<int32_t>(mine.batches.size());
          mine.batches.push_back(batch);
          mine.keys.push_back(my_keys);
          for (int64_t r = 0; r < batch->num_rows(); ++r) {
            bool null_key = false;
            for (const auto& k : my_keys) {
              if (k->IsNull(r)) {
                null_key = true;
                break;
              }
            }
            if (!null_key) {
              const int64_t id = static_cast<int64_t>(mine.entries.size());
              mine.entries.emplace_back(my_batch_index, static_cast<int32_t>(r));
              mine.next.push_back(mine.table.Insert(hashes[r], id));
            }
          }

          if (my_idx.empty()) continue;

          // 3. Assemble output rows in (left ++ right) order.
          std::vector<std::unique_ptr<ArrayBuilder>> builders;
          for (const Field& f : schema->fields()) {
            FUSION_ASSIGN_OR_RAISE(auto b, MakeBuilder(f.type()));
            builders.push_back(std::move(b));
          }
          for (size_t i = 0; i < my_idx.size(); ++i) {
            const RecordBatchPtr& other_batch =
                other.batches[other_idx[i].first];
            int64_t other_row = other_idx[i].second;
            const RecordBatchPtr& left_batch = side == 0 ? batch : other_batch;
            int64_t left_row = side == 0 ? my_idx[i] : other_row;
            const RecordBatchPtr& right_batch = side == 0 ? other_batch : batch;
            int64_t right_row = side == 0 ? other_row : my_idx[i];
            for (int c = 0; c < left_cols; ++c) {
              builders[c]->AppendFrom(*left_batch->column(c), left_row);
            }
            for (int c = 0; c < right_cols; ++c) {
              builders[left_cols + c]->AppendFrom(*right_batch->column(c),
                                                  right_row);
            }
          }
          std::vector<ArrayPtr> columns;
          for (auto& b : builders) {
            FUSION_ASSIGN_OR_RAISE(auto arr, b->Finish());
            columns.push_back(std::move(arr));
          }
          auto out = std::make_shared<RecordBatch>(
              schema, static_cast<int64_t>(my_idx.size()), std::move(columns));

          // Residual filter.
          if (filter != nullptr) {
            FUSION_ASSIGN_OR_RAISE(auto mask, EvaluatePredicateMask(*filter, *out));
            const auto& bm = checked_cast<BooleanArray>(*mask);
            if (bm.TrueCount() == 0) continue;
            FUSION_ASSIGN_OR_RAISE(out, compute::FilterBatch(*out, bm));
          }
          return out;
        }
      }));
}

}  // namespace physical
}  // namespace fusion
