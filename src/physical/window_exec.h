#ifndef FUSION_PHYSICAL_WINDOW_EXEC_H_
#define FUSION_PHYSICAL_WINDOW_EXEC_H_

#include "logical/expr.h"
#include "logical/functions.h"
#include "physical/execution_plan.h"

namespace fusion {
namespace physical {

/// One window computation within a WindowExec.
struct WindowExprInfo {
  logical::WindowFunctionPtr function;
  std::vector<PhysicalExprPtr> args;
  std::vector<PhysicalExprPtr> partition_by;
  std::vector<PhysicalSortExpr> order_by;
  logical::WindowFrame frame;
  DataType output_type;
  std::string output_name;
};

/// \brief SQL window functions (paper §6.5): sorts each hash partition
/// by (PARTITION BY, ORDER BY) — reusing any pre-existing order — and
/// evaluates functions incrementally per partition, appending one output
/// column per window expression.
class WindowExec : public ExecutionPlan {
 public:
  WindowExec(ExecPlanPtr input, std::vector<WindowExprInfo> window_exprs,
             SchemaPtr output_schema)
      : input_(std::move(input)), window_exprs_(std::move(window_exprs)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "WindowExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {input_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override;

 private:
  ExecPlanPtr input_;
  std::vector<WindowExprInfo> window_exprs_;
  SchemaPtr schema_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_WINDOW_EXEC_H_
