#ifndef FUSION_PHYSICAL_OTHER_JOINS_H_
#define FUSION_PHYSICAL_OTHER_JOINS_H_

#include <mutex>

#include "logical/plan.h"
#include "physical/execution_plan.h"
#include "physical/sort_exec.h"

namespace fusion {
namespace physical {

/// \brief Merge join over inputs sorted ascending on the join keys
/// (paper §6.4/§6.7: chosen when pre-existing sort orders make the sort
/// free). Single partition per side.
class SortMergeJoinExec : public ExecutionPlan {
 public:
  SortMergeJoinExec(ExecPlanPtr left, ExecPlanPtr right, logical::JoinKind kind,
                    std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on,
                    PhysicalExprPtr filter, SchemaPtr output_schema)
      : left_(std::move(left)), right_(std::move(right)), kind_(kind),
        on_(std::move(on)), filter_(std::move(filter)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "SortMergeJoinExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {left_, right_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return std::string("SortMergeJoinExec: ") + logical::JoinKindName(kind_);
  }

 private:
  ExecPlanPtr left_;
  ExecPlanPtr right_;
  logical::JoinKind kind_;
  std::vector<std::pair<PhysicalExprPtr, PhysicalExprPtr>> on_;
  PhysicalExprPtr filter_;
  SchemaPtr schema_;
};

/// \brief Nested-loop join for non-equi conditions (paper §6.4). The
/// left child is collected; the right child streams.
class NestedLoopJoinExec : public ExecutionPlan {
 public:
  NestedLoopJoinExec(ExecPlanPtr left, ExecPlanPtr right, logical::JoinKind kind,
                     PhysicalExprPtr filter, SchemaPtr output_schema)
      : left_(std::move(left)), right_(std::move(right)), kind_(kind),
        filter_(std::move(filter)), schema_(std::move(output_schema)) {}

  std::string name() const override { return "NestedLoopJoinExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return 1; }
  std::vector<ExecPlanPtr> children() const override { return {left_, right_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;
  std::string ToStringLine() const override {
    return std::string("NestedLoopJoinExec: ") + logical::JoinKindName(kind_);
  }

 private:
  ExecPlanPtr left_;
  ExecPlanPtr right_;
  logical::JoinKind kind_;
  PhysicalExprPtr filter_;
  SchemaPtr schema_;
};

/// \brief Cartesian product; left collected, right streamed.
class CrossJoinExec : public ExecutionPlan {
 public:
  CrossJoinExec(ExecPlanPtr left, ExecPlanPtr right, SchemaPtr output_schema)
      : left_(std::move(left)), right_(std::move(right)),
        schema_(std::move(output_schema)) {}

  std::string name() const override { return "CrossJoinExec"; }
  SchemaPtr schema() const override { return schema_; }
  int output_partitions() const override { return right_->output_partitions(); }
  std::vector<ExecPlanPtr> children() const override { return {left_, right_}; }
  Result<exec::StreamPtr> ExecuteImpl(int partition, const ExecContextPtr& ctx) override;

 private:
  Status EnsureCollected(const ExecContextPtr& ctx);

  ExecPlanPtr left_;
  ExecPlanPtr right_;
  SchemaPtr schema_;

  std::mutex mu_;
  bool collected_ = false;
  Status collect_status_;
  RecordBatchPtr left_batch_;
};

}  // namespace physical
}  // namespace fusion

#endif  // FUSION_PHYSICAL_OTHER_JOINS_H_
