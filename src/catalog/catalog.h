#ifndef FUSION_CATALOG_CATALOG_H_
#define FUSION_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/table_provider.h"

namespace fusion {
namespace catalog {

/// \brief A namespace of tables (paper §7.2). Other systems call this a
/// "schema" or "database". The extension point for remote metastores.
class SchemaProvider {
 public:
  virtual ~SchemaProvider() = default;

  virtual std::vector<std::string> TableNames() const = 0;
  virtual Result<TableProviderPtr> GetTable(const std::string& name) const = 0;
  virtual bool TableExists(const std::string& name) const = 0;
  /// Register / replace a table. Default: read-only provider.
  virtual Status RegisterTable(const std::string& name, TableProviderPtr table) {
    (void)name;
    (void)table;
    return Status::NotImplemented("schema provider is read-only");
  }
  virtual Status DeregisterTable(const std::string& name) {
    (void)name;
    return Status::NotImplemented("schema provider is read-only");
  }
};

using SchemaProviderPtr = std::shared_ptr<SchemaProvider>;

/// \brief A collection of SchemaProviders (a "catalog"/"database").
class CatalogProvider {
 public:
  virtual ~CatalogProvider() = default;

  virtual std::vector<std::string> SchemaNames() const = 0;
  virtual Result<SchemaProviderPtr> GetSchema(const std::string& name) const = 0;
  virtual Status RegisterSchema(const std::string& name, SchemaProviderPtr schema) {
    (void)name;
    (void)schema;
    return Status::NotImplemented("catalog provider is read-only");
  }
};

using CatalogProviderPtr = std::shared_ptr<CatalogProvider>;

/// Simple thread-safe in-memory SchemaProvider.
class MemorySchemaProvider : public SchemaProvider {
 public:
  std::vector<std::string> TableNames() const override;
  Result<TableProviderPtr> GetTable(const std::string& name) const override;
  bool TableExists(const std::string& name) const override;
  Status RegisterTable(const std::string& name, TableProviderPtr table) override;
  Status DeregisterTable(const std::string& name) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableProviderPtr> tables_;
};

/// Simple thread-safe in-memory CatalogProvider.
class MemoryCatalogProvider : public CatalogProvider {
 public:
  MemoryCatalogProvider();

  std::vector<std::string> SchemaNames() const override;
  Result<SchemaProviderPtr> GetSchema(const std::string& name) const override;
  Status RegisterSchema(const std::string& name, SchemaProviderPtr schema) override;

  /// The default "public" schema.
  const SchemaProviderPtr& default_schema() const { return default_schema_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, SchemaProviderPtr> schemas_;
  SchemaProviderPtr default_schema_;
};

}  // namespace catalog
}  // namespace fusion

#endif  // FUSION_CATALOG_CATALOG_H_
