#include "catalog/memory_table.h"

#include "compute/aggregate_kernels.h"

namespace fusion {
namespace catalog {

namespace {

/// Iterator over a fixed list of (already projected) batches.
class VectorBatchIterator : public BatchIterator {
 public:
  explicit VectorBatchIterator(std::vector<RecordBatchPtr> batches)
      : batches_(std::move(batches)) {}

  Result<RecordBatchPtr> Next() override {
    if (pos_ >= batches_.size()) return RecordBatchPtr(nullptr);
    return batches_[pos_++];
  }

 private:
  std::vector<RecordBatchPtr> batches_;
  size_t pos_ = 0;
};

}  // namespace

MemoryTable::MemoryTable(SchemaPtr schema, std::vector<RecordBatchPtr> batches)
    : schema_(std::move(schema)), batches_(std::move(batches)) {}

Result<std::shared_ptr<MemoryTable>> MemoryTable::Make(
    SchemaPtr schema, std::vector<RecordBatchPtr> batches) {
  for (const auto& b : batches) {
    if (!b->schema()->Equals(*schema)) {
      return Status::Invalid("MemoryTable: batch schema mismatch");
    }
  }
  return std::make_shared<MemoryTable>(std::move(schema), std::move(batches));
}

Status MemoryTable::Append(RecordBatchPtr batch) {
  if (!batch->schema()->Equals(*schema_)) {
    return Status::Invalid("MemoryTable::Append: schema mismatch");
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

TableStatistics MemoryTable::statistics() const {
  TableStatistics stats;
  int64_t rows = 0;
  int64_t bytes = 0;
  for (const auto& b : batches_) {
    rows += b->num_rows();
    bytes += b->TotalBufferSize();
  }
  stats.num_rows = rows;
  stats.total_bytes = bytes;
  // Column-level zone data; cheap enough at memory-table sizes.
  stats.column_stats.resize(schema_->num_fields());
  for (int c = 0; c < schema_->num_fields(); ++c) {
    format::ColumnStats& cs = stats.column_stats[c];
    cs.row_count = rows;
    cs.min = Scalar::Null(schema_->field(c).type());
    cs.max = Scalar::Null(schema_->field(c).type());
    for (const auto& b : batches_) {
      const auto& col = b->column(c);
      cs.null_count += col->null_count();
      auto mn = compute::MinArray(*col);
      auto mx = compute::MaxArray(*col);
      if (mn.ok() && !mn->is_null() &&
          (cs.min.is_null() || mn->Compare(cs.min) < 0)) {
        cs.min = *mn;
      }
      if (mx.ok() && !mx->is_null() &&
          (cs.max.is_null() || mx->Compare(cs.max) > 0)) {
        cs.max = *mx;
      }
    }
  }
  return stats;
}

Result<std::vector<BatchIteratorPtr>> MemoryTable::Scan(const ScanRequest& request) {
  std::vector<int> projection = ResolveProjection(*schema_, request.projection);
  // Morsel mode caps morsels at the batch count so each morsel is one
  // batch where possible; the static split keeps one partition per
  // target regardless. Both fill round-robin (balanced within one).
  int partitions =
      request.max_morsels > 0
          ? std::max(1, std::min<int>(request.max_morsels,
                                      std::max<size_t>(batches_.size(), 1)))
          : std::max(1, request.target_partitions);
  std::vector<std::vector<RecordBatchPtr>> parts(partitions);
  int64_t remaining = request.limit < 0 ? INT64_MAX : request.limit;
  size_t next = 0;
  for (const auto& batch : batches_) {
    if (remaining <= 0) break;
    FUSION_ASSIGN_OR_RAISE(auto projected, batch->Project(projection));
    if (projected->num_rows() > remaining) {
      projected = projected->Slice(0, remaining);
    }
    remaining -= projected->num_rows();
    parts[next % parts.size()].push_back(std::move(projected));
    ++next;
  }
  std::vector<BatchIteratorPtr> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    out.push_back(std::make_unique<VectorBatchIterator>(std::move(p)));
  }
  return out;
}

}  // namespace catalog
}  // namespace fusion
