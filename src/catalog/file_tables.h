#ifndef FUSION_CATALOG_FILE_TABLES_H_
#define FUSION_CATALOG_FILE_TABLES_H_

#include <mutex>
#include <string>
#include <vector>

#include "catalog/table_provider.h"
#include "exec/cache_manager.h"
#include "format/csv.h"
#include "format/fpq.h"
#include "format/json.h"

namespace fusion {
namespace catalog {

/// \brief Table over one or more FPQ files (the engine's Parquet
/// stand-in). Implements exact filter pushdown via zone maps, Bloom
/// filters and late materialization, plus projection and limit
/// pushdown. Scan units are (file, row group) pairs distributed across
/// partitions.
class FpqTable : public TableProvider {
 public:
  /// Open all files (footers only) and verify schema compatibility.
  /// `meta_cache` (optional) caches per-file statistics across queries
  /// so statistics() stops re-walking every row-group footer.
  static Result<std::shared_ptr<FpqTable>> Open(
      std::vector<std::string> paths, exec::CacheManagerPtr meta_cache = nullptr);

  SchemaPtr schema() const override { return schema_; }
  TableStatistics statistics() const override;
  FilterPushdown SupportsFilterPushdown(
      const format::ColumnPredicate& pred) const override;
  Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) override;
  std::string ToString() const override;

  /// Declare a sort order the files are known to satisfy.
  void SetSortOrder(std::vector<OrderedColumn> order) { order_ = std::move(order); }
  std::vector<OrderedColumn> sort_order() const override { return order_; }

  /// Disable scan-time predicate evaluation (zone maps and Bloom filters
  /// still prune row groups) — used by ablation benchmarks.
  void SetLateMaterialization(bool enabled) { late_materialization_ = enabled; }
  /// Disable all scan-time pruning (the tightly-integrated baseline
  /// configuration; see DESIGN.md §5.1).
  void SetPushdownEnabled(bool enabled) { pushdown_enabled_ = enabled; }

  /// Cumulative scan metrics across all Scan() calls (for tests/benches).
  format::fpq::ScanMetrics ConsumeMetrics();

 private:
  FpqTable(SchemaPtr schema,
           std::vector<std::shared_ptr<format::fpq::Reader>> readers,
           exec::CacheManagerPtr meta_cache)
      : schema_(std::move(schema)), readers_(std::move(readers)),
        meta_cache_(std::move(meta_cache)) {}

  void MergeMetrics(const format::fpq::ScanMetrics& m);
  /// Statistics of one file, consulting/filling meta_cache_.
  TableStatistics FileStatistics(const format::fpq::Reader& reader) const;

  SchemaPtr schema_;
  std::vector<std::shared_ptr<format::fpq::Reader>> readers_;
  exec::CacheManagerPtr meta_cache_;
  std::vector<OrderedColumn> order_;
  bool late_materialization_ = true;
  bool pushdown_enabled_ = true;

  std::mutex metrics_mu_;
  format::fpq::ScanMetrics metrics_;

  friend class FpqScanIterator;
};

/// \brief Table over one or more CSV files; schema inferred from the
/// first file. Each file is a scan partition.
class CsvTable : public TableProvider {
 public:
  static Result<std::shared_ptr<CsvTable>> Open(std::vector<std::string> paths,
                                                format::csv::Options options = {});

  SchemaPtr schema() const override { return schema_; }
  Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) override;
  std::string ToString() const override;

  const std::vector<std::string>& paths() const { return paths_; }
  const format::csv::Options& options() const { return options_; }

 private:
  CsvTable(SchemaPtr schema, std::vector<std::string> paths,
           format::csv::Options options)
      : schema_(std::move(schema)), paths_(std::move(paths)),
        options_(std::move(options)) {}

  SchemaPtr schema_;
  std::vector<std::string> paths_;
  format::csv::Options options_;
};

/// \brief Table over newline-delimited JSON files.
class JsonTable : public TableProvider {
 public:
  static Result<std::shared_ptr<JsonTable>> Open(std::vector<std::string> paths,
                                                 format::json::Options options = {});

  SchemaPtr schema() const override { return schema_; }
  Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) override;
  std::string ToString() const override;

 private:
  JsonTable(SchemaPtr schema, std::vector<std::string> paths,
            format::json::Options options)
      : schema_(std::move(schema)), paths_(std::move(paths)),
        options_(std::move(options)) {}

  SchemaPtr schema_;
  std::vector<std::string> paths_;
  format::json::Options options_;
};

/// \brief Table over Arrow-IPC-style files (arrow/ipc.h).
class IpcTable : public TableProvider {
 public:
  static Result<std::shared_ptr<IpcTable>> Open(std::vector<std::string> paths);

  SchemaPtr schema() const override { return schema_; }
  Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) override;
  std::string ToString() const override { return "IpcTable"; }

 private:
  IpcTable(SchemaPtr schema, std::vector<std::string> paths)
      : schema_(std::move(schema)), paths_(std::move(paths)) {}

  SchemaPtr schema_;
  std::vector<std::string> paths_;
};

/// List files under `dir` with the given extension (non-recursive),
/// sorted by name — the Hive-style "listing table" helper (paper §5.2.1).
/// With a cache manager, the listing is served from / stored in its
/// directory-listing LRU (paper §7.4: LIST calls are expensive on
/// object stores).
Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                           const std::string& extension,
                                           const exec::CacheManagerPtr& cache = nullptr);

/// Open a directory or single file as a table, dispatching on extension
/// (".fpq", ".csv", ".json", ".ipc"). `cache` feeds directory listings
/// and (for FPQ) per-file statistics through the metadata cache.
Result<TableProviderPtr> OpenTable(const std::string& path,
                                   exec::CacheManagerPtr cache = nullptr);

}  // namespace catalog
}  // namespace fusion

#endif  // FUSION_CATALOG_FILE_TABLES_H_
