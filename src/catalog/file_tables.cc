#include "catalog/file_tables.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>

#include "arrow/ipc.h"
#include "exec/buffer_cache.h"
#include "exec/runtime_filter.h"
#include "exec/scheduler.h"

namespace fusion {
namespace catalog {

// ---------------------------------------------------------------- FpqTable

namespace {

struct ScanUnit {
  std::shared_ptr<format::fpq::Reader> reader;
  int row_group;
};

}  // namespace

/// Iterator over a list of (file, row group) units: prunes with zone
/// maps + Bloom filters, then runs the late-materialization scan —
/// served through the shared decoded-batch cache when one is attached
/// to the ScanRequest.
class FpqScanIterator : public BatchIterator {
 public:
  FpqScanIterator(FpqTable* table, std::vector<ScanUnit> units,
                  std::vector<int> projection,
                  std::vector<format::ColumnPredicate> predicates, int64_t limit,
                  bool late_materialization, exec::BufferCachePtr cache,
                  exec::TaskGroupPtr group, exec::CancellationTokenPtr cancel,
                  std::vector<RuntimeScanFilter> runtime_filters)
      : table_(table), units_(std::move(units)), projection_(std::move(projection)),
        predicates_(std::move(predicates)), limit_(limit),
        late_materialization_(late_materialization), cache_(std::move(cache)),
        group_(std::move(group)), cancel_(std::move(cancel)),
        runtime_filters_(std::move(runtime_filters)) {
    // Predicates + late-materialization mode select which rows a decoded
    // row group contains, so they are part of the cache key.
    for (const auto& p : predicates_) {
      selection_fingerprint_ += p.ToString();
      selection_fingerprint_ += ';';
    }
    if (!late_materialization_) selection_fingerprint_ += "|full";
  }

  ~FpqScanIterator() override { table_->MergeMetrics(metrics_); }

  Result<RecordBatchPtr> Next() override {
    // The previous batch leaves the scan: drop its eviction pin.
    pin_.Release();
    while (pos_ < units_.size()) {
      if (limit_ >= 0 && rows_emitted_ >= limit_) return RecordBatchPtr(nullptr);
      ScanUnit& unit = units_[pos_++];
      if (!predicates_.empty()) {
        FUSION_ASSIGN_OR_RAISE(bool may_match,
                               unit.reader->RowGroupMayMatch(unit.row_group,
                                                             predicates_));
        if (!may_match) {
          ++metrics_.row_groups_pruned;
          metrics_.rows_total += unit.reader->row_group(unit.row_group).num_rows;
          continue;
        }
      }
      // Runtime-filter zone pruning: once a join build has published,
      // its key min/max can rule out whole row groups. Checked before
      // the buffer cache — a pruned unit is never decoded or cached —
      // and deliberately NOT part of the cache key: pruning only skips
      // units, it never changes a decoded batch.
      if (!runtime_filters_.empty()) {
        FUSION_ASSIGN_OR_RAISE(bool rf_match, RuntimeFilterMayMatch(unit));
        if (!rf_match) {
          ++metrics_.row_groups_pruned;
          metrics_.rows_total += unit.reader->row_group(unit.row_group).num_rows;
          continue;
        }
      }
      RecordBatchPtr batch;
      if (cache_ != nullptr) {
        FUSION_ASSIGN_OR_RAISE(batch, ScanUnitCached(unit));
      } else {
        FUSION_ASSIGN_OR_RAISE(
            batch,
            unit.reader->ScanRowGroup(unit.row_group, projection_, predicates_,
                                      late_materialization_, &metrics_));
      }
      if (batch->num_rows() == 0) continue;
      if (limit_ >= 0 && rows_emitted_ + batch->num_rows() > limit_) {
        batch = batch->Slice(0, limit_ - rows_emitted_);
      }
      rows_emitted_ += batch->num_rows();
      return batch;
    }
    return RecordBatchPtr(nullptr);
  }

 private:
  Result<bool> RuntimeFilterMayMatch(const ScanUnit& unit) {
    for (const auto& rsf : runtime_filters_) {
      if (rsf.filter == nullptr || !rsf.filter->ready()) continue;
      const Scalar& min = rsf.filter->min_key();
      const Scalar& max = rsf.filter->max_key();
      if (min.is_null() || max.is_null()) continue;
      std::vector<format::ColumnPredicate> range;
      range.push_back({rsf.column, format::ColumnPredicate::Op::kGtEq, {min}});
      range.push_back({rsf.column, format::ColumnPredicate::Op::kLtEq, {max}});
      FUSION_ASSIGN_OR_RAISE(
          bool may_match, unit.reader->RowGroupMayMatch(unit.row_group, range));
      if (!may_match) return false;
    }
    return true;
  }

  /// Serve one unit through the buffer cache: a hit returns the decoded
  /// batch without touching the file; a miss decodes once for all
  /// concurrent scans of this unit (scan sharing) and caches the result.
  Result<RecordBatchPtr> ScanUnitCached(const ScanUnit& unit) {
    const std::string key =
        exec::BufferCacheKey(unit.reader->cache_identity(), unit.row_group,
                             projection_, selection_fingerprint_);
    format::fpq::ScanMetrics decode_metrics;
    bool decoded = false;
    auto decode = [&]() -> Result<RecordBatchPtr> {
      decoded = true;
      return unit.reader->ScanRowGroup(unit.row_group, projection_, predicates_,
                                       late_materialization_, &decode_metrics);
    };
    FUSION_ASSIGN_OR_RAISE(
        auto pin, cache_->GetOrDecode(key, decode, group_.get(), cancel_.get()));
    if (decoded) {
      ++metrics_.buffer_cache_misses;
      metrics_.row_groups_pruned += decode_metrics.row_groups_pruned;
      metrics_.row_groups_read += decode_metrics.row_groups_read;
      metrics_.pages_skipped += decode_metrics.pages_skipped;
      metrics_.pages_read += decode_metrics.pages_read;
      metrics_.rows_selected += decode_metrics.rows_selected;
      metrics_.rows_total += decode_metrics.rows_total;
    } else {
      // Hit (or coalesced onto another scan's decode): account the rows
      // but none of the IO counters — no bytes were read or decoded.
      ++metrics_.buffer_cache_hits;
      metrics_.rows_total += unit.reader->row_group(unit.row_group).num_rows;
      if (pin.batch() != nullptr) metrics_.rows_selected += pin.batch()->num_rows();
    }
    RecordBatchPtr batch = pin.batch();
    // Hold the pin until the next Next() call so eviction never races
    // the batch out from under the in-flight pipeline.
    pin_ = std::move(pin);
    return batch;
  }

  FpqTable* table_;
  std::vector<ScanUnit> units_;
  std::vector<int> projection_;
  std::vector<format::ColumnPredicate> predicates_;
  int64_t limit_;
  bool late_materialization_;
  exec::BufferCachePtr cache_;
  exec::TaskGroupPtr group_;
  exec::CancellationTokenPtr cancel_;
  std::vector<RuntimeScanFilter> runtime_filters_;
  std::string selection_fingerprint_;
  exec::BufferCache::Pin pin_;
  size_t pos_ = 0;
  int64_t rows_emitted_ = 0;
  format::fpq::ScanMetrics metrics_;
};

Result<std::shared_ptr<FpqTable>> FpqTable::Open(std::vector<std::string> paths,
                                                 exec::CacheManagerPtr meta_cache) {
  if (paths.empty()) return Status::Invalid("FpqTable: no input files");
  std::vector<std::shared_ptr<format::fpq::Reader>> readers;
  readers.reserve(paths.size());
  for (const auto& path : paths) {
    FUSION_ASSIGN_OR_RAISE(auto reader, format::fpq::Reader::Open(path));
    if (!readers.empty() && !reader->schema()->Equals(*readers[0]->schema())) {
      return Status::Invalid("FpqTable: schema mismatch in " + path);
    }
    readers.push_back(std::move(reader));
  }
  SchemaPtr schema = readers[0]->schema();
  return std::shared_ptr<FpqTable>(new FpqTable(std::move(schema),
                                                std::move(readers),
                                                std::move(meta_cache)));
}

TableStatistics FpqTable::FileStatistics(const format::fpq::Reader& reader) const {
  // Keyed on the reader's cache identity (path + size + mtime), so a
  // rewritten file never serves stale statistics.
  if (meta_cache_ != nullptr) {
    if (auto cached = meta_cache_->GetFileStats(reader.cache_identity())) {
      return *std::move(cached);
    }
  }
  TableStatistics stats;
  stats.column_stats.resize(schema_->num_fields());
  for (int c = 0; c < schema_->num_fields(); ++c) {
    stats.column_stats[c].min = Scalar::Null(schema_->field(c).type());
    stats.column_stats[c].max = Scalar::Null(schema_->field(c).type());
  }
  // Summing chunk NDVs overcounts values repeated across chunks; capped
  // at the row count below, the result stays a safe upper bound. A
  // single chunk without stats poisons the whole column to "unknown".
  std::vector<int64_t> ndv_sums(schema_->num_fields(), 0);
  for (int g = 0; g < reader.num_row_groups(); ++g) {
    const auto& rg = reader.row_group(g);
    for (int c = 0; c < schema_->num_fields(); ++c) {
      const auto& chunk = rg.columns[c];
      format::ColumnStats& cs = stats.column_stats[c];
      cs.null_count += chunk.stats.null_count;
      if (ndv_sums[c] >= 0) {
        ndv_sums[c] = chunk.stats.ndv < 0 ? -1 : ndv_sums[c] + chunk.stats.ndv;
      }
      if (!chunk.stats.min.is_null() &&
          (cs.min.is_null() || chunk.stats.min.Compare(cs.min) < 0)) {
        cs.min = chunk.stats.min;
      }
      if (!chunk.stats.max.is_null() &&
          (cs.max.is_null() || chunk.stats.max.Compare(cs.max) > 0)) {
        cs.max = chunk.stats.max;
      }
    }
  }
  stats.num_rows = reader.num_rows();
  for (int c = 0; c < schema_->num_fields(); ++c) {
    format::ColumnStats& cs = stats.column_stats[c];
    cs.row_count = reader.num_rows();
    cs.ndv = ndv_sums[c] < 0 ? -1 : std::min(ndv_sums[c], reader.num_rows());
  }
  if (meta_cache_ != nullptr) {
    meta_cache_->PutFileStats(reader.cache_identity(), stats);
  }
  return stats;
}

TableStatistics FpqTable::statistics() const {
  TableStatistics stats;
  int64_t rows = 0;
  stats.column_stats.resize(schema_->num_fields());
  for (int c = 0; c < schema_->num_fields(); ++c) {
    stats.column_stats[c].min = Scalar::Null(schema_->field(c).type());
    stats.column_stats[c].max = Scalar::Null(schema_->field(c).type());
  }
  std::vector<int64_t> ndv_sums(schema_->num_fields(), 0);
  for (const auto& reader : readers_) {
    TableStatistics file = FileStatistics(*reader);
    rows += file.num_rows.value_or(0);
    for (int c = 0; c < schema_->num_fields(); ++c) {
      const format::ColumnStats& fc = file.column_stats[c];
      format::ColumnStats& cs = stats.column_stats[c];
      cs.null_count += fc.null_count;
      if (ndv_sums[c] >= 0) {
        ndv_sums[c] = fc.ndv < 0 ? -1 : ndv_sums[c] + fc.ndv;
      }
      if (!fc.min.is_null() && (cs.min.is_null() || fc.min.Compare(cs.min) < 0)) {
        cs.min = fc.min;
      }
      if (!fc.max.is_null() && (cs.max.is_null() || fc.max.Compare(cs.max) > 0)) {
        cs.max = fc.max;
      }
    }
  }
  for (int c = 0; c < schema_->num_fields(); ++c) {
    format::ColumnStats& cs = stats.column_stats[c];
    cs.row_count = rows;
    cs.ndv = ndv_sums[c] < 0 ? -1 : std::min(ndv_sums[c], rows);
  }
  stats.num_rows = rows;
  return stats;
}

FilterPushdown FpqTable::SupportsFilterPushdown(
    const format::ColumnPredicate& pred) const {
  if (!pushdown_enabled_) return FilterPushdown::kUnsupported;
  if (schema_->GetFieldIndex(pred.column) < 0) return FilterPushdown::kUnsupported;
  // The scan evaluates pushed predicates row-by-row after pruning, so
  // results are exact and the engine can drop its Filter.
  return FilterPushdown::kExact;
}

Result<std::vector<BatchIteratorPtr>> FpqTable::Scan(const ScanRequest& request) {
  std::vector<int> projection = ResolveProjection(*schema_, request.projection);
  std::vector<format::ColumnPredicate> predicates =
      pushdown_enabled_ ? request.predicates
                        : std::vector<format::ColumnPredicate>{};
  std::vector<ScanUnit> units;
  for (const auto& reader : readers_) {
    for (int g = 0; g < reader->num_row_groups(); ++g) {
      units.push_back({reader, g});
    }
  }
  // Morsel mode: one iterator per row group (capped at max_morsels);
  // otherwise one static split per target partition. Both distribute
  // units round-robin, so unit counts stay balanced within one.
  int partitions =
      request.max_morsels > 0
          ? std::max(1, std::min<int>(request.max_morsels,
                                      std::max<size_t>(units.size(), 1)))
          : std::max(1, std::min<int>(request.target_partitions,
                                      std::max<size_t>(units.size(), 1)));
  std::vector<std::vector<ScanUnit>> parts(partitions);
  for (size_t i = 0; i < units.size(); ++i) {
    parts[i % parts.size()].push_back(units[i]);
  }
  std::vector<BatchIteratorPtr> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    out.push_back(std::make_unique<FpqScanIterator>(
        this, std::move(p), projection, predicates, request.limit,
        late_materialization_, request.buffer_cache, request.task_group,
        request.cancel, request.runtime_filters));
  }
  return out;
}

std::string FpqTable::ToString() const {
  return "FpqTable(" + std::to_string(readers_.size()) + " files)";
}

void FpqTable::MergeMetrics(const format::fpq::ScanMetrics& m) {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  metrics_.row_groups_pruned += m.row_groups_pruned;
  metrics_.row_groups_read += m.row_groups_read;
  metrics_.pages_skipped += m.pages_skipped;
  metrics_.pages_read += m.pages_read;
  metrics_.rows_selected += m.rows_selected;
  metrics_.rows_total += m.rows_total;
  metrics_.buffer_cache_hits += m.buffer_cache_hits;
  metrics_.buffer_cache_misses += m.buffer_cache_misses;
}

format::fpq::ScanMetrics FpqTable::ConsumeMetrics() {
  std::lock_guard<std::mutex> lock(metrics_mu_);
  format::fpq::ScanMetrics out = metrics_;
  metrics_ = {};
  return out;
}

// ---------------------------------------------------------------- CsvTable

namespace {

/// Streams batches from one CSV file, applying projection and limit.
class CsvScanIterator : public BatchIterator {
 public:
  CsvScanIterator(std::string path, format::csv::Options options,
                  std::vector<int> projection, int64_t limit)
      : path_(std::move(path)), options_(std::move(options)),
        projection_(std::move(projection)), limit_(limit) {}

  Result<RecordBatchPtr> Next() override {
    if (reader_ == nullptr) {
      FUSION_ASSIGN_OR_RAISE(reader_, format::csv::CsvReader::Open(path_, options_));
    }
    if (limit_ >= 0 && rows_emitted_ >= limit_) return RecordBatchPtr(nullptr);
    FUSION_ASSIGN_OR_RAISE(auto batch, reader_->Next());
    if (batch == nullptr) return RecordBatchPtr(nullptr);
    FUSION_ASSIGN_OR_RAISE(batch, batch->Project(projection_));
    if (limit_ >= 0 && rows_emitted_ + batch->num_rows() > limit_) {
      batch = batch->Slice(0, limit_ - rows_emitted_);
    }
    rows_emitted_ += batch->num_rows();
    return batch;
  }

 private:
  std::string path_;
  format::csv::Options options_;
  std::vector<int> projection_;
  int64_t limit_;
  std::shared_ptr<format::csv::CsvReader> reader_;
  int64_t rows_emitted_ = 0;
};

}  // namespace

Result<std::shared_ptr<CsvTable>> CsvTable::Open(std::vector<std::string> paths,
                                                 format::csv::Options options) {
  if (paths.empty()) return Status::Invalid("CsvTable: no input files");
  FUSION_ASSIGN_OR_RAISE(SchemaPtr schema,
                         format::csv::InferSchema(paths[0], options));
  options.schema = schema;
  return std::shared_ptr<CsvTable>(
      new CsvTable(std::move(schema), std::move(paths), std::move(options)));
}

namespace {

/// Drains a list of per-file iterators in order (one scan partition
/// covering several files).
class ChainedBatchIterator : public BatchIterator {
 public:
  explicit ChainedBatchIterator(std::vector<BatchIteratorPtr> inner)
      : inner_(std::move(inner)) {}

  Result<RecordBatchPtr> Next() override {
    while (pos_ < inner_.size()) {
      FUSION_ASSIGN_OR_RAISE(auto batch, inner_[pos_]->Next());
      if (batch != nullptr) return batch;
      ++pos_;
    }
    return RecordBatchPtr(nullptr);
  }

 private:
  std::vector<BatchIteratorPtr> inner_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<BatchIteratorPtr>> CsvTable::Scan(const ScanRequest& request) {
  std::vector<int> projection = ResolveProjection(*schema_, request.projection);
  // Respect the requested parallelism instead of one partition per file
  // (which could exceed target_partitions and leave splits imbalanced):
  // files are the units, grouped round-robin within one of each other.
  const int cap = request.max_morsels > 0 ? request.max_morsels
                                          : std::max(1, request.target_partitions);
  const int partitions =
      std::max(1, std::min<int>(cap, static_cast<int>(paths_.size())));
  std::vector<std::vector<BatchIteratorPtr>> parts(partitions);
  for (size_t i = 0; i < paths_.size(); ++i) {
    parts[i % parts.size()].push_back(std::make_unique<CsvScanIterator>(
        paths_[i], options_, projection, request.limit));
  }
  std::vector<BatchIteratorPtr> out;
  out.reserve(parts.size());
  for (auto& p : parts) {
    if (p.size() == 1) {
      out.push_back(std::move(p[0]));
    } else {
      out.push_back(std::make_unique<ChainedBatchIterator>(std::move(p)));
    }
  }
  return out;
}

std::string CsvTable::ToString() const {
  return "CsvTable(" + std::to_string(paths_.size()) + " files)";
}

// --------------------------------------------------------------- JsonTable

namespace {

class EagerBatchIterator : public BatchIterator {
 public:
  explicit EagerBatchIterator(std::vector<RecordBatchPtr> batches)
      : batches_(std::move(batches)) {}
  Result<RecordBatchPtr> Next() override {
    if (pos_ >= batches_.size()) return RecordBatchPtr(nullptr);
    return batches_[pos_++];
  }

 private:
  std::vector<RecordBatchPtr> batches_;
  size_t pos_ = 0;
};

/// Lazily reads a whole JSON file on first pull.
class JsonScanIterator : public BatchIterator {
 public:
  JsonScanIterator(std::string path, format::json::Options options,
                   std::vector<int> projection, int64_t limit)
      : path_(std::move(path)), options_(std::move(options)),
        projection_(std::move(projection)), limit_(limit) {}

  Result<RecordBatchPtr> Next() override {
    if (!loaded_) {
      FUSION_ASSIGN_OR_RAISE(batches_, format::json::ReadFile(path_, options_));
      loaded_ = true;
    }
    while (pos_ < batches_.size()) {
      if (limit_ >= 0 && rows_emitted_ >= limit_) return RecordBatchPtr(nullptr);
      FUSION_ASSIGN_OR_RAISE(auto batch, batches_[pos_++]->Project(projection_));
      if (limit_ >= 0 && rows_emitted_ + batch->num_rows() > limit_) {
        batch = batch->Slice(0, limit_ - rows_emitted_);
      }
      rows_emitted_ += batch->num_rows();
      return batch;
    }
    return RecordBatchPtr(nullptr);
  }

 private:
  std::string path_;
  format::json::Options options_;
  std::vector<int> projection_;
  int64_t limit_;
  bool loaded_ = false;
  std::vector<RecordBatchPtr> batches_;
  size_t pos_ = 0;
  int64_t rows_emitted_ = 0;
};

}  // namespace

Result<std::shared_ptr<JsonTable>> JsonTable::Open(std::vector<std::string> paths,
                                                   format::json::Options options) {
  if (paths.empty()) return Status::Invalid("JsonTable: no input files");
  FUSION_ASSIGN_OR_RAISE(SchemaPtr schema,
                         format::json::InferSchema(paths[0], options));
  options.schema = schema;
  return std::shared_ptr<JsonTable>(
      new JsonTable(std::move(schema), std::move(paths), std::move(options)));
}

Result<std::vector<BatchIteratorPtr>> JsonTable::Scan(const ScanRequest& request) {
  std::vector<int> projection = ResolveProjection(*schema_, request.projection);
  std::vector<BatchIteratorPtr> out;
  for (const auto& path : paths_) {
    out.push_back(std::make_unique<JsonScanIterator>(path, options_, projection,
                                                     request.limit));
  }
  return out;
}

std::string JsonTable::ToString() const {
  return "JsonTable(" + std::to_string(paths_.size()) + " files)";
}

// ---------------------------------------------------------------- IpcTable

Result<std::shared_ptr<IpcTable>> IpcTable::Open(std::vector<std::string> paths) {
  if (paths.empty()) return Status::Invalid("IpcTable: no input files");
  ipc::FileReader reader(paths[0]);
  FUSION_RETURN_NOT_OK(reader.Open());
  FUSION_ASSIGN_OR_RAISE(auto first, reader.Next());
  if (first == nullptr) return Status::Invalid("IpcTable: empty file " + paths[0]);
  return std::shared_ptr<IpcTable>(new IpcTable(first->schema(), std::move(paths)));
}

Result<std::vector<BatchIteratorPtr>> IpcTable::Scan(const ScanRequest& request) {
  std::vector<int> projection = ResolveProjection(*schema_, request.projection);
  std::vector<BatchIteratorPtr> out;
  for (const auto& path : paths_) {
    FUSION_ASSIGN_OR_RAISE(auto batches, ipc::ReadFile(path));
    std::vector<RecordBatchPtr> projected;
    int64_t remaining = request.limit < 0 ? INT64_MAX : request.limit;
    for (auto& b : batches) {
      if (remaining <= 0) break;
      FUSION_ASSIGN_OR_RAISE(auto p, b->Project(projection));
      if (p->num_rows() > remaining) p = p->Slice(0, remaining);
      remaining -= p->num_rows();
      projected.push_back(std::move(p));
    }
    out.push_back(std::make_unique<EagerBatchIterator>(std::move(projected)));
  }
  return out;
}

// ------------------------------------------------------------------ listing

Result<std::vector<std::string>> ListFiles(const std::string& dir,
                                           const std::string& extension,
                                           const exec::CacheManagerPtr& cache) {
  const std::string cache_key = dir + "|" + extension;
  if (cache != nullptr) {
    if (auto cached = cache->GetListing(cache_key)) return *std::move(cached);
  }
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError("cannot open directory " + dir);
  std::vector<std::string> out;
  while (dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name.size() > extension.size() &&
        name.compare(name.size() - extension.size(), extension.size(), extension) ==
            0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  if (cache != nullptr) cache->PutListing(cache_key, out);
  return out;
}

Result<TableProviderPtr> OpenTable(const std::string& path,
                                   exec::CacheManagerPtr cache) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("no such file or directory: " + path);
  }
  auto ends_with = [](const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  std::vector<std::string> files;
  std::string probe = path;
  if (S_ISDIR(st.st_mode)) {
    for (const char* ext : {".fpq", ".csv", ".json", ".ipc"}) {
      FUSION_ASSIGN_OR_RAISE(files, ListFiles(path, ext, cache));
      if (!files.empty()) {
        probe = files[0];
        break;
      }
    }
    if (files.empty()) return Status::Invalid("no data files in directory " + path);
  } else {
    files = {path};
  }
  if (ends_with(probe, ".fpq")) {
    FUSION_ASSIGN_OR_RAISE(auto t, FpqTable::Open(files, std::move(cache)));
    return TableProviderPtr(t);
  }
  if (ends_with(probe, ".csv")) {
    FUSION_ASSIGN_OR_RAISE(auto t, CsvTable::Open(files));
    return TableProviderPtr(t);
  }
  if (ends_with(probe, ".json")) {
    FUSION_ASSIGN_OR_RAISE(auto t, JsonTable::Open(files));
    return TableProviderPtr(t);
  }
  if (ends_with(probe, ".ipc")) {
    FUSION_ASSIGN_OR_RAISE(auto t, IpcTable::Open(files));
    return TableProviderPtr(t);
  }
  return Status::Invalid("unrecognized file extension: " + probe);
}

}  // namespace catalog
}  // namespace fusion
