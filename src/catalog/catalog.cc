#include "catalog/catalog.h"

namespace fusion {
namespace catalog {

std::vector<std::string> MemorySchemaProvider::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Result<TableProviderPtr> MemorySchemaProvider::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("table '" + name + "' not found");
  }
  return it->second;
}

bool MemorySchemaProvider::TableExists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) != 0;
}

Status MemorySchemaProvider::RegisterTable(const std::string& name,
                                           TableProviderPtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_[name] = std::move(table);
  return Status::OK();
}

Status MemorySchemaProvider::DeregisterTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  tables_.erase(name);
  return Status::OK();
}

MemoryCatalogProvider::MemoryCatalogProvider()
    : default_schema_(std::make_shared<MemorySchemaProvider>()) {
  schemas_["public"] = default_schema_;
}

std::vector<std::string> MemoryCatalogProvider::SchemaNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, schema] : schemas_) out.push_back(name);
  return out;
}

Result<SchemaProviderPtr> MemoryCatalogProvider::GetSchema(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return Status::KeyError("schema '" + name + "' not found");
  }
  return it->second;
}

Status MemoryCatalogProvider::RegisterSchema(const std::string& name,
                                             SchemaProviderPtr schema) {
  std::lock_guard<std::mutex> lock(mu_);
  schemas_[name] = std::move(schema);
  return Status::OK();
}

}  // namespace catalog
}  // namespace fusion
