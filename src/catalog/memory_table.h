#ifndef FUSION_CATALOG_MEMORY_TABLE_H_
#define FUSION_CATALOG_MEMORY_TABLE_H_

#include <vector>

#include "catalog/table_provider.h"

namespace fusion {
namespace catalog {

/// \brief In-memory table over pre-loaded RecordBatches. Supports
/// projection pushdown and partitioned reads (batches are distributed
/// round-robin across partitions).
class MemoryTable : public TableProvider {
 public:
  MemoryTable(SchemaPtr schema, std::vector<RecordBatchPtr> batches);

  static Result<std::shared_ptr<MemoryTable>> Make(
      SchemaPtr schema, std::vector<RecordBatchPtr> batches);

  SchemaPtr schema() const override { return schema_; }
  TableStatistics statistics() const override;
  Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) override;
  std::string ToString() const override { return "MemoryTable"; }

  /// Declare a sort order the batches are known to satisfy.
  void SetSortOrder(std::vector<OrderedColumn> order) { order_ = std::move(order); }
  std::vector<OrderedColumn> sort_order() const override { return order_; }

  const std::vector<RecordBatchPtr>& batches() const { return batches_; }

  /// Append more rows (the "updates" part of the TableProvider API).
  Status Append(RecordBatchPtr batch);

 private:
  SchemaPtr schema_;
  std::vector<RecordBatchPtr> batches_;
  std::vector<OrderedColumn> order_;
};

}  // namespace catalog
}  // namespace fusion

#endif  // FUSION_CATALOG_MEMORY_TABLE_H_
