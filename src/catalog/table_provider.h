#ifndef FUSION_CATALOG_TABLE_PROVIDER_H_
#define FUSION_CATALOG_TABLE_PROVIDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arrow/record_batch.h"
#include "arrow/type.h"
#include "common/result.h"
#include "format/predicate.h"
#include "row/row_format.h"

namespace fusion {
namespace exec {
// Forward declarations (exec/stream.h includes this header, so the
// serving-layer context below must not pull exec headers back in).
class BufferCache;
class TaskGroup;
class CancellationToken;
class RuntimeFilter;
}  // namespace exec

namespace catalog {

/// Table-level statistics available at planning time (paper §5.4.1):
/// row counts plus per-column min/max/null-count zone data. Defined at
/// the format layer so metadata caches below the catalog can hold them.
using TableStatistics = format::TableStatistics;

/// A column of a known sort order, e.g. files sorted by (ts ASC).
struct OrderedColumn {
  std::string column;
  row::SortOptions options;
};

/// How fully a provider can absorb a pushed-down filter.
enum class FilterPushdown {
  kUnsupported,  ///< engine must re-apply the filter
  kInexact,      ///< provider prunes but may return false positives
  kExact,        ///< provider guarantees only matching rows
};

/// A runtime filter attached to a scan: the named column must have a
/// join partner in `filter`'s build side for the row to survive. The
/// filter may still be pending (pass-through) or bypassed at any time.
struct RuntimeScanFilter {
  std::string column;
  std::shared_ptr<exec::RuntimeFilter> filter;
};

/// Pull-based iterator of record batches; one per scan partition.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;
  /// Next batch, or nullptr when the partition is exhausted.
  virtual Result<RecordBatchPtr> Next() = 0;
};

using BatchIteratorPtr = std::unique_ptr<BatchIterator>;

/// Parameters pushed into a scan (paper §7.3: projection, filter and
/// limit pushdown, partitioned parallel reads).
struct ScanRequest {
  /// Column indices to produce (in order). Empty = all columns.
  std::vector<int> projection;
  /// Conjunctive predicates offered for pushdown.
  std::vector<format::ColumnPredicate> predicates;
  /// Stop after this many rows (best effort), -1 = unlimited.
  int64_t limit = -1;
  /// Desired parallelism; providers may return fewer partitions.
  int target_partitions = 1;
  /// Morsel-driven scans: when > 0, return up to this many fine-grained
  /// iterators (one per row group / batch / file where possible, grouped
  /// round-robin beyond the cap so unit counts stay balanced within
  /// one) instead of `target_partitions` static splits. Consumers pull
  /// them from a shared queue, so skew no longer serializes a pipeline.
  int max_morsels = 0;
  /// Serving-layer context, set by the physical planner. `buffer_cache`
  /// lets file scans serve decoded batches from (and coalesce decodes
  /// through) the shared cache; `task_group`/`cancel` are the query's
  /// scheduling context so cache waits park cooperatively and honor
  /// cancellation. All optional (null = cold scan, blocking waits).
  std::shared_ptr<exec::BufferCache> buffer_cache;
  std::shared_ptr<exec::TaskGroup> task_group;
  std::shared_ptr<exec::CancellationToken> cancel;
  /// Runtime Bloom filters published sideways by hash-join build sides
  /// (see exec/runtime_filter.h). Providers that understand them may
  /// prune whole row groups against a ready filter's min/max; row-level
  /// filtering happens in ScanExec above the buffer cache either way,
  /// so a provider is free to ignore these.
  std::vector<RuntimeScanFilter> runtime_filters;
};

/// \brief The data-source extension point (paper §7.3). Built-in
/// sources (memory, CSV, FPQ, JSON, IPC) implement exactly this API.
class TableProvider {
 public:
  virtual ~TableProvider() = default;

  virtual SchemaPtr schema() const = 0;

  /// Planning-time statistics; default: unknown.
  virtual TableStatistics statistics() const { return {}; }

  /// How the provider handles each pushed filter.
  virtual FilterPushdown SupportsFilterPushdown(
      const format::ColumnPredicate& pred) const {
    (void)pred;
    return FilterPushdown::kUnsupported;
  }

  /// Any sort order the data is known to satisfy (paper §6.7).
  virtual std::vector<OrderedColumn> sort_order() const { return {}; }

  /// Open the scan: one BatchIterator per partition.
  virtual Result<std::vector<BatchIteratorPtr>> Scan(const ScanRequest& request) = 0;

  /// Human-readable description for EXPLAIN output.
  virtual std::string ToString() const { return "TableProvider"; }
};

using TableProviderPtr = std::shared_ptr<TableProvider>;

/// Resolve a ScanRequest projection to concrete indices/schema.
std::vector<int> ResolveProjection(const Schema& schema,
                                   const std::vector<int>& projection);
SchemaPtr ProjectedSchema(const SchemaPtr& schema, const std::vector<int>& projection);

}  // namespace catalog
}  // namespace fusion

#endif  // FUSION_CATALOG_TABLE_PROVIDER_H_
