#include "catalog/table_provider.h"

#include <numeric>

namespace fusion {
namespace catalog {

std::vector<int> ResolveProjection(const Schema& schema,
                                   const std::vector<int>& projection) {
  if (!projection.empty()) return projection;
  std::vector<int> all(schema.num_fields());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

SchemaPtr ProjectedSchema(const SchemaPtr& schema,
                          const std::vector<int>& projection) {
  return schema->Project(ResolveProjection(*schema, projection));
}

}  // namespace catalog
}  // namespace fusion
